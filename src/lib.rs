//! # pscd — Content Distribution for Publish/Subscribe Services
//!
//! A complete Rust implementation of Chen, LaPaugh & Singh, *"Content
//! Distribution for Publish/Subscribe Services"* (Middleware 2003):
//! subscription-aware caching/content-delivery strategies for
//! publish/subscribe systems, plus every substrate the paper's evaluation
//! needs — an MSNBC-calibrated synthetic workload generator, a BRITE-style
//! topology generator, a content-based matching engine, a
//! publisher/proxy delivery engine, and a discrete-event simulator that
//! regenerates all of the paper's tables and figures.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `pscd-types` | ids, time, sizes, traces, subscription tables |
//! | [`topology`] | `pscd-topology` | Waxman / Barabási–Albert graphs, fetch costs |
//! | [`matching`] | `pscd-matching` | predicate subscriptions, counting index, covering |
//! | [`workload`] | `pscd-workload` | NEWS / ALTERNATIVE synthetic traces |
//! | [`cache`] | `pscd-cache` | cache substrate; LRU, GDS, LFU-DA, GD\* |
//! | [`strategies`] | `pscd-core` | SUB, SG1, SG2, SR, DM, DC-FP, DC-AP, DC-LAP |
//! | [`broker`] | `pscd-broker` | delivery engine, pushing schemes, traffic |
//! | [`sim`] | `pscd-sim` | simulator and metrics |
//! | [`experiments`] | `pscd-experiments` | per-table/figure reproduction drivers |
//!
//! The most common entry points are re-exported at the top level.
//!
//! # Quickstart
//!
//! ```
//! use pscd::{simulate, FetchCosts, SimOptions, StrategyKind, Workload, WorkloadConfig};
//!
//! // 1. Generate a (scaled-down) news workload: publishing stream,
//! //    request trace and subscription model.
//! let workload = Workload::generate(&WorkloadConfig::news_scaled(0.01))?;
//! let subscriptions = workload.subscriptions(1.0)?;
//! let costs = FetchCosts::uniform(workload.server_count());
//!
//! // 2. Simulate the paper's best combined strategy (SG2) against the
//! //    access-only baseline (GD*).
//! let sg2 = simulate(&workload, &subscriptions, &costs,
//!     &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05))?;
//! let gd = simulate(&workload, &subscriptions, &costs,
//!     &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05))?;
//!
//! // 3. Subscription-aware pushing raises the local hit ratio.
//! assert!(sg2.hit_ratio() > gd.hit_ratio());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pscd_broker as broker;
pub use pscd_cache as cache;
pub use pscd_core as strategies;
pub use pscd_experiments as experiments;
pub use pscd_matching as matching;
pub use pscd_sim as sim;
pub use pscd_topology as topology;
pub use pscd_types as types;
pub use pscd_workload as workload;

pub use pscd_broker::{DeliveryEngine, PushScheme, Traffic};
pub use pscd_cache::{CachePolicy, GdStar, PageRef};
pub use pscd_core::{Strategy, StrategyKind};
pub use pscd_experiments::ExperimentContext;
pub use pscd_matching::{Content, Matcher, Predicate, Subscription, SubscriptionIndex, Value};
pub use pscd_sim::{simulate, simulate_compiled, CompiledTrace, CrashPlan, SimOptions, SimResult};
pub use pscd_topology::{FetchCosts, GraphModel, TopologyBuilder};
pub use pscd_types::{Bytes, PageId, PageMeta, ServerId, SimTime, SubscriptionTable};
pub use pscd_workload::{Workload, WorkloadConfig};
