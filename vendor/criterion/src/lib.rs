//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the `pscd-bench` crate uses —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched` — with a simple wall-clock measurement loop and
//! plain-text reporting (mean / median / min ns per iteration). No plots,
//! no statistical regression testing.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample batching mode (accepted for compatibility; the shim always
/// re-runs setup per iteration, outside the timed section).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: setup per iteration.
    SmallInput,
    /// Large inputs: setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement budget per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Allow a quick override for CI smoke runs.
        let millis = std::env::var("PSCD_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000);
        Self {
            budget: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            budget: self.budget,
            sample_size: 20,
        }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    budget: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget for each benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Runs one benchmark: calibrates an iteration count against the
    /// budget, collects samples, prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Calibration pass: one iteration, to size the samples.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = self.budget.as_nanos() / self.sample_size.max(1) as u128;
        let iters = (per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median = samples_ns[samples_ns.len() / 2];
        let min = samples_ns[0];
        println!(
            "  {id}: mean {} | median {} | min {}  ({} samples x {} iters)",
            fmt_ns(mean),
            fmt_ns(median),
            fmt_ns(min),
            samples_ns.len(),
            iters,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the closure under test.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with an untimed per-iteration `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Bundles benchmark functions into a single callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs() {
        std::env::set_var("PSCD_BENCH_BUDGET_MS", "20");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(2u64 + 2)
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert!(calls > 0);
    }
}
