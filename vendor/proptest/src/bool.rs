//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `true`/`false` with equal probability.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The uniform boolean strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
