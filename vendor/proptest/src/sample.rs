//! Sampling from explicit value lists.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniformly selects one of the given values.
///
/// # Panics
///
/// The returned strategy panics on generation if `values` is empty.
pub fn select<T: Clone + Debug>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.values.is_empty(), "select over an empty list");
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}
