//! Test configuration and the deterministic generation RNG.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The generation RNG (SplitMix64). Seeded from the test's name so every
/// run of a given test replays the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from an arbitrary label (FNV-1a hash).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
