//! The `Strategy` trait and combinators.

use std::fmt::Debug;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// One arm of a [`Union`]: a weight plus a type-erased generator.
pub type UnionArm<V> = (u32, Rc<dyn Fn(&mut TestRng) -> V>);

/// Type-erases a strategy into a weighted [`Union`] arm
/// (used by `prop_oneof!`).
pub fn weighted_arm<S: Strategy + 'static>(weight: u32, strategy: S) -> UnionArm<S::Value> {
    (weight, Rc::new(move |rng| strategy.generate(rng)))
}

/// A weighted choice between strategies producing the same type.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<V> Union<V> {
    /// Builds a union from weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        let total: u64 = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum to total")
    }
}
