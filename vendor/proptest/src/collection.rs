//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

fn pick_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(range.start < range.end, "empty size range");
    range.start + rng.below((range.end - range.start) as u64) as usize
}

/// Generates `Vec`s with a length drawn from `size` (half-open).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = pick_len(&self.size, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeSet`s with *up to* the drawn number of elements
/// (duplicates collapse, as in upstream proptest's minimum-size-0 usage).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = pick_len(&self.size, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `BTreeMap`s with *up to* the drawn number of entries
/// (duplicate keys collapse).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = pick_len(&self.size, rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}
