//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/`prop_map`/[`prop_oneof!`] strategies,
//! `collection::{vec, btree_set, btree_map}`, `sample::select`,
//! `bool::ANY` and the `prop_assert*` macros.
//!
//! Differences from upstream: generation is seeded deterministically from
//! the test's module path and name (no `PROPTEST_*` env handling), and
//! failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` function running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Bind each strategy once under its argument's name; the
            // per-case value bindings below shadow them.
            $(let $arg = $strat;)+
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)+
                let __case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(err) = __result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} with inputs: {}",
                        stringify!($name), __case + 1, __config.cases, __case_desc,
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies, optionally weighted
/// (`weight => strategy`). All arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::weighted_arm(1u32, $strat)),+
        ])
    };
}
