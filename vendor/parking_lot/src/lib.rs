//! Offline stand-in for `parking_lot`: the same non-poisoning `Mutex` /
//! `RwLock` surface, implemented over `std::sync`. A panicked holder's
//! poison flag is swallowed, matching parking_lot's semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), [1, 2]);
        assert_eq!(l.into_inner(), [1, 2]);
    }
}
