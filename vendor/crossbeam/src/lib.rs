//! Offline stand-in for the slice of `crossbeam` pscd uses:
//! `crossbeam::thread::scope`, implemented over `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with crossbeam's `Result`-returning entry point.

    use std::any::Any;

    /// Handle passed to the scope closure; spawns scoped worker threads.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Mirroring crossbeam, the closure
        /// receives the scope so workers can spawn more workers.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// environment; all threads are joined before returning.
    ///
    /// Unlike crossbeam, a panicking child propagates the panic out of
    /// `scope` (std semantics) instead of surfacing as `Err`; the `Ok`
    /// wrapper is kept for call-site compatibility.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see above).
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_environment() {
        let counter = AtomicU32::new(0);
        let out = crate::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
