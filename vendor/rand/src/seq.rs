//! Sequence helpers (`shuffle`, `choose`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles only the first `amount` positions (a truncated
    /// Fisher–Yates): afterwards they hold a uniform sample of the whole
    /// slice. Returns the shuffled prefix and untouched suffix.
    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }

    fn partial_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(11));
        b.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3];
        for _ in 0..20 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
    }
}
