//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.10 API it actually
//! uses: the [`Rng`] extension methods (`random`, `random_range`,
//! `random_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`].
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64 — deterministic and
//! high-quality, but **not** stream-compatible with upstream `rand`'s
//! ChaCha-based `StdRng`. All workloads in this repository are generated
//! and consumed with this implementation, so reproducibility within the
//! repo is unaffected.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A uniform random generator: the trait bound used throughout pscd.
///
/// Also re-exported as `RngExt` (the name `rand` 0.10 gives the extension
/// trait carrying `random*` methods).
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the type's full range (`f64`: the
    /// half-open unit interval `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut |_| self.next_u64())
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

pub use Rng as RngExt;

/// Types samplable from 64 uniform bits via [`Rng::random`].
pub trait Standard {
    /// Converts 64 uniform bits into a uniform value of `Self`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        // 53 mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples a value using the provided 64-bit entropy source.
    fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (next(()) as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (next(()) as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::from_bits(next(()));
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(5..10u32);
            assert!((5..10).contains(&v));
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.random_range(-50..50i64);
            assert!((-50..50).contains(&i));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
