//! Concrete generators.

use crate::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256**
/// seeded via SplitMix64 (the same seeding scheme upstream `rand` uses
/// for `seed_from_u64`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}
