//! Offline stand-in for `serde`.
//!
//! The repository derives `Serialize`/`Deserialize` on its data types but
//! never serializes through serde (structured output is hand-rendered:
//! CSV in `pscd-experiments`, JSONL in `pscd-obs`). This shim keeps the
//! derive sites compiling without network access: the traits are empty
//! markers and the derives expand to nothing.

#![forbid(unsafe_code)]

/// Marker for types that upstream serde could serialize.
pub trait Serialize {}

/// Marker for types that upstream serde could deserialize.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
