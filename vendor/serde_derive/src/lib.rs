//! No-op `Serialize`/`Deserialize` derives for the offline serde shim.
//!
//! The derives accept the `#[serde(...)]` helper attribute and expand to
//! nothing; the shim's traits are never used as bounds in this workspace.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
