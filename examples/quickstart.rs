//! Quickstart: generate a news workload, run the paper's best strategy
//! against the access-only baseline, and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pscd::{simulate, FetchCosts, SimOptions, StrategyKind, Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10%-scale version of the paper's NEWS trace (α = 1.5): ~3,000
    // pages published over 7 simulated days, ~19,500 requests across 100
    // proxy servers. Use `WorkloadConfig::news()` for full paper scale.
    let workload = Workload::generate(&WorkloadConfig::news_scaled(0.1))?;
    println!(
        "workload: {} pages, {} requests, {} proxies over {}",
        workload.pages().len(),
        workload.requests().len(),
        workload.server_count(),
        workload.horizon(),
    );

    // Perfect subscription information (SQ = 1): the subscription counts
    // at each proxy predict its requests exactly.
    let subscriptions = workload.subscriptions(1.0)?;
    let costs = FetchCosts::uniform(workload.server_count());

    // Caches sized at 5% of each proxy's unique requested bytes.
    for kind in [
        StrategyKind::GdStar { beta: 2.0 }, // access-time baseline
        StrategyKind::Sub,                  // push-time only
        StrategyKind::Sg2 { beta: 2.0 },    // combined: GD* with f = s − a
    ] {
        let result = simulate(
            &workload,
            &subscriptions,
            &costs,
            &SimOptions::at_capacity(kind, 0.05),
        )?;
        println!(
            "{:6}  hit ratio {:5.1}%   pushed {:6} pages   fetched-on-miss {:6} pages",
            result.strategy,
            result.hit_ratio_percent(),
            result.traffic.pushed_pages,
            result.traffic.fetched_pages,
        );
    }
    Ok(())
}
