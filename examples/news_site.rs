//! A busy news site: the paper's full evaluation scenario.
//!
//! Replays the MSNBC-calibrated NEWS trace (30,147 pages, ~195k requests,
//! 100 geographically distributed proxies on a Waxman topology) through
//! every strategy in the paper at the three capacity settings, printing a
//! figure-4-style table plus the traffic bill of each strategy.
//!
//! ```text
//! cargo run --release --example news_site
//! ```

use pscd::experiments::TextTable;
use pscd::{
    simulate, FetchCosts, SimOptions, StrategyKind, TopologyBuilder, Workload, WorkloadConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Full paper scale; takes a few seconds in release mode.
    let workload = Workload::generate(&WorkloadConfig::news())?;
    let subscriptions = workload.subscriptions(1.0)?;

    // 1 publisher + 100 proxies wired by the Waxman model (BRITE's
    // default); fetch cost = network distance to the publisher.
    let topology = TopologyBuilder::new(workload.server_count() as usize + 1)
        .seed(42)
        .build()?;
    let costs = FetchCosts::from_topology(&topology, 0)?;
    println!(
        "topology: {} nodes, {} edges; fetch costs in [{:.2}, {:.2}]",
        topology.node_count(),
        topology.edge_count(),
        costs.min(),
        costs.max()
    );

    let lineup = [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ];

    let mut headers = vec!["capacity".to_owned()];
    headers.extend(lineup.iter().map(|k| k.name().to_owned()));
    let mut table = TextTable::new(headers);
    for capacity in [0.01, 0.05, 0.10] {
        let mut row = vec![format!("{:.0}%", capacity * 100.0)];
        for kind in lineup {
            let r = simulate(
                &workload,
                &subscriptions,
                &costs,
                &SimOptions::at_capacity(kind, capacity),
            )?;
            row.push(format!("{:.1}", r.hit_ratio_percent()));
        }
        table.add_row(row);
    }
    println!("\nHit ratio (%) by strategy and capacity (SQ = 1):\n{table}");

    println!("Traffic at 5% capacity (publisher→proxy):");
    for kind in lineup {
        let r = simulate(
            &workload,
            &subscriptions,
            &costs,
            &SimOptions::at_capacity(kind, 0.05),
        )?;
        println!(
            "  {:6}  pushed {:>8} pages / {:>9}   fetched {:>8} pages / {:>9}",
            r.strategy,
            r.traffic.pushed_pages,
            r.traffic.pushed_bytes.to_string(),
            r.traffic.fetched_pages,
            r.traffic.fetched_bytes.to_string(),
        );
    }
    Ok(())
}
