//! How good do subscriptions have to be?
//!
//! Subscriptions rarely predict accesses perfectly: users subscribe to
//! broad categories and read only some matching pages. The paper models
//! this with *subscription quality* (SQ ∈ (0, 1], eq. 7) and shows that
//! strategies disagree sharply in their sensitivity: SR collapses to the
//! baseline as SQ falls, while SG1 and DC-LAP barely notice.
//!
//! ```text
//! cargo run --release --example subscription_quality
//! ```

use pscd::experiments::TextTable;
use pscd::{simulate, FetchCosts, SimOptions, StrategyKind, Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(&WorkloadConfig::news_scaled(0.25))?;
    let costs = FetchCosts::uniform(workload.server_count());

    let lineup = [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::dc_lap(2.0),
    ];

    let mut headers = vec!["SQ".to_owned()];
    headers.extend(lineup.iter().map(|k| k.name().to_owned()));
    let mut table = TextTable::new(headers);

    for quality in [0.25, 0.5, 0.75, 1.0] {
        // Each quality level derives a different subscription table from
        // the same request trace: lower SQ inflates subscription counts
        // with noise (subscribers who never come back for the page).
        let subscriptions = workload.subscriptions(quality)?;
        let mut row = vec![format!("{quality}")];
        for kind in lineup {
            let r = simulate(
                &workload,
                &subscriptions,
                &costs,
                &SimOptions::at_capacity(kind, 0.05),
            )?;
            row.push(format!("{:.1}", r.hit_ratio_percent()));
        }
        table.add_row(row);
    }

    println!("Hit ratio (%) vs subscription quality (capacity = 5%):\n{table}");
    println!("Reading guide:");
    println!("  - GD* ignores subscriptions: flat across SQ.");
    println!("  - SR trusts the prediction s−a completely: best at SQ=1, collapses below.");
    println!("  - SG1/DC-LAP blend history with prediction: robust at every SQ.");
    Ok(())
}
