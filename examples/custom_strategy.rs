//! Plugging a custom strategy into the simulator.
//!
//! The paper points out that its framework composes with other
//! replacement algorithms. This example implements a new combined
//! strategy — *push-everything + LRU* — against the public
//! [`Strategy`] trait and races it against GD\* and SG2 on the same
//! workload. (It loses: pushing without a value function thrashes the
//! cache.)
//!
//! ```text
//! cargo run --release --example custom_strategy
//! ```

use pscd::cache::{AccessOutcome, CachePolicy, Lru};
use pscd::strategies::{PushOutcome, StrategyClass};
use pscd::types::SubscriptionTable;
use pscd::{
    Bytes, FetchCosts, PageId, PageRef, PushScheme, SimOptions, Strategy, StrategyKind, Workload,
    WorkloadConfig,
};

/// Pushes every matched page (no value judgement) and runs plain LRU over
/// the shared cache for both placement opportunities.
#[derive(Debug)]
struct PushLru {
    cache: Lru,
}

impl PushLru {
    fn new(capacity: Bytes) -> Self {
        Self {
            cache: Lru::new(capacity),
        }
    }
}

impl Strategy for PushLru {
    fn name(&self) -> &'static str {
        "PushLRU"
    }

    fn class(&self) -> StrategyClass {
        StrategyClass::Combined
    }

    fn on_push(&mut self, page: &PageRef, _subs: u32, evicted: &mut Vec<PageId>) -> PushOutcome {
        // Treat the push like an access: LRU admits unconditionally.
        match self.cache.access(page, evicted) {
            AccessOutcome::MissBypassed => PushOutcome::Declined,
            AccessOutcome::Hit | AccessOutcome::MissAdmitted => PushOutcome::Stored,
        }
    }

    fn would_store(&self, page: &PageRef, _subs: u32) -> bool {
        page.size <= self.cache.capacity()
    }

    fn on_access(
        &mut self,
        page: &PageRef,
        _subs: u32,
        evicted: &mut Vec<PageId>,
    ) -> AccessOutcome {
        self.cache.access(page, evicted)
    }

    fn contains(&self, page: PageId) -> bool {
        self.cache.contains(page)
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.cache.invalidate(page)
    }

    fn capacity(&self) -> Bytes {
        self.cache.capacity()
    }

    fn used(&self) -> Bytes {
        self.cache.used()
    }

    fn len(&self) -> usize {
        self.cache.len()
    }
}

/// Runs a workload through a hand-built proxy fleet (the same loop
/// `pscd_sim::simulate` uses, written out to show the moving parts).
fn run_custom(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    build: impl Fn(Bytes) -> Box<dyn Strategy>,
) -> (f64, u64) {
    use pscd::DeliveryEngine;
    let capacities = workload.cache_capacities(0.05);
    let strategies: Vec<Box<dyn Strategy>> = capacities.iter().map(|&c| build(c)).collect();
    let costs = vec![1.0; workload.server_count() as usize];
    let mut engine = DeliveryEngine::new(strategies, costs, PushScheme::Always).unwrap();

    let pages = workload.pages();
    let publishes = workload.publishing().events();
    let requests = workload.requests().events();
    let (mut pi, mut ri) = (0, 0);
    while pi < publishes.len() || ri < requests.len() {
        let publish_first = match (publishes.get(pi), requests.get(ri)) {
            (Some(p), Some(r)) => p.time <= r.time,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if publish_first {
            let ev = publishes[pi];
            pi += 1;
            engine.publish(
                &pages[ev.page.as_usize()],
                subscriptions.matched_servers(ev.page),
            );
        } else {
            let ev = requests[ri];
            ri += 1;
            let subs = subscriptions.count(ev.page, ev.server);
            engine
                .request_with_subs(ev.server, &pages[ev.page.as_usize()], subs)
                .unwrap();
        }
    }
    (
        engine.global_hit_ratio(),
        engine.total_traffic().total_pages(),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(&WorkloadConfig::news_scaled(0.1))?;
    let subscriptions = workload.subscriptions(1.0)?;

    let (h, pages) = run_custom(&workload, &subscriptions, |cap| Box::new(PushLru::new(cap)));
    println!(
        "PushLRU  hit ratio {:5.1}%   traffic {pages} pages",
        100.0 * h
    );

    // The built-in strategies, through the standard simulator.
    let costs = FetchCosts::uniform(workload.server_count());
    for kind in [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
    ] {
        let r = pscd::simulate(
            &workload,
            &subscriptions,
            &costs,
            &SimOptions::at_capacity(kind, 0.05),
        )?;
        println!(
            "{:8} hit ratio {:5.1}%   traffic {} pages",
            r.strategy,
            r.hit_ratio_percent(),
            r.traffic.total_pages()
        );
    }
    Ok(())
}
