//! End-to-end publish/subscribe with real content-based matching.
//!
//! The paper's workload only models subscription *counts*; this example
//! exercises the full pipeline instead: users register predicate
//! subscriptions ("category == sports AND tags contains tennis"), the
//! counting-based matching engine evaluates each published page, and the
//! delivery engine pushes matched pages to the subscribers' proxies.
//!
//! ```text
//! cargo run --release --example broker_matching
//! ```

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pscd::matching::{covers, EngineMatcher};
use pscd::workload::{ContentModel, CATEGORIES};
use pscd::{
    Content, DeliveryEngine, Matcher, Predicate, PushScheme, ServerId, Strategy, StrategyKind,
    Subscription, Value, Workload, WorkloadConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(&WorkloadConfig::news_scaled(0.02))?;
    let servers = workload.server_count();
    let model = ContentModel::new(7);
    let mut rng = StdRng::seed_from_u64(99);

    // 1. Register ~2,000 synthetic users, each with a category-based
    //    subscription (some also require a minimum article size).
    let mut matcher = EngineMatcher::new(servers);
    for _ in 0..2_000 {
        let server = ServerId::new(rng.random_range(0..servers));
        let category = CATEGORIES[rng.random_range(0..CATEGORIES.len())];
        let mut predicates = vec![Predicate::eq("category", Value::str(category))];
        if rng.random::<f64>() < 0.3 {
            predicates.push(Predicate::ge("bytes", 4_096));
        }
        matcher.subscribe(server, Subscription::new(predicates))?;
    }

    // The covering relation lets a broker aggregate: the plain category
    // subscription covers the size-restricted one.
    let wide = Subscription::new(vec![Predicate::eq("category", Value::str("sports"))]);
    let narrow = Subscription::new(vec![
        Predicate::eq("category", Value::str("sports")),
        Predicate::ge("bytes", 4_096),
    ]);
    assert!(covers(&wide, &narrow));
    println!("covering check: {wide}  ⊒  {narrow}");

    // 2. Proxies run SG2; deliveries use Pushing-When-Necessary.
    let capacities = workload.cache_capacities(0.05);
    let strategies: Vec<Box<dyn Strategy>> = capacities
        .iter()
        .map(|&c| StrategyKind::Sg2 { beta: 2.0 }.build(c))
        .collect();
    let mut engine = DeliveryEngine::new(
        strategies,
        vec![1.0; servers as usize],
        PushScheme::WhenNecessary,
    )?;

    // 3. Replay the publishing stream through the matching engine; after
    //    each notification, most subscribers read the page right away and
    //    some never do (notification-driven access, ~70% read rate).
    let pages = workload.pages();
    let mut notified_pairs = 0u64;
    let mut requests = 0u64;
    for ev in workload.publishing() {
        let meta = &pages[ev.page.as_usize()];
        let content: Content = model.content_for(meta);
        matcher.register_page(ev.page, content);
        let matched = matcher.matched_servers(ev.page);
        notified_pairs += matched.len() as u64;
        engine.publish(meta, &matched);
        for (server, subs) in matched {
            if rng.random::<f64>() < 0.7 {
                engine.request_with_subs(server, meta, subs)?;
                requests += 1;
            }
        }
    }
    println!(
        "published {} pages; {} (page, proxy) notification pairs",
        pages.len(),
        notified_pairs
    );
    println!(
        "served {requests} notification-driven requests; hit ratio {:.1}%",
        100.0 * engine.global_hit_ratio()
    );
    println!(
        "traffic: {} pushed pages, {} fetched pages",
        engine.total_traffic().pushed_pages,
        engine.total_traffic().fetched_pages
    );
    Ok(())
}
