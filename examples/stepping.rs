//! Driving the simulator one event at a time.
//!
//! The batch API (`pscd::simulate`) replays a whole 7-day workload in one
//! call; the stepping API exposes every event, which makes it easy to add
//! custom instrumentation, stop early, or — as here — watch how a
//! mid-week proxy-fleet crash plays out hour by hour.
//!
//! ```text
//! cargo run --release --example stepping
//! ```

use pscd::sim::{Simulation, StepEvent};
use pscd::{CrashPlan, FetchCosts, SimOptions, SimTime, StrategyKind, Workload, WorkloadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::generate(&WorkloadConfig::news_scaled(0.1))?;
    let subscriptions = workload.subscriptions(1.0)?;
    let costs = FetchCosts::uniform(workload.server_count());

    // SG2 with every proxy crashing at hour 84.
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05)
        .with_crash(CrashPlan::new(SimTime::from_hours(84), 1.0));
    let mut sim = Simulation::new(&workload, &subscriptions, &costs, &options)?;

    let mut window_hits = 0u64;
    let mut window_requests = 0u64;
    let mut current_day = 0usize;
    while let Some(event) = sim.step() {
        match event {
            StepEvent::Crashed { servers } => {
                println!(">>> crash: {servers} proxies restarted with cold caches");
            }
            StepEvent::Requested { time, hit, .. } => {
                // Print a daily digest as the timeline crosses midnight.
                if time.day_index() != current_day {
                    report_day(current_day, window_hits, window_requests);
                    current_day = time.day_index();
                    window_hits = 0;
                    window_requests = 0;
                }
                window_requests += 1;
                if hit {
                    window_hits += 1;
                }
            }
            StepEvent::Published { .. } | StepEvent::Invalidated { .. } => {}
        }
    }
    report_day(current_day, window_hits, window_requests);

    let result = sim.finish();
    println!(
        "\noverall: {:.1}% hit ratio over {} requests ({} pushed pages)",
        result.hit_ratio_percent(),
        result.requests,
        result.traffic.pushed_pages
    );
    Ok(())
}

fn report_day(day: usize, hits: u64, requests: u64) {
    if requests == 0 {
        return;
    }
    println!(
        "day {day}: {:5.1}% hit ratio ({requests} requests)",
        100.0 * hits as f64 / requests as f64
    );
}
