//! Property tests for the vocabulary types.

use proptest::prelude::*;

use pscd_types::{
    Bytes, PageId, RequestEvent, RequestTrace, ServerId, SimTime, SubscriptionTableBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Time arithmetic is consistent with raw millisecond arithmetic.
    #[test]
    fn simtime_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime::from_millis(a), SimTime::from_millis(b));
        prop_assert_eq!((ta + tb).as_millis(), a + b);
        prop_assert_eq!(ta.saturating_since(tb).as_millis(), a.saturating_sub(b));
        prop_assert_eq!(ta.min(tb).as_millis(), a.min(b));
        prop_assert_eq!(ta.max(tb).as_millis(), a.max(b));
        prop_assert_eq!(ta.hour_index(), (a / 3_600_000) as usize);
        prop_assert_eq!(ta.day_index(), (a / 86_400_000) as usize);
    }

    /// Fractional-hour conversion round-trips within a millisecond
    /// (plus f64 representation error at large magnitudes).
    #[test]
    fn simtime_hours_roundtrip(h in 0.0f64..10_000.0) {
        let t = SimTime::from_hours_f64(h);
        let err_ms = (t.as_hours_f64() - h).abs() * 3_600_000.0;
        let tolerance = 0.5 + h * 3_600_000.0 * 1e-12 + 1e-9;
        prop_assert!(err_ms <= tolerance, "err {err_ms} > tol {tolerance}");
    }

    /// Byte arithmetic is consistent with raw u64 arithmetic.
    #[test]
    fn bytes_arithmetic(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ba, bb) = (Bytes::new(a), Bytes::new(b));
        prop_assert_eq!((ba + bb).as_u64(), a + b);
        prop_assert_eq!(ba.saturating_sub(bb).as_u64(), a.saturating_sub(b));
        prop_assert_eq!([ba, bb].iter().sum::<Bytes>().as_u64(), a + b);
    }

    /// Scaling is monotone in the fraction and never exceeds the input
    /// for fractions <= 1.
    #[test]
    fn bytes_scaling_monotone(n in 0u64..1_000_000_000, f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let b = Bytes::new(n);
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(b.scaled(lo) <= b.scaled(hi));
        // Rounding can add at most half a byte.
        prop_assert!(b.scaled(hi).as_u64() <= n + 1);
    }

    /// `from_unsorted` sorts stably and preserves the multiset of events.
    #[test]
    fn trace_sorting(events in proptest::collection::vec(
        (0u64..1_000, 0u16..8, 0u32..50), 0..200,
    )) {
        let evs: Vec<RequestEvent> = events
            .iter()
            .map(|&(t, s, p)| RequestEvent::new(
                SimTime::from_millis(t),
                ServerId::new(s),
                PageId::new(p),
            ))
            .collect();
        let trace = RequestTrace::from_unsorted(evs.clone());
        prop_assert_eq!(trace.len(), evs.len());
        // Sorted.
        let times: Vec<_> = trace.iter().map(|e| e.time).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Same multiset.
        let mut a: Vec<_> = evs.iter().map(|e| (e.time, e.server, e.page)).collect();
        let mut b: Vec<_> = trace.iter().map(|e| (e.time, e.server, e.page)).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Sorted traces re-validate.
        prop_assert!(RequestTrace::new(trace.events().to_vec()).is_ok());
    }

    /// The subscription-table builder accumulates exactly like a map.
    #[test]
    fn subscription_builder_accumulates(adds in proptest::collection::vec(
        (0u32..10, 0u16..5, 0u32..50), 0..100,
    )) {
        let mut builder = SubscriptionTableBuilder::new(10);
        let mut reference: std::collections::HashMap<(u32, u16), u64> =
            std::collections::HashMap::new();
        for &(p, s, c) in &adds {
            builder.add(PageId::new(p), ServerId::new(s), c);
            if c > 0 {
                *reference.entry((p, s)).or_default() += c as u64;
            }
        }
        let table = builder.build();
        for p in 0..10u32 {
            for s in 0..5u16 {
                let expected = reference.get(&(p, s)).copied().unwrap_or(0);
                prop_assert_eq!(
                    table.count(PageId::new(p), ServerId::new(s)) as u64,
                    expected
                );
            }
        }
        // matched_servers is sorted and strictly positive.
        for p in 0..10u32 {
            let row = table.matched_servers(PageId::new(p));
            prop_assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
            prop_assert!(row.iter().all(|&(_, c)| c > 0));
        }
        // Total equals the sum of all adds.
        let total: u64 = table.iter().map(|(_, _, c)| c as u64).sum();
        prop_assert_eq!(total, reference.values().sum::<u64>());
    }

    /// Unique-bytes accounting matches a set-based reference.
    #[test]
    fn unique_bytes_reference(events in proptest::collection::vec(
        (0u64..500, 0u16..4, 0u32..20), 0..150,
    )) {
        use pscd_types::{PageKind, PageMeta};
        let pages: Vec<PageMeta> = (0..20u32)
            .map(|i| PageMeta::new(
                PageId::new(i),
                Bytes::new(10 + i as u64),
                SimTime::ZERO,
                PageKind::Original,
            ))
            .collect();
        let evs: Vec<RequestEvent> = events
            .iter()
            .map(|&(t, s, p)| RequestEvent::new(
                SimTime::from_millis(t),
                ServerId::new(s),
                PageId::new(p),
            ))
            .collect();
        let trace = RequestTrace::from_unsorted(evs.clone());
        let got = trace.unique_bytes_per_server(&pages, 4);
        for s in 0..4u16 {
            let mut seen = std::collections::HashSet::new();
            let mut expect = 0u64;
            for e in &evs {
                if e.server.index() == s && seen.insert(e.page) {
                    expect += pages[e.page.as_usize()].size().as_u64();
                }
            }
            prop_assert_eq!(got[s as usize].as_u64(), expect);
        }
    }
}
