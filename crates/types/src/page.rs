//! Page metadata.

use serde::{Deserialize, Serialize};

use crate::{Bytes, PageId, SimTime};

/// Whether a page is an original publication or a modified version of an
/// earlier page.
///
/// The paper's publishing stream contains ~6,000 distinct originals, 2,400 of
/// which accumulate ~24,000 modified versions over the 7-day horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageKind {
    /// A first publication of new content.
    Original,
    /// A re-publication (update) of an earlier page.
    Modified {
        /// The original page this version derives from.
        origin: PageId,
        /// 1-based version number among the origin's modifications.
        version: u32,
    },
}

impl PageKind {
    /// `true` for original publications.
    #[inline]
    pub const fn is_original(self) -> bool {
        matches!(self, PageKind::Original)
    }

    /// The original page this version derives from, or `None` for originals.
    #[inline]
    pub const fn origin(self) -> Option<PageId> {
        match self {
            PageKind::Original => None,
            PageKind::Modified { origin, .. } => Some(origin),
        }
    }
}

/// Immutable metadata of one published page (content object).
///
/// # Examples
///
/// ```
/// use pscd_types::{Bytes, PageId, PageKind, PageMeta, SimTime};
/// let page = PageMeta::new(
///     PageId::new(0),
///     Bytes::new(12_000),
///     SimTime::from_hours(5),
///     PageKind::Original,
/// );
/// assert_eq!(page.age_at(SimTime::from_hours(7)), SimTime::from_hours(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageMeta {
    id: PageId,
    size: Bytes,
    publish_time: SimTime,
    kind: PageKind,
}

impl PageMeta {
    /// Creates page metadata.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: zero-sized pages break the `c(p)/s(p)` value
    /// functions and cannot occur in the workload model.
    pub fn new(id: PageId, size: Bytes, publish_time: SimTime, kind: PageKind) -> Self {
        assert!(!size.is_zero(), "page size must be positive");
        Self {
            id,
            size,
            publish_time,
            kind,
        }
    }

    /// The page identifier.
    #[inline]
    pub const fn id(&self) -> PageId {
        self.id
    }

    /// The page size in bytes, `s(p)` in the paper's value functions.
    #[inline]
    pub const fn size(&self) -> Bytes {
        self.size
    }

    /// The instant this page (version) was published.
    #[inline]
    pub const fn publish_time(&self) -> SimTime {
        self.publish_time
    }

    /// Original/modified lineage of the page.
    #[inline]
    pub const fn kind(&self) -> PageKind {
        self.kind
    }

    /// Page age at instant `now`, saturating at zero before publication.
    #[inline]
    pub fn age_at(&self, now: SimTime) -> SimTime {
        now.saturating_since(self.publish_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(kind: PageKind) -> PageMeta {
        PageMeta::new(PageId::new(1), Bytes::new(10), SimTime::from_hours(1), kind)
    }

    #[test]
    fn accessors() {
        let p = page(PageKind::Original);
        assert_eq!(p.id(), PageId::new(1));
        assert_eq!(p.size(), Bytes::new(10));
        assert_eq!(p.publish_time(), SimTime::from_hours(1));
        assert!(p.kind().is_original());
        assert_eq!(p.kind().origin(), None);
    }

    #[test]
    fn modified_lineage() {
        let p = page(PageKind::Modified {
            origin: PageId::new(0),
            version: 3,
        });
        assert!(!p.kind().is_original());
        assert_eq!(p.kind().origin(), Some(PageId::new(0)));
    }

    #[test]
    fn age_saturates_before_publish() {
        let p = page(PageKind::Original);
        assert_eq!(p.age_at(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(p.age_at(SimTime::from_hours(3)), SimTime::from_hours(2));
    }

    #[test]
    #[should_panic(expected = "page size must be positive")]
    fn zero_size_rejected() {
        let _ = PageMeta::new(
            PageId::new(0),
            Bytes::ZERO,
            SimTime::ZERO,
            PageKind::Original,
        );
    }
}
