//! Workload events.

use serde::{Deserialize, Serialize};

use crate::{PageId, ServerId, SimTime};

/// One entry of the publishing stream: a page becomes available at the
/// publisher at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublishEvent {
    /// When the page is published.
    pub time: SimTime,
    /// The page being published.
    pub page: PageId,
}

impl PublishEvent {
    /// Creates a publish event.
    #[inline]
    pub const fn new(time: SimTime, page: PageId) -> Self {
        Self { time, page }
    }
}

/// One entry of a request trace: a subscriber attached to `server` requests
/// the content of `page` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// When the request arrives at the proxy.
    pub time: SimTime,
    /// The proxy server the requesting subscriber is attached to.
    pub server: ServerId,
    /// The requested page.
    pub page: PageId,
}

impl RequestEvent {
    /// Creates a request event.
    #[inline]
    pub const fn new(time: SimTime, server: ServerId, page: PageId) -> Self {
        Self { time, server, page }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_store_fields() {
        let p = PublishEvent::new(SimTime::from_secs(1), PageId::new(2));
        assert_eq!(p.time, SimTime::from_secs(1));
        assert_eq!(p.page, PageId::new(2));
        let r = RequestEvent::new(SimTime::from_secs(3), ServerId::new(4), PageId::new(5));
        assert_eq!(r.time, SimTime::from_secs(3));
        assert_eq!(r.server, ServerId::new(4));
        assert_eq!(r.page, PageId::new(5));
    }
}
