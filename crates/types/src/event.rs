//! Workload events.

use serde::{Deserialize, Serialize};

use crate::{PageId, ServerId, SimTime};

/// One entry of the publishing stream: a page becomes available at the
/// publisher at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublishEvent {
    /// When the page is published.
    pub time: SimTime,
    /// The page being published.
    pub page: PageId,
}

impl PublishEvent {
    /// Creates a publish event.
    #[inline]
    pub const fn new(time: SimTime, page: PageId) -> Self {
        Self { time, page }
    }
}

/// One entry of a request trace: a subscriber attached to `server` requests
/// the content of `page` at `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestEvent {
    /// When the request arrives at the proxy.
    pub time: SimTime,
    /// The proxy server the requesting subscriber is attached to.
    pub server: ServerId,
    /// The requested page.
    pub page: PageId,
}

impl RequestEvent {
    /// Creates a request event.
    #[inline]
    pub const fn new(time: SimTime, server: ServerId, page: PageId) -> Self {
        Self { time, server, page }
    }
}

/// One message arriving at a live broker's front door: the service-mode
/// equivalent of a pre-merged replay timeline, where subscriptions,
/// publications, and requests are individual ingest events instead of
/// precompiled tables.
///
/// Events carry their simulated timestamp (used for hourly accounting);
/// subscriptions are instantaneous control messages and carry none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LiveEvent {
    /// Sets the number of subscriptions matching `page` at `server`.
    Subscribe {
        /// The page the subscriptions match.
        page: PageId,
        /// The proxy the subscribers are attached to.
        server: ServerId,
        /// The new subscription count (replaces the previous one).
        count: u32,
    },
    /// A page becomes available at the publisher.
    Publish {
        /// When the page is published.
        time: SimTime,
        /// The page being published.
        page: PageId,
    },
    /// A subscriber attached to `server` requests `page`.
    Request {
        /// When the request arrives at the proxy.
        time: SimTime,
        /// The proxy server the requesting subscriber is attached to.
        server: ServerId,
        /// The requested page.
        page: PageId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_event_variants_compare_by_field() {
        let sub = LiveEvent::Subscribe {
            page: PageId::new(1),
            server: ServerId::new(2),
            count: 3,
        };
        let publ = LiveEvent::Publish {
            time: SimTime::from_secs(4),
            page: PageId::new(5),
        };
        let req = LiveEvent::Request {
            time: SimTime::from_secs(6),
            server: ServerId::new(7),
            page: PageId::new(8),
        };
        // Copy semantics and per-variant equality.
        let copy = sub;
        assert_eq!(copy, sub);
        assert_ne!(sub, publ);
        assert_ne!(publ, req);
        assert_ne!(
            publ,
            LiveEvent::Publish {
                time: SimTime::from_secs(4),
                page: PageId::new(6),
            }
        );
    }

    #[test]
    fn constructors_store_fields() {
        let p = PublishEvent::new(SimTime::from_secs(1), PageId::new(2));
        assert_eq!(p.time, SimTime::from_secs(1));
        assert_eq!(p.page, PageId::new(2));
        let r = RequestEvent::new(SimTime::from_secs(3), ServerId::new(4), PageId::new(5));
        assert_eq!(r.time, SimTime::from_secs(3));
        assert_eq!(r.server, ServerId::new(4));
        assert_eq!(r.page, PageId::new(5));
    }
}
