//! Strongly typed identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a published page (one content object / version).
///
/// Pages are dense indices into a page table, so `PageId` is a thin wrapper
/// around `u32` that prevents accidental mixing with other integers.
///
/// # Examples
///
/// ```
/// use pscd_types::PageId;
/// let p = PageId::new(42);
/// assert_eq!(p.index(), 42);
/// assert_eq!(p.to_string(), "page42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PageId(u32);

impl PageId {
    /// Creates a page identifier from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the dense index of this page.
    #[inline]
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Returns the dense index as a `usize`, convenient for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

impl From<u32> for PageId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

impl From<PageId> for u32 {
    fn from(id: PageId) -> Self {
        id.0
    }
}

/// Identifier of a proxy (content-distribution) server.
///
/// The paper's evaluation uses 100 proxy servers; `ServerId` is a dense index
/// into the server table.
///
/// # Examples
///
/// ```
/// use pscd_types::ServerId;
/// let s = ServerId::new(3);
/// assert_eq!(s.index(), 3);
/// assert_eq!(s.to_string(), "server3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ServerId(u16);

impl ServerId {
    /// Creates a server identifier from its dense index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        Self(index)
    }

    /// Returns the dense index of this server.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// Returns the dense index as a `usize`, convenient for table lookups.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` server identifiers: `server0..server(n-1)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pscd_types::ServerId;
    /// let all: Vec<_> = ServerId::all(3).collect();
    /// assert_eq!(all, [ServerId::new(0), ServerId::new(1), ServerId::new(2)]);
    /// ```
    pub fn all(n: u16) -> impl Iterator<Item = ServerId> {
        (0..n).map(ServerId::new)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server{}", self.0)
    }
}

impl From<u16> for ServerId {
    fn from(index: u16) -> Self {
        Self::new(index)
    }
}

impl From<ServerId> for u16 {
    fn from(id: ServerId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_roundtrip() {
        let p = PageId::new(17);
        assert_eq!(u32::from(p), 17);
        assert_eq!(PageId::from(17u32), p);
        assert_eq!(p.as_usize(), 17usize);
    }

    #[test]
    fn server_id_roundtrip() {
        let s = ServerId::new(99);
        assert_eq!(u16::from(s), 99);
        assert_eq!(ServerId::from(99u16), s);
        assert_eq!(s.as_usize(), 99usize);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(PageId::new(1) < PageId::new(2));
        assert!(ServerId::new(0) < ServerId::new(10));
    }

    #[test]
    fn server_all_enumerates() {
        assert_eq!(ServerId::all(0).count(), 0);
        assert_eq!(ServerId::all(100).count(), 100);
        assert_eq!(ServerId::all(2).last(), Some(ServerId::new(1)));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(PageId::new(0).to_string(), "page0");
        assert_eq!(ServerId::new(0).to_string(), "server0");
    }
}
