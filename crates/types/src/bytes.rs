//! Content and cache sizes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A number of bytes: the size of a page, a cache, or a traffic total.
///
/// # Examples
///
/// ```
/// use pscd_types::Bytes;
/// let cache = Bytes::from_kib(64);
/// let page = Bytes::new(10_000);
/// assert!(page < cache);
/// assert_eq!((cache - page).as_u64(), 55_536);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a size from a raw byte count.
    #[inline]
    pub const fn new(bytes: u64) -> Self {
        Self(bytes)
    }

    /// Creates a size from kibibytes (1 KiB = 1024 bytes).
    #[inline]
    pub const fn from_kib(kib: u64) -> Self {
        Self(kib * 1024)
    }

    /// Creates a size from mebibytes (1 MiB = 1024 KiB).
    #[inline]
    pub const fn from_mib(mib: u64) -> Self {
        Self(mib * 1024 * 1024)
    }

    /// The raw byte count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The byte count as an `f64`, for value functions (`c(p)/s(p)` terms).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// `true` if this is exactly zero bytes.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Difference saturating at zero, for free-space computations that may
    /// transiently overshoot.
    #[inline]
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// A fraction of this size, rounded to the nearest byte and clamped to be
    /// non-negative. Used to derive per-server cache capacities as a
    /// percentage of unique bytes requested (paper §5.1).
    ///
    /// # Examples
    ///
    /// ```
    /// use pscd_types::Bytes;
    /// assert_eq!(Bytes::new(1000).scaled(0.05), Bytes::new(50));
    /// ```
    #[inline]
    pub fn scaled(self, fraction: f64) -> Bytes {
        Bytes(((self.0 as f64 * fraction).round()).max(0.0) as u64)
    }

    /// Returns the smaller of two sizes.
    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two sizes.
    #[inline]
    pub fn max(self, other: Bytes) -> Bytes {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics in debug builds on underflow; use [`Bytes::saturating_sub`]
    /// when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl SubAssign for Bytes {
    #[inline]
    fn sub_assign(&mut self, rhs: Bytes) {
        self.0 -= rhs.0;
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl<'a> Sum<&'a Bytes> for Bytes {
    fn sum<I: Iterator<Item = &'a Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl From<u64> for Bytes {
    fn from(bytes: u64) -> Self {
        Self(bytes)
    }
}

impl From<Bytes> for u64 {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const KIB: u64 = 1024;
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        if self.0 >= GIB {
            write!(f, "{:.2}GiB", self.0 as f64 / GIB as f64)
        } else if self.0 >= MIB {
            write!(f, "{:.2}MiB", self.0 as f64 / MIB as f64)
        } else if self.0 >= KIB {
            write!(f, "{:.2}KiB", self.0 as f64 / KIB as f64)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Bytes::from_kib(2).as_u64(), 2048);
        assert_eq!(Bytes::from_mib(1).as_u64(), 1_048_576);
        assert_eq!(Bytes::from(5u64), Bytes::new(5));
        assert_eq!(u64::from(Bytes::new(5)), 5);
    }

    #[test]
    fn arithmetic_and_sum() {
        let mut b = Bytes::new(100);
        b += Bytes::new(50);
        b -= Bytes::new(25);
        assert_eq!(b, Bytes::new(125));
        assert_eq!(Bytes::new(10).saturating_sub(Bytes::new(20)), Bytes::ZERO);
        let v = [Bytes::new(1), Bytes::new(2), Bytes::new(3)];
        assert_eq!(v.iter().sum::<Bytes>(), Bytes::new(6));
        assert_eq!(v.into_iter().sum::<Bytes>(), Bytes::new(6));
    }

    #[test]
    fn scaling() {
        assert_eq!(Bytes::new(1_000_000).scaled(0.01), Bytes::new(10_000));
        assert_eq!(Bytes::new(3).scaled(0.5), Bytes::new(2)); // rounds
        assert_eq!(Bytes::new(100).scaled(-1.0), Bytes::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::new(512).to_string(), "512B");
        assert_eq!(Bytes::from_kib(1).to_string(), "1.00KiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3.00MiB");
        assert_eq!(Bytes::from_mib(2048).to_string(), "2.00GiB");
    }

    #[test]
    fn min_max_zero() {
        assert!(Bytes::ZERO.is_zero());
        assert_eq!(Bytes::new(1).min(Bytes::new(2)), Bytes::new(1));
        assert_eq!(Bytes::new(1).max(Bytes::new(2)), Bytes::new(2));
    }
}
