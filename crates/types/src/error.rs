//! Error types for trace construction.

use std::error::Error;
use std::fmt;

/// Error returned when building a trace container from invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// Events were not sorted by non-decreasing time.
    Unsorted {
        /// Index of the first out-of-order event.
        index: usize,
    },
    /// An event references a page id outside the page table.
    UnknownPage {
        /// Index of the offending event.
        index: usize,
        /// The out-of-range page index.
        page_index: u32,
        /// Number of pages in the page table.
        page_count: usize,
    },
    /// An event references a server id outside the configured server count.
    UnknownServer {
        /// Index of the offending event.
        index: usize,
        /// The out-of-range server index.
        server_index: u16,
        /// Number of configured servers.
        server_count: u16,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Unsorted { index } => {
                write!(f, "event at index {index} is earlier than its predecessor")
            }
            TraceError::UnknownPage {
                index,
                page_index,
                page_count,
            } => write!(
                f,
                "event at index {index} references page {page_index} but only {page_count} pages exist"
            ),
            TraceError::UnknownServer {
                index,
                server_index,
                server_count,
            } => write!(
                f,
                "event at index {index} references server {server_index} but only {server_count} servers exist"
            ),
        }
    }
}

impl Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::Unsorted { index: 3 };
        assert!(e.to_string().contains("index 3"));
        let e = TraceError::UnknownPage {
            index: 1,
            page_index: 9,
            page_count: 5,
        };
        assert!(e.to_string().contains("page 9"));
        let e = TraceError::UnknownServer {
            index: 0,
            server_index: 7,
            server_count: 4,
        };
        assert!(e.to_string().contains("server 7"));
    }
}
