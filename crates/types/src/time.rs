//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in (or span of) simulation time, millisecond resolution.
///
/// The paper simulates a 7-day horizon; millisecond resolution in a `u64`
/// keeps arithmetic exact and totally ordered, which the discrete-event
/// simulator relies on.
///
/// `SimTime` doubles as a duration (the natural zero is the simulation
/// start), mirroring how the paper treats "time" and "age" interchangeably.
///
/// # Examples
///
/// ```
/// use pscd_types::SimTime;
/// let t = SimTime::from_days(1) + SimTime::from_hours(2);
/// assert_eq!(t.hour_index(), 26);
/// assert_eq!(t.as_hours_f64(), 26.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Milliseconds per second.
    pub const MILLIS_PER_SEC: u64 = 1_000;
    /// Milliseconds per hour.
    pub const MILLIS_PER_HOUR: u64 = 3_600_000;
    /// Milliseconds per day.
    pub const MILLIS_PER_DAY: u64 = 86_400_000;

    /// Creates a time from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// Creates a time from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * Self::MILLIS_PER_SEC)
    }

    /// Creates a time from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Self(hours * Self::MILLIS_PER_HOUR)
    }

    /// Creates a time from whole days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Self(days * Self::MILLIS_PER_DAY)
    }

    /// Creates a time from fractional hours, rounding to the nearest
    /// millisecond. Negative inputs saturate to [`SimTime::ZERO`].
    #[inline]
    pub fn from_hours_f64(hours: f64) -> Self {
        Self(((hours * Self::MILLIS_PER_HOUR as f64).round()).max(0.0) as u64)
    }

    /// Raw milliseconds since the simulation start.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::MILLIS_PER_SEC as f64
    }

    /// Fractional hours since the simulation start.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / Self::MILLIS_PER_HOUR as f64
    }

    /// Fractional days since the simulation start.
    #[inline]
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / Self::MILLIS_PER_DAY as f64
    }

    /// Index of the hour bucket containing this instant (hour 0 starts at
    /// time zero). Used for the paper's hourly hit-ratio and traffic series.
    #[inline]
    pub const fn hour_index(self) -> usize {
        (self.0 / Self::MILLIS_PER_HOUR) as usize
    }

    /// Index of the day bucket containing this instant (day 0 starts at time
    /// zero). Used when assigning per-day server pools to pages.
    #[inline]
    pub const fn day_index(self) -> usize {
        (self.0 / Self::MILLIS_PER_DAY) as usize
    }

    /// Difference `self - earlier`, saturating at zero instead of wrapping.
    ///
    /// # Examples
    ///
    /// ```
    /// use pscd_types::SimTime;
    /// let a = SimTime::from_secs(5);
    /// let b = SimTime::from_secs(9);
    /// assert_eq!(b.saturating_since(a), SimTime::from_secs(4));
    /// assert_eq!(a.saturating_since(b), SimTime::ZERO);
    /// ```
    #[inline]
    pub const fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Returns the smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / Self::MILLIS_PER_SEC;
        let ms = self.0 % Self::MILLIS_PER_SEC;
        let (d, rem) = (total_secs / 86_400, total_secs % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, s) = (rem / 60, rem % 60);
        if ms == 0 {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}s")
        } else {
            write!(f, "{d}d{h:02}h{m:02}m{s:02}.{ms:03}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimTime::from_hours(1), SimTime::from_secs(3_600));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimTime::from_hours_f64(0.5), SimTime::from_secs(1_800));
    }

    #[test]
    fn negative_fractional_hours_saturate() {
        assert_eq!(SimTime::from_hours_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn bucket_indices() {
        assert_eq!(SimTime::ZERO.hour_index(), 0);
        assert_eq!(SimTime::from_hours(1).hour_index(), 1);
        assert_eq!(
            (SimTime::from_hours(1) - SimTime::from_millis(1)).hour_index(),
            0
        );
        assert_eq!(SimTime::from_days(6).day_index(), 6);
        assert_eq!(
            (SimTime::from_days(7) - SimTime::from_millis(1)).day_index(),
            6
        );
    }

    #[test]
    fn arithmetic() {
        let mut t = SimTime::from_secs(10);
        t += SimTime::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        t -= SimTime::from_secs(1);
        assert_eq!(t, SimTime::from_secs(14));
        assert_eq!(t.min(SimTime::ZERO), SimTime::ZERO);
        assert_eq!(t.max(SimTime::ZERO), t);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::ZERO.to_string(), "0d00h00m00s");
        let t = SimTime::from_days(2) + SimTime::from_hours(3) + SimTime::from_millis(42);
        assert_eq!(t.to_string(), "2d03h00m00.042s");
    }
}
