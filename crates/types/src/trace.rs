//! Sorted trace containers for publishing and request streams.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::{Bytes, PageMeta, PublishEvent, RequestEvent, ServerId, SimTime, TraceError};

fn check_sorted<T, K: Fn(&T) -> SimTime>(events: &[T], key: K) -> Result<(), TraceError> {
    for (i, w) in events.windows(2).enumerate() {
        if key(&w[1]) < key(&w[0]) {
            return Err(TraceError::Unsorted { index: i + 1 });
        }
    }
    Ok(())
}

/// The time-ordered stream of publish events fed to the publisher.
///
/// # Examples
///
/// ```
/// use pscd_types::{PageId, PublishEvent, PublishingStream, SimTime};
/// let stream = PublishingStream::new(vec![
///     PublishEvent::new(SimTime::from_secs(1), PageId::new(0)),
///     PublishEvent::new(SimTime::from_secs(2), PageId::new(1)),
/// ])?;
/// assert_eq!(stream.len(), 2);
/// # Ok::<(), pscd_types::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PublishingStream {
    events: Vec<PublishEvent>,
}

impl PublishingStream {
    /// Creates a stream from time-sorted events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Unsorted`] if the events are not in
    /// non-decreasing time order.
    pub fn new(events: Vec<PublishEvent>) -> Result<Self, TraceError> {
        check_sorted(&events, |e| e.time)?;
        Ok(Self { events })
    }

    /// Creates a stream from events in any order, sorting them by time
    /// (stable: equal-time events keep their relative order).
    pub fn from_unsorted(mut events: Vec<PublishEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// The events in time order.
    #[inline]
    pub fn events(&self) -> &[PublishEvent] {
        &self.events
    }

    /// Number of publish events.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the stream contains no events.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, PublishEvent> {
        self.events.iter()
    }
}

impl<'a> IntoIterator for &'a PublishingStream {
    type Item = &'a PublishEvent;
    type IntoIter = std::slice::Iter<'a, PublishEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for PublishingStream {
    type Item = PublishEvent;
    type IntoIter = std::vec::IntoIter<PublishEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

/// The time-ordered stream of page requests arriving at the proxy servers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RequestTrace {
    events: Vec<RequestEvent>,
}

impl RequestTrace {
    /// Creates a trace from time-sorted events.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Unsorted`] if the events are not in
    /// non-decreasing time order.
    pub fn new(events: Vec<RequestEvent>) -> Result<Self, TraceError> {
        check_sorted(&events, |e| e.time)?;
        Ok(Self { events })
    }

    /// Creates a trace from events in any order, sorting them by time
    /// (stable: equal-time events keep their relative order).
    pub fn from_unsorted(mut events: Vec<RequestEvent>) -> Self {
        events.sort_by_key(|e| e.time);
        Self { events }
    }

    /// The events in time order.
    #[inline]
    pub fn events(&self) -> &[RequestEvent] {
        &self.events
    }

    /// Number of requests.
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace contains no requests.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the requests in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, RequestEvent> {
        self.events.iter()
    }

    /// Per-server total of *unique* bytes requested over the whole trace.
    ///
    /// The paper sizes each proxy cache as a percentage of this quantity
    /// (§5.1). `pages` must be the page table the trace refers to.
    ///
    /// # Panics
    ///
    /// Panics if an event references a page outside `pages` or a server
    /// `>= server_count`.
    pub fn unique_bytes_per_server(&self, pages: &[PageMeta], server_count: u16) -> Vec<Bytes> {
        let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); server_count as usize];
        let mut totals = vec![Bytes::ZERO; server_count as usize];
        for ev in &self.events {
            let s = ev.server.as_usize();
            if seen[s].insert(ev.page.index()) {
                totals[s] += pages[ev.page.as_usize()].size();
            }
        }
        totals
    }

    /// Requests per server over the whole trace — the load vector trace
    /// compilation and shard planning balance on. Cheaper than
    /// [`stats`](RequestTrace::stats) (no distinct-page tracking).
    ///
    /// # Panics
    ///
    /// Panics if an event references a server `>= server_count`.
    pub fn requests_per_server(&self, server_count: u16) -> Vec<u64> {
        let mut per_server = vec![0u64; server_count as usize];
        for ev in &self.events {
            per_server[ev.server.as_usize()] += 1;
        }
        per_server
    }

    /// Summary statistics of the trace.
    pub fn stats(&self, server_count: u16) -> TraceStats {
        let mut pages = HashSet::new();
        for ev in &self.events {
            pages.insert(ev.page);
        }
        TraceStats {
            requests: self.events.len() as u64,
            distinct_pages: pages.len() as u64,
            requests_per_server: self.requests_per_server(server_count),
            span: self.events.last().map(|e| e.time).unwrap_or(SimTime::ZERO),
        }
    }

    /// Validates that every event references a known page and server.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownPage`] or [`TraceError::UnknownServer`]
    /// for the first out-of-range reference.
    pub fn validate(&self, page_count: usize, server_count: u16) -> Result<(), TraceError> {
        for (index, ev) in self.events.iter().enumerate() {
            if ev.page.as_usize() >= page_count {
                return Err(TraceError::UnknownPage {
                    index,
                    page_index: ev.page.index(),
                    page_count,
                });
            }
            if ev.server.index() >= server_count {
                return Err(TraceError::UnknownServer {
                    index,
                    server_index: ev.server.index(),
                    server_count,
                });
            }
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a RequestTrace {
    type Item = &'a RequestEvent;
    type IntoIter = std::slice::Iter<'a, RequestEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

impl IntoIterator for RequestTrace {
    type Item = RequestEvent;
    type IntoIter = std::vec::IntoIter<RequestEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

/// Summary statistics of a [`RequestTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: u64,
    /// Number of distinct pages referenced.
    pub distinct_pages: u64,
    /// Requests per server, indexed by [`ServerId`] index.
    pub requests_per_server: Vec<u64>,
    /// Time of the last request.
    pub span: SimTime,
}

impl TraceStats {
    /// Requests observed at one server.
    pub fn requests_at(&self, server: ServerId) -> u64 {
        self.requests_per_server[server.as_usize()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PageId, PageKind};

    fn req(t: u64, s: u16, p: u32) -> RequestEvent {
        RequestEvent::new(SimTime::from_secs(t), ServerId::new(s), PageId::new(p))
    }

    fn page(i: u32, size: u64) -> PageMeta {
        PageMeta::new(
            PageId::new(i),
            Bytes::new(size),
            SimTime::ZERO,
            PageKind::Original,
        )
    }

    #[test]
    fn sorted_accepted_unsorted_rejected() {
        assert!(RequestTrace::new(vec![req(1, 0, 0), req(2, 0, 1)]).is_ok());
        let err = RequestTrace::new(vec![req(2, 0, 0), req(1, 0, 1)]).unwrap_err();
        assert_eq!(err, TraceError::Unsorted { index: 1 });
    }

    #[test]
    fn from_unsorted_sorts() {
        let t = RequestTrace::from_unsorted(vec![req(3, 0, 0), req(1, 0, 1), req(2, 0, 2)]);
        let times: Vec<u64> = t.iter().map(|e| e.time.as_millis() / 1000).collect();
        assert_eq!(times, [1, 2, 3]);
    }

    #[test]
    fn publishing_stream_mirrors_request_trace() {
        let ev = |t: u64, p: u32| PublishEvent::new(SimTime::from_secs(t), PageId::new(p));
        let s = PublishingStream::new(vec![ev(1, 0), ev(1, 1), ev(5, 2)]).unwrap();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 3);
        let unsorted = PublishingStream::from_unsorted(vec![ev(5, 0), ev(1, 1)]);
        assert_eq!(unsorted.events()[0].page, PageId::new(1));
        assert!(PublishingStream::new(vec![ev(5, 0), ev(1, 1)]).is_err());
    }

    #[test]
    fn unique_bytes_counts_each_page_once_per_server() {
        let pages = vec![page(0, 100), page(1, 50)];
        let t = RequestTrace::new(vec![
            req(1, 0, 0),
            req(2, 0, 0), // duplicate at server 0
            req(3, 0, 1),
            req(4, 1, 1),
        ])
        .unwrap();
        let ub = t.unique_bytes_per_server(&pages, 2);
        assert_eq!(ub[0], Bytes::new(150));
        assert_eq!(ub[1], Bytes::new(50));
    }

    #[test]
    fn stats_summarize() {
        let t = RequestTrace::new(vec![req(1, 0, 0), req(2, 1, 0), req(9, 1, 1)]).unwrap();
        let st = t.stats(2);
        assert_eq!(st.requests, 3);
        assert_eq!(st.distinct_pages, 2);
        assert_eq!(st.requests_at(ServerId::new(1)), 2);
        assert_eq!(st.span, SimTime::from_secs(9));
    }

    #[test]
    fn validate_catches_out_of_range() {
        let t = RequestTrace::new(vec![req(1, 0, 5)]).unwrap();
        assert!(matches!(
            t.validate(3, 2),
            Err(TraceError::UnknownPage { page_index: 5, .. })
        ));
        let t = RequestTrace::new(vec![req(1, 9, 0)]).unwrap();
        assert!(matches!(
            t.validate(3, 2),
            Err(TraceError::UnknownServer {
                server_index: 9,
                ..
            })
        ));
        let t = RequestTrace::new(vec![req(1, 1, 2)]).unwrap();
        assert!(t.validate(3, 2).is_ok());
    }

    #[test]
    fn empty_trace_stats() {
        let t = RequestTrace::default();
        assert!(t.is_empty());
        let st = t.stats(1);
        assert_eq!(st.requests, 0);
        assert_eq!(st.span, SimTime::ZERO);
    }
}
