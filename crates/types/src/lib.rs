//! Shared vocabulary types for the `pscd` publish/subscribe content
//! distribution system.
//!
//! This crate defines the identifiers, physical quantities and trace
//! containers that every other `pscd` crate speaks:
//!
//! * [`PageId`] / [`ServerId`] — strongly typed identifiers for published
//!   pages (content objects) and proxy servers.
//! * [`SimTime`] — simulation time with millisecond resolution.
//! * [`Bytes`] — content and cache sizes.
//! * [`PageMeta`] — immutable metadata of a published page (size, publish
//!   time, lineage of modified versions).
//! * [`PublishEvent`] / [`RequestEvent`] and the sorted trace containers
//!   [`PublishingStream`] / [`RequestTrace`].
//! * [`SubscriptionTable`] — per-(page, server) subscription counts, the
//!   static matching information consumed by push-time strategies.
//!
//! # Examples
//!
//! ```
//! use pscd_types::{Bytes, PageId, ServerId, SimTime};
//!
//! let t = SimTime::from_hours(3) + SimTime::from_secs(30);
//! assert_eq!(t.hour_index(), 3);
//! let total = Bytes::new(1024) + Bytes::new(512);
//! assert_eq!(total.as_u64(), 1536);
//! let (p, s) = (PageId::new(7), ServerId::new(2));
//! assert_eq!(format!("{p}@{s}"), "page7@server2");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bytes;
mod error;
mod event;
mod id;
mod page;
mod subs;
mod time;
mod trace;

pub use bytes::Bytes;
pub use error::TraceError;
pub use event::{LiveEvent, PublishEvent, RequestEvent};
pub use id::{PageId, ServerId};
pub use page::{PageKind, PageMeta};
pub use subs::{SubscriptionTable, SubscriptionTableBuilder};
pub use time::SimTime;
pub use trace::{PublishingStream, RequestTrace, TraceStats};
