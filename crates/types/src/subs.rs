//! Static subscription information.

use serde::{Deserialize, Serialize};

use crate::{PageId, ServerId};

/// Per-(page, server) subscription counts — the static matching information
/// consumed by push-time placement strategies.
///
/// The paper (§4.3) observes that, with static subscriptions, the only
/// subscription information the strategies need is *the number of
/// subscriptions matching every page at every server* (`f_S(p)` in eq. 2,
/// `s` in eqs. 3–5). This table stores exactly that, in a compact
/// page-indexed CSR-like layout.
///
/// # Examples
///
/// ```
/// use pscd_types::{PageId, ServerId, SubscriptionTableBuilder};
/// let mut b = SubscriptionTableBuilder::new(2);
/// b.add(PageId::new(0), ServerId::new(1), 3);
/// b.add(PageId::new(0), ServerId::new(1), 2); // accumulates
/// let table = b.build();
/// assert_eq!(table.count(PageId::new(0), ServerId::new(1)), 5);
/// assert_eq!(table.count(PageId::new(1), ServerId::new(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SubscriptionTable {
    /// `rows[page] = sorted [(server, count)]` with only non-zero counts.
    rows: Vec<Vec<(ServerId, u32)>>,
}

impl SubscriptionTable {
    /// An empty table covering `page_count` pages with zero subscriptions.
    pub fn empty(page_count: usize) -> Self {
        Self {
            rows: vec![Vec::new(); page_count],
        }
    }

    /// Number of pages covered by the table.
    #[inline]
    pub fn page_count(&self) -> usize {
        self.rows.len()
    }

    /// The number of subscriptions at `server` matching `page` (0 if the
    /// page is outside the table).
    pub fn count(&self, page: PageId, server: ServerId) -> u32 {
        self.rows
            .get(page.as_usize())
            .and_then(|row| {
                row.binary_search_by_key(&server, |&(s, _)| s)
                    .ok()
                    .map(|i| row[i].1)
            })
            .unwrap_or(0)
    }

    /// The servers with at least one subscription matching `page`, with
    /// their counts, sorted by server id. Empty for pages outside the table.
    pub fn matched_servers(&self, page: PageId) -> &[(ServerId, u32)] {
        self.rows
            .get(page.as_usize())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of subscriptions matching `page` across all servers.
    pub fn total_count(&self, page: PageId) -> u64 {
        self.matched_servers(page)
            .iter()
            .map(|&(_, c)| c as u64)
            .sum()
    }

    /// Iterates over `(page, server, count)` for every non-zero entry.
    pub fn iter(&self) -> impl Iterator<Item = (PageId, ServerId, u32)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(p, row)| row.iter().map(move |&(s, c)| (PageId::new(p as u32), s, c)))
    }
}

/// Incremental builder for a [`SubscriptionTable`].
#[derive(Debug, Clone, Default)]
pub struct SubscriptionTableBuilder {
    rows: Vec<Vec<(ServerId, u32)>>,
}

impl SubscriptionTableBuilder {
    /// Creates a builder covering `page_count` pages.
    pub fn new(page_count: usize) -> Self {
        Self {
            rows: vec![Vec::new(); page_count],
        }
    }

    /// Adds `count` subscriptions at `server` matching `page`, accumulating
    /// with any previous additions. Zero counts are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the page count given to
    /// [`SubscriptionTableBuilder::new`].
    pub fn add(&mut self, page: PageId, server: ServerId, count: u32) -> &mut Self {
        if count == 0 {
            return self;
        }
        let row = &mut self.rows[page.as_usize()];
        match row.binary_search_by_key(&server, |&(s, _)| s) {
            Ok(i) => row[i].1 += count,
            Err(i) => row.insert(i, (server, count)),
        }
        self
    }

    /// Finalizes the table.
    pub fn build(self) -> SubscriptionTable {
        SubscriptionTable { rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_is_all_zero() {
        let t = SubscriptionTable::empty(3);
        assert_eq!(t.page_count(), 3);
        assert_eq!(t.count(PageId::new(0), ServerId::new(0)), 0);
        assert!(t.matched_servers(PageId::new(2)).is_empty());
        assert_eq!(t.total_count(PageId::new(1)), 0);
    }

    #[test]
    fn out_of_range_page_reads_as_zero() {
        let t = SubscriptionTable::empty(1);
        assert_eq!(t.count(PageId::new(9), ServerId::new(0)), 0);
        assert!(t.matched_servers(PageId::new(9)).is_empty());
    }

    #[test]
    fn builder_accumulates_and_sorts() {
        let mut b = SubscriptionTableBuilder::new(2);
        b.add(PageId::new(1), ServerId::new(5), 2)
            .add(PageId::new(1), ServerId::new(1), 7)
            .add(PageId::new(1), ServerId::new(5), 3)
            .add(PageId::new(1), ServerId::new(3), 0); // ignored
        let t = b.build();
        assert_eq!(
            t.matched_servers(PageId::new(1)),
            &[(ServerId::new(1), 7), (ServerId::new(5), 5)]
        );
        assert_eq!(t.total_count(PageId::new(1)), 12);
        assert_eq!(t.count(PageId::new(1), ServerId::new(3)), 0);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut b = SubscriptionTableBuilder::new(2);
        b.add(PageId::new(0), ServerId::new(0), 1);
        b.add(PageId::new(1), ServerId::new(2), 4);
        let t = b.build();
        let entries: Vec<_> = t.iter().collect();
        assert_eq!(
            entries,
            vec![
                (PageId::new(0), ServerId::new(0), 1),
                (PageId::new(1), ServerId::new(2), 4),
            ]
        );
    }

    #[test]
    #[should_panic]
    fn builder_rejects_out_of_range_page() {
        let mut b = SubscriptionTableBuilder::new(1);
        b.add(PageId::new(5), ServerId::new(0), 1);
    }
}
