//! The content-delivery engine: publisher-side pushing and proxy-side
//! request handling.

use serde::{Deserialize, Serialize};

use pscd_cache::PageRef;
use pscd_core::{Strategy, StrategyImpl};
use pscd_obs::{NullObserver, Observer, SharedObserver};
use pscd_types::{Bytes, PageId, PageMeta, ServerId};

use crate::{BrokerError, Traffic};

/// How the push-time module moves content from the publisher to a proxy
/// (paper §5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PushScheme {
    /// *Always Pushing*: a matched page is always transferred; the proxy
    /// then decides whether to store it (bandwidth is wasted when it
    /// declines).
    #[default]
    Always,
    /// *Pushing When Necessary*: the proxy first evaluates the page's
    /// meta-information and only asks for the transfer if it will store the
    /// page.
    WhenNecessary,
}

/// What happened when one matched page was offered to one proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushRecord {
    /// The proxy involved.
    pub server: ServerId,
    /// Whether the page's content crossed the network.
    pub transferred: bool,
    /// Whether the proxy stored the page.
    pub stored: bool,
}

/// What happened when one request was served at one proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// The proxy involved.
    pub server: ServerId,
    /// Whether the request hit the local cache.
    pub hit: bool,
}

/// One proxy server: a content-distribution strategy plus its network
/// distance to the publisher.
#[derive(Debug)]
struct Proxy<O: Observer> {
    strategy: StrategyImpl<O>,
    cost: f64,
    traffic: Traffic,
    hits: u64,
    requests: u64,
}

/// The publisher↔proxies delivery engine.
///
/// Owns one [`Strategy`] per proxy and routes the two event kinds through
/// them, keeping per-proxy hit and traffic counters:
///
/// * [`publish`](DeliveryEngine::publish) — a page was published and the
///   matching engine reported which proxies have matching subscriptions;
/// * [`request`](DeliveryEngine::request) — a subscriber asks its proxy
///   for a page.
///
/// # Examples
///
/// ```
/// use pscd_broker::{DeliveryEngine, PushScheme};
/// use pscd_core::StrategyKind;
/// use pscd_types::{Bytes, PageId, PageKind, PageMeta, ServerId, SimTime};
///
/// let mut engine = DeliveryEngine::new(
///     vec![StrategyKind::Sg2 { beta: 2.0 }.build(Bytes::from_kib(64))],
///     vec![1.0],
///     PushScheme::Always,
/// )?;
/// let page = PageMeta::new(PageId::new(0), Bytes::new(512), SimTime::ZERO, PageKind::Original);
/// engine.publish(&page, &[(ServerId::new(0), 4)]);
/// let rec = engine.request(ServerId::new(0), &page)?;
/// assert!(rec.hit);
/// # Ok::<(), pscd_broker::BrokerError>(())
/// ```
#[derive(Debug)]
pub struct DeliveryEngine<O: Observer = NullObserver> {
    proxies: Vec<Proxy<O>>,
    scheme: PushScheme,
    obs: SharedObserver<O>,
    /// Reused eviction scratch handed to the strategies, so the hot path
    /// performs no per-event allocation once it has grown to the high-water
    /// mark (see [`reserve_evict_scratch`](Self::reserve_evict_scratch)).
    scratch: Vec<PageId>,
    /// Global id of the first proxy this engine owns. Non-zero only for
    /// shard-local engines, which own the contiguous server range
    /// `[first, first + proxies.len())` while keeping global
    /// [`ServerId`]s in every public API.
    first: u16,
}

impl DeliveryEngine {
    /// Creates an engine from per-proxy strategies and fetch costs.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::MismatchedCosts`] if `strategies` and `costs`
    /// differ in length.
    pub fn new(
        strategies: Vec<Box<dyn Strategy>>,
        costs: Vec<f64>,
        scheme: PushScheme,
    ) -> Result<Self, BrokerError> {
        DeliveryEngine::with_observer(strategies, costs, scheme, SharedObserver::disabled())
    }
}

impl<O: Observer> DeliveryEngine<O> {
    /// [`new`](DeliveryEngine::new), additionally reporting push outcomes
    /// to `obs`. Cache-level decisions (admissions, evictions) are reported
    /// by the strategies themselves when they are built with
    /// [`StrategyKind::build_observed`](pscd_core::StrategyKind::build_observed).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::MismatchedCosts`] if `strategies` and `costs`
    /// differ in length.
    pub fn with_observer(
        strategies: Vec<Box<dyn Strategy>>,
        costs: Vec<f64>,
        scheme: PushScheme,
        obs: SharedObserver<O>,
    ) -> Result<Self, BrokerError> {
        DeliveryEngine::with_observer_offset(strategies, costs, scheme, obs, ServerId::new(0))
    }

    /// [`with_observer`](DeliveryEngine::with_observer) for an engine that
    /// owns only the contiguous server range starting at `first`: proxy
    /// `i` of `strategies` serves global server `first + i`. All public
    /// APIs keep speaking global [`ServerId`]s, so a shard-local engine is
    /// a drop-in replacement for a full one over its range.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::MismatchedCosts`] if `strategies` and `costs`
    /// differ in length.
    pub fn with_observer_offset(
        strategies: Vec<Box<dyn Strategy>>,
        costs: Vec<f64>,
        scheme: PushScheme,
        obs: SharedObserver<O>,
        first: ServerId,
    ) -> Result<Self, BrokerError> {
        Self::from_impls(
            strategies.into_iter().map(StrategyImpl::from).collect(),
            costs,
            scheme,
            obs,
            first,
        )
    }

    /// [`with_observer_offset`](DeliveryEngine::with_observer_offset) over
    /// concrete enum-dispatched strategies — the allocation-free form used
    /// by the replay hot loop (built via
    /// [`StrategyKind::build_impl_observed`](pscd_core::StrategyKind::build_impl_observed)).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::MismatchedCosts`] if `strategies` and `costs`
    /// differ in length.
    pub fn from_impls(
        strategies: Vec<StrategyImpl<O>>,
        costs: Vec<f64>,
        scheme: PushScheme,
        obs: SharedObserver<O>,
        first: ServerId,
    ) -> Result<Self, BrokerError> {
        if strategies.len() != costs.len() {
            return Err(BrokerError::MismatchedCosts {
                strategies: strategies.len(),
                costs: costs.len(),
            });
        }
        Ok(Self {
            proxies: strategies
                .into_iter()
                .zip(costs)
                .map(|(strategy, cost)| Proxy {
                    strategy,
                    cost,
                    traffic: Traffic::ZERO,
                    hits: 0,
                    requests: 0,
                })
                .collect(),
            scheme,
            obs,
            first: first.index(),
            scratch: Vec::new(),
        })
    }

    /// Grows the internal eviction scratch to at least `capacity` entries.
    /// Call once before entering an allocation-free replay loop: a single
    /// event can evict at most the resident page count, so the page
    /// universe size is always a safe bound.
    pub fn reserve_evict_scratch(&mut self, capacity: usize) {
        if self.scratch.capacity() < capacity {
            self.scratch.reserve(capacity - self.scratch.capacity());
        }
    }

    /// Translates a global server id into this engine's proxy slot, or
    /// `None` if the server lies outside the owned range.
    #[inline]
    fn slot(&self, server: ServerId) -> Option<usize> {
        server
            .as_usize()
            .checked_sub(self.first as usize)
            .filter(|&i| i < self.proxies.len())
    }

    /// Global id of the first proxy this engine owns (0 for a full-range
    /// engine).
    pub fn first_server(&self) -> ServerId {
        ServerId::new(self.first)
    }

    /// Number of proxies.
    pub fn server_count(&self) -> u16 {
        self.proxies.len() as u16
    }

    /// The configured pushing scheme.
    pub fn scheme(&self) -> PushScheme {
        self.scheme
    }

    /// Delivers a freshly published page to every matched proxy according
    /// to the pushing scheme. `matched` lists `(server, subscription
    /// count)` pairs from the matching engine; proxies without a push-time
    /// module are skipped entirely (no traffic, no placement).
    ///
    /// # Panics
    ///
    /// Panics if a matched server is out of range.
    pub fn publish(&mut self, page: &PageMeta, matched: &[(ServerId, u32)]) -> Vec<PushRecord> {
        let mut records = Vec::with_capacity(matched.len());
        self.publish_into(page, matched, &mut records);
        records
    }

    /// [`publish`](DeliveryEngine::publish) writing its records into a
    /// caller-provided buffer (cleared on entry) instead of allocating a
    /// fresh `Vec` — the form the replay hot loop uses to stay
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if a matched server is out of range.
    pub fn publish_into(
        &mut self,
        page: &PageMeta,
        matched: &[(ServerId, u32)],
        out: &mut Vec<PushRecord>,
    ) {
        out.clear();
        let first = self.first as usize;
        let scheme = self.scheme;
        let Self {
            proxies,
            obs,
            scratch,
            ..
        } = self;
        for &(server, subs) in matched {
            let slot = server
                .as_usize()
                .checked_sub(first)
                .filter(|&i| i < proxies.len())
                .expect("matched server out of range");
            let proxy = &mut proxies[slot];
            if !proxy.strategy.uses_push() {
                continue;
            }
            let page_ref = PageRef::new(page.id(), page.size(), proxy.cost);
            let (transferred, stored) = match scheme {
                PushScheme::Always => {
                    let stored = proxy.strategy.on_push(&page_ref, subs, scratch).is_stored();
                    (true, stored)
                }
                PushScheme::WhenNecessary => {
                    if proxy.strategy.would_store(&page_ref, subs) {
                        let stored = proxy.strategy.on_push(&page_ref, subs, scratch).is_stored();
                        (stored, stored)
                    } else {
                        (false, false)
                    }
                }
            };
            if transferred {
                proxy.traffic.record_push(page.size());
            }
            if O::ENABLED {
                obs.push(server, page.id(), page.size(), transferred, stored);
            }
            out.push(PushRecord {
                server,
                transferred,
                stored,
            });
        }
    }

    /// Serves a subscriber request for `page` at `server`. A miss fetches
    /// the page from the publisher (counted in the proxy's traffic)
    /// whether or not the strategy then caches it.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownServer`] if `server` is out of range.
    pub fn request(
        &mut self,
        server: ServerId,
        page: &PageMeta,
    ) -> Result<RequestRecord, BrokerError> {
        self.request_with_subs(server, page, 0)
    }

    /// Like [`request`](DeliveryEngine::request), additionally passing the
    /// page's subscription count at this proxy (needed by the combined
    /// strategies' value functions).
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownServer`] if `server` is out of range.
    pub fn request_with_subs(
        &mut self,
        server: ServerId,
        page: &PageMeta,
        subs: u32,
    ) -> Result<RequestRecord, BrokerError> {
        let count = self.proxies.len() as u16;
        let slot = self.slot(server).ok_or(BrokerError::UnknownServer {
            server,
            server_count: count,
        })?;
        let Self {
            proxies, scratch, ..
        } = self;
        let proxy = &mut proxies[slot];
        let page_ref = PageRef::new(page.id(), page.size(), proxy.cost);
        let outcome = proxy.strategy.on_access(&page_ref, subs, scratch);
        proxy.requests += 1;
        let hit = outcome.is_hit();
        if hit {
            proxy.hits += 1;
        } else {
            proxy.traffic.record_fetch(page.size());
        }
        Ok(RequestRecord { server, hit })
    }

    /// Per-proxy traffic counters.
    pub fn traffic(&self, server: ServerId) -> Traffic {
        self.proxies[self.slot(server).expect("server out of range")].traffic
    }

    /// Aggregate traffic across all proxies.
    pub fn total_traffic(&self) -> Traffic {
        self.proxies
            .iter()
            .fold(Traffic::ZERO, |acc, p| acc.merged(p.traffic))
    }

    /// Hits and requests at one proxy.
    pub fn hit_stats(&self, server: ServerId) -> (u64, u64) {
        let p = &self.proxies[self.slot(server).expect("server out of range")];
        (p.hits, p.requests)
    }

    /// Global hit ratio `H` over all proxies (eq. 8). Zero when no
    /// requests have been served.
    pub fn global_hit_ratio(&self) -> f64 {
        let (hits, requests) = self
            .proxies
            .iter()
            .fold((0u64, 0u64), |(h, r), p| (h + p.hits, r + p.requests));
        if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        }
    }

    /// Bytes currently cached at one proxy.
    pub fn cache_used(&self, server: ServerId) -> Bytes {
        self.proxies[self.slot(server).expect("server out of range")]
            .strategy
            .used()
    }

    /// Read access to a proxy's strategy.
    pub fn strategy(&self, server: ServerId) -> &dyn Strategy {
        &self.proxies[self.slot(server).expect("server out of range")].strategy
    }

    /// Read access to a proxy's concrete strategy — the enum-dispatch form,
    /// giving snapshot code access to
    /// [`StrategyImpl::encode_snapshot`](pscd_core::StrategyImpl).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn strategy_impl(&self, server: ServerId) -> &StrategyImpl<O> {
        &self.proxies[self.slot(server).expect("server out of range")].strategy
    }

    /// Mutable access to a proxy's concrete strategy, for restoring a
    /// snapshot in place.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn strategy_impl_mut(&mut self, server: ServerId) -> &mut StrategyImpl<O> {
        let slot = self.slot(server).expect("server out of range");
        &mut self.proxies[slot].strategy
    }

    /// Overwrites a proxy's accounting counters (hits, requests, traffic)
    /// with values restored from a snapshot. The strategy state itself is
    /// restored separately via
    /// [`strategy_impl_mut`](Self::strategy_impl_mut).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn restore_accounting(
        &mut self,
        server: ServerId,
        hits: u64,
        requests: u64,
        traffic: Traffic,
    ) {
        let slot = self.slot(server).expect("server out of range");
        let proxy = &mut self.proxies[slot];
        proxy.hits = hits;
        proxy.requests = requests;
        proxy.traffic = traffic;
    }

    /// Drops a stale page from every proxy cache (e.g. a newer version of
    /// the same article was just published). Returns the number of proxies
    /// that actually held it.
    pub fn invalidate_everywhere(&mut self, page: pscd_types::PageId) -> usize {
        let mut dropped = 0;
        for proxy in &mut self.proxies {
            if proxy.strategy.invalidate(page) {
                dropped += 1;
            }
        }
        dropped
    }

    /// Replaces a proxy's strategy with a fresh instance, modeling a
    /// proxy crash/restart: all cached content and algorithm state is
    /// lost, while the hit/traffic counters (which describe the past)
    /// are kept.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownServer`] if `server` is out of range.
    pub fn replace_strategy(
        &mut self,
        server: ServerId,
        strategy: impl Into<StrategyImpl<O>>,
    ) -> Result<(), BrokerError> {
        let count = self.proxies.len() as u16;
        let slot = self.slot(server).ok_or(BrokerError::UnknownServer {
            server,
            server_count: count,
        })?;
        self.proxies[slot].strategy = strategy.into();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;
    use pscd_types::{PageId, PageKind, SimTime};

    fn page(i: u32, size: u64) -> PageMeta {
        PageMeta::new(
            PageId::new(i),
            Bytes::new(size),
            SimTime::ZERO,
            PageKind::Original,
        )
    }

    fn engine(kind: StrategyKind, scheme: PushScheme) -> DeliveryEngine {
        DeliveryEngine::new(
            vec![kind.build(Bytes::new(1_000)), kind.build(Bytes::new(1_000))],
            vec![1.0, 2.0],
            scheme,
        )
        .unwrap()
    }

    #[test]
    fn mismatched_costs_rejected() {
        let err = DeliveryEngine::new(
            vec![StrategyKind::Sub.build(Bytes::new(10))],
            vec![1.0, 2.0],
            PushScheme::Always,
        )
        .unwrap_err();
        assert!(matches!(err, BrokerError::MismatchedCosts { .. }));
    }

    #[test]
    fn always_pushing_counts_transfer_even_when_declined() {
        let mut e = engine(StrategyKind::Sub, PushScheme::Always);
        // Fill proxy 0 with a high-value page, then push a worthless one.
        e.publish(&page(1, 1_000), &[(ServerId::new(0), 100)]);
        let recs = e.publish(&page(2, 1_000), &[(ServerId::new(0), 1)]);
        assert_eq!(recs.len(), 1);
        assert!(recs[0].transferred);
        assert!(!recs[0].stored);
        assert_eq!(e.traffic(ServerId::new(0)).pushed_pages, 2);
    }

    #[test]
    fn when_necessary_skips_declined_transfers() {
        let mut e = engine(StrategyKind::Sub, PushScheme::WhenNecessary);
        e.publish(&page(1, 1_000), &[(ServerId::new(0), 100)]);
        let recs = e.publish(&page(2, 1_000), &[(ServerId::new(0), 1)]);
        assert!(!recs[0].transferred);
        assert!(!recs[0].stored);
        assert_eq!(e.traffic(ServerId::new(0)).pushed_pages, 1);
        assert_eq!(e.scheme(), PushScheme::WhenNecessary);
    }

    #[test]
    fn access_only_strategies_receive_no_pushes() {
        let mut e = engine(StrategyKind::GdStar { beta: 2.0 }, PushScheme::Always);
        let recs = e.publish(&page(1, 100), &[(ServerId::new(0), 50)]);
        assert!(recs.is_empty());
        assert_eq!(e.total_traffic().pushed_pages, 0);
    }

    #[test]
    fn hits_and_misses_tracked_per_proxy() {
        let mut e = engine(StrategyKind::GdStar { beta: 2.0 }, PushScheme::Always);
        let p = page(1, 100);
        let r = e.request(ServerId::new(0), &p).unwrap();
        assert!(!r.hit);
        let r = e.request(ServerId::new(0), &p).unwrap();
        assert!(r.hit);
        assert_eq!(e.hit_stats(ServerId::new(0)), (1, 2));
        assert_eq!(e.hit_stats(ServerId::new(1)), (0, 0));
        assert_eq!(e.traffic(ServerId::new(0)).fetched_pages, 1);
        assert!((e.global_hit_ratio() - 0.5).abs() < 1e-12);
        assert!(e.cache_used(ServerId::new(0)) >= Bytes::new(100));
        assert_eq!(e.strategy(ServerId::new(0)).name(), "GD*");
    }

    #[test]
    fn unknown_server_errors() {
        let mut e = engine(StrategyKind::Sub, PushScheme::Always);
        assert!(matches!(
            e.request(ServerId::new(9), &page(1, 10)),
            Err(BrokerError::UnknownServer { .. })
        ));
    }

    #[test]
    fn push_then_request_hits_without_fetch() {
        let mut e = engine(StrategyKind::Sg2 { beta: 2.0 }, PushScheme::Always);
        let p = page(1, 100);
        e.publish(&p, &[(ServerId::new(0), 5), (ServerId::new(1), 2)]);
        let r = e.request_with_subs(ServerId::new(0), &p, 5).unwrap();
        assert!(r.hit);
        assert_eq!(e.traffic(ServerId::new(0)).fetched_pages, 0);
        assert_eq!(e.total_traffic().pushed_pages, 2);
        assert_eq!(e.server_count(), 2);
        assert_eq!(e.global_hit_ratio(), 1.0);
    }

    #[test]
    fn invalidate_everywhere_drops_stale_copies() {
        let mut e = engine(StrategyKind::Sg2 { beta: 2.0 }, PushScheme::Always);
        let p = page(1, 100);
        e.publish(&p, &[(ServerId::new(0), 3), (ServerId::new(1), 2)]);
        assert_eq!(e.invalidate_everywhere(p.id()), 2);
        assert_eq!(e.invalidate_everywhere(p.id()), 0);
        // The stale page now misses.
        assert!(!e.request_with_subs(ServerId::new(0), &p, 3).unwrap().hit);
    }

    #[test]
    fn replace_strategy_models_a_crash() {
        let mut e = engine(StrategyKind::GdStar { beta: 2.0 }, PushScheme::Always);
        let p = page(1, 100);
        e.request(ServerId::new(0), &p).unwrap(); // miss, cached
        assert!(e.request(ServerId::new(0), &p).unwrap().hit);
        // Crash: fresh strategy, empty cache; counters survive.
        e.replace_strategy(
            ServerId::new(0),
            StrategyKind::GdStar { beta: 2.0 }.build(Bytes::new(1_000)),
        )
        .unwrap();
        assert_eq!(e.cache_used(ServerId::new(0)), Bytes::ZERO);
        assert_eq!(e.hit_stats(ServerId::new(0)), (1, 2));
        assert!(!e.request(ServerId::new(0), &p).unwrap().hit);
        assert!(e
            .replace_strategy(ServerId::new(9), StrategyKind::Sub.build(Bytes::new(1)))
            .is_err());
    }

    #[test]
    fn offset_engine_speaks_global_server_ids() {
        let kind = StrategyKind::Sg2 { beta: 2.0 };
        // A shard-local engine owning global servers 3 and 4.
        let mut e = DeliveryEngine::with_observer_offset(
            vec![kind.build(Bytes::new(1_000)), kind.build(Bytes::new(1_000))],
            vec![1.0, 2.0],
            PushScheme::Always,
            SharedObserver::disabled(),
            ServerId::new(3),
        )
        .unwrap();
        assert_eq!(e.first_server(), ServerId::new(3));
        let p = page(1, 100);
        let recs = e.publish(&p, &[(ServerId::new(3), 5), (ServerId::new(4), 2)]);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].server, ServerId::new(3));
        let r = e.request_with_subs(ServerId::new(4), &p, 2).unwrap();
        assert!(r.hit);
        assert_eq!(e.hit_stats(ServerId::new(4)), (1, 1));
        assert_eq!(e.traffic(ServerId::new(3)).pushed_pages, 1);
        assert!(e.cache_used(ServerId::new(3)) >= Bytes::new(100));
        assert_eq!(e.strategy(ServerId::new(4)).name(), "SG2");
        // Servers below or above the owned range are unknown.
        assert!(matches!(
            e.request(ServerId::new(2), &p),
            Err(BrokerError::UnknownServer { .. })
        ));
        assert!(matches!(
            e.request(ServerId::new(5), &p),
            Err(BrokerError::UnknownServer { .. })
        ));
        e.replace_strategy(ServerId::new(4), kind.build(Bytes::new(1_000)))
            .unwrap();
        assert_eq!(e.cache_used(ServerId::new(4)), Bytes::ZERO);
        assert!(e
            .replace_strategy(ServerId::new(0), kind.build(Bytes::new(1)))
            .is_err());
    }

    #[test]
    fn empty_engine_hit_ratio_is_zero() {
        let e = engine(StrategyKind::Sub, PushScheme::Always);
        assert_eq!(e.global_hit_ratio(), 0.0);
    }

    #[test]
    fn observed_engine_reports_push_outcomes() {
        use pscd_obs::{StatsObserver, K_PUSH_TRANSFERS};

        let shared = SharedObserver::new(StatsObserver::new());
        let kind = StrategyKind::Sub;
        let mut e = DeliveryEngine::with_observer(
            vec![
                kind.build_observed(Bytes::new(1_000), shared.handle(ServerId::new(0))),
                kind.build_observed(Bytes::new(1_000), shared.handle(ServerId::new(1))),
            ],
            vec![1.0, 2.0],
            PushScheme::Always,
            shared.clone(),
        )
        .unwrap();
        e.publish(&page(1, 1_000), &[(ServerId::new(0), 100)]);
        // Full proxy 0 declines this one; proxy 1 stores it.
        e.publish(
            &page(2, 1_000),
            &[(ServerId::new(0), 1), (ServerId::new(1), 1)],
        );
        drop(e);
        let stats = shared.try_unwrap().unwrap();
        let reg = stats.registry();
        assert_eq!(reg.counter("push.offers"), 3);
        assert_eq!(reg.counter(K_PUSH_TRANSFERS), 3); // Always-Pushing transfers all
        assert_eq!(reg.counter("push.stored"), 2);
        assert_eq!(reg.counter("admit.push"), 2);
        assert_eq!(reg.bytes("bytes.pushed"), 3_000);
    }
}
