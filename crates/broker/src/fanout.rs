//! Precomputed publish/notify fan-out: the push schedule of a whole run,
//! resolved once up front.
//!
//! The matching information is static (paper §4.3), so the set of proxies
//! a publish event fans out to is a pure function of the publishing
//! stream and the subscription table. Resolving it once into a flat
//! CSR-style table gives every consumer — the sequential runner, each
//! shard of a sharded run — literally the same push schedule, which is
//! one of the two pillars of the sharded runner's bit-identical merge
//! (the other is that [`CrashPlan`](https://docs.rs/pscd-sim) victims are
//! a pure function of the seed).

use pscd_types::{PublishEvent, ServerId, SubscriptionTable};

/// The resolved fan-out of every publish event in a stream: for event
/// `i`, [`matched`](Fanout::matched)`(i)` is the `(server, subscription
/// count)` list the matching engine would report, sorted by server id.
///
/// Stored flat (offsets + pairs) so iterating a run's whole push schedule
/// is one linear scan, and so contiguous server ranges — the shard
/// boundaries of a sharded run — can be sliced out of each list by
/// binary search without copying.
///
/// # Examples
///
/// ```
/// use pscd_broker::Fanout;
/// use pscd_types::{PageId, PublishEvent, ServerId, SimTime, SubscriptionTableBuilder};
///
/// let mut b = SubscriptionTableBuilder::new(2);
/// b.add(PageId::new(0), ServerId::new(3), 2);
/// b.add(PageId::new(1), ServerId::new(0), 1);
/// b.add(PageId::new(1), ServerId::new(4), 5);
/// let subs = b.build();
/// let publishes = [
///     PublishEvent::new(SimTime::ZERO, PageId::new(1)),
///     PublishEvent::new(SimTime::from_secs(5), PageId::new(0)),
/// ];
/// let fanout = Fanout::precompute(&publishes, &subs);
/// assert_eq!(fanout.matched(0), &[(ServerId::new(0), 1), (ServerId::new(4), 5)]);
/// assert_eq!(fanout.matched(1), &[(ServerId::new(3), 2)]);
/// assert_eq!(fanout.total_matched_pairs(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fanout {
    /// `offsets[i]..offsets[i + 1]` indexes `pairs` for publish event `i`.
    offsets: Vec<u32>,
    /// Matched `(server, count)` pairs, concatenated in event order; each
    /// event's sublist is sorted by server id.
    pairs: Vec<(ServerId, u32)>,
}

impl Fanout {
    /// Resolves the fan-out of every event in `publishes` against the
    /// static subscription table.
    pub fn precompute(publishes: &[PublishEvent], subscriptions: &SubscriptionTable) -> Self {
        let mut offsets = Vec::with_capacity(publishes.len() + 1);
        let mut pairs = Vec::new();
        offsets.push(0);
        for ev in publishes {
            pairs.extend_from_slice(subscriptions.matched_servers(ev.page));
            offsets.push(pairs.len() as u32);
        }
        Self { offsets, pairs }
    }

    /// Number of publish events covered.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` if no publish events are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The matched `(server, subscription count)` list of publish event
    /// `index`, sorted by server id.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn matched(&self, index: usize) -> &[(ServerId, u32)] {
        let lo = self.offsets[index] as usize;
        let hi = self.offsets[index + 1] as usize;
        &self.pairs[lo..hi]
    }

    /// The part of event `index`'s matched list that falls inside the
    /// half-open server range `[start, end)` — a subslice, found by
    /// binary search, because each list is sorted by server id. This is
    /// how a shard owning a contiguous server range reads its share of
    /// the push schedule without copying or filtering.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn matched_in(&self, index: usize, start: u16, end: u16) -> &[(ServerId, u32)] {
        let matched = self.matched(index);
        let lo = matched.partition_point(|&(s, _)| s.index() < start);
        let hi = matched.partition_point(|&(s, _)| s.index() < end);
        &matched[lo..hi]
    }

    /// Total matched `(event, server)` pairs across the whole schedule —
    /// an upper bound on the pages any pushing scheme can transfer.
    pub fn total_matched_pairs(&self) -> u64 {
        self.pairs.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{PageId, SimTime, SubscriptionTableBuilder};

    fn fixture() -> (Vec<PublishEvent>, SubscriptionTable) {
        let mut b = SubscriptionTableBuilder::new(3);
        b.add(PageId::new(0), ServerId::new(1), 4);
        b.add(PageId::new(0), ServerId::new(5), 1);
        b.add(PageId::new(0), ServerId::new(9), 2);
        b.add(PageId::new(2), ServerId::new(0), 7);
        let publishes = vec![
            PublishEvent::new(SimTime::ZERO, PageId::new(0)),
            PublishEvent::new(SimTime::from_secs(1), PageId::new(1)),
            PublishEvent::new(SimTime::from_secs(2), PageId::new(2)),
            PublishEvent::new(SimTime::from_secs(3), PageId::new(0)),
        ];
        (publishes, b.build())
    }

    #[test]
    fn precompute_matches_table_lookups() {
        let (publishes, subs) = fixture();
        let fanout = Fanout::precompute(&publishes, &subs);
        assert_eq!(fanout.len(), 4);
        assert!(!fanout.is_empty());
        for (i, ev) in publishes.iter().enumerate() {
            assert_eq!(fanout.matched(i), subs.matched_servers(ev.page));
        }
        assert_eq!(fanout.matched(1), &[]);
        assert_eq!(fanout.total_matched_pairs(), 7);
    }

    #[test]
    fn range_slices_are_exact_partitions() {
        let (publishes, subs) = fixture();
        let fanout = Fanout::precompute(&publishes, &subs);
        // Splitting [0, 10) at any boundary partitions each list.
        for split in 0..=10u16 {
            for i in 0..fanout.len() {
                let left = fanout.matched_in(i, 0, split);
                let right = fanout.matched_in(i, split, 10);
                let whole: Vec<_> = left.iter().chain(right).copied().collect();
                assert_eq!(whole.as_slice(), fanout.matched(i));
            }
        }
        // A range covering a single matched server picks exactly it.
        assert_eq!(fanout.matched_in(0, 5, 6), &[(ServerId::new(5), 1)]);
        assert_eq!(fanout.matched_in(0, 6, 9), &[]);
    }

    #[test]
    fn empty_schedule() {
        let fanout = Fanout::precompute(&[], &SubscriptionTable::empty(0));
        assert!(fanout.is_empty());
        assert_eq!(fanout.len(), 0);
        assert_eq!(fanout.total_matched_pairs(), 0);
    }
}
