//! Traffic accounting between the publisher and the proxies.

use serde::{Deserialize, Serialize};

use pscd_types::Bytes;

/// Publisher→proxy traffic counters, split by cause (paper §5.6: pushing
/// traffic vs fetch-on-miss traffic), in both pages and bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Traffic {
    /// Pages transferred by the push-time module.
    pub pushed_pages: u64,
    /// Bytes transferred by the push-time module.
    pub pushed_bytes: Bytes,
    /// Pages fetched from the publisher on cache misses.
    pub fetched_pages: u64,
    /// Bytes fetched from the publisher on cache misses.
    pub fetched_bytes: Bytes,
}

impl Traffic {
    /// No traffic.
    pub const ZERO: Traffic = Traffic {
        pushed_pages: 0,
        pushed_bytes: Bytes::ZERO,
        fetched_pages: 0,
        fetched_bytes: Bytes::ZERO,
    };

    /// Records one pushed page.
    pub fn record_push(&mut self, size: Bytes) {
        self.pushed_pages += 1;
        self.pushed_bytes += size;
    }

    /// Records one fetch-on-miss.
    pub fn record_fetch(&mut self, size: Bytes) {
        self.fetched_pages += 1;
        self.fetched_bytes += size;
    }

    /// Total pages transferred from the publisher.
    pub fn total_pages(&self) -> u64 {
        self.pushed_pages + self.fetched_pages
    }

    /// Total bytes transferred from the publisher.
    pub fn total_bytes(&self) -> Bytes {
        self.pushed_bytes + self.fetched_bytes
    }

    /// Component-wise sum.
    pub fn merged(self, other: Traffic) -> Traffic {
        Traffic {
            pushed_pages: self.pushed_pages + other.pushed_pages,
            pushed_bytes: self.pushed_bytes + other.pushed_bytes,
            fetched_pages: self.fetched_pages + other.fetched_pages,
            fetched_bytes: self.fetched_bytes + other.fetched_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut t = Traffic::ZERO;
        t.record_push(Bytes::new(100));
        t.record_push(Bytes::new(50));
        t.record_fetch(Bytes::new(25));
        assert_eq!(t.pushed_pages, 2);
        assert_eq!(t.pushed_bytes, Bytes::new(150));
        assert_eq!(t.fetched_pages, 1);
        assert_eq!(t.fetched_bytes, Bytes::new(25));
        assert_eq!(t.total_pages(), 3);
        assert_eq!(t.total_bytes(), Bytes::new(175));
    }

    #[test]
    fn merge_is_componentwise() {
        let mut a = Traffic::ZERO;
        a.record_push(Bytes::new(10));
        let mut b = Traffic::ZERO;
        b.record_fetch(Bytes::new(20));
        let m = a.merged(b);
        assert_eq!(m.pushed_pages, 1);
        assert_eq!(m.fetched_pages, 1);
        assert_eq!(m.total_bytes(), Bytes::new(30));
    }
}
