//! Publisher↔proxy content-delivery engine for `pscd`.
//!
//! Sits between the matching engine and the per-proxy
//! [`Strategy`](pscd_core::Strategy) instances (paper §2, figure 2): when
//! a page is published, [`DeliveryEngine::publish`] routes it to every
//! matched proxy under one of the two pushing schemes of §5.6
//! ([`PushScheme::Always`] / [`PushScheme::WhenNecessary`]); when a
//! subscriber requests a page, [`DeliveryEngine::request`] serves it from
//! the local cache or fetches from the publisher. Per-proxy [`Traffic`]
//! and hit counters feed the paper's two metrics (hit ratio H and traffic
//! overhead).
//!
//! # Examples
//!
//! ```
//! use pscd_broker::{DeliveryEngine, PushScheme};
//! use pscd_core::StrategyKind;
//! use pscd_types::{Bytes, PageId, PageKind, PageMeta, ServerId, SimTime};
//!
//! let mut engine = DeliveryEngine::new(
//!     vec![StrategyKind::Sub.build(Bytes::from_kib(16))],
//!     vec![1.5],
//!     PushScheme::WhenNecessary,
//! )?;
//! let page = PageMeta::new(PageId::new(0), Bytes::new(2_048), SimTime::ZERO, PageKind::Original);
//! let records = engine.publish(&page, &[(ServerId::new(0), 7)]);
//! assert!(records[0].stored);
//! # Ok::<(), pscd_broker::BrokerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod delivery;
mod error;
mod traffic;

pub use delivery::{DeliveryEngine, PushRecord, PushScheme, RequestRecord};
pub use error::BrokerError;
pub use traffic::Traffic;
