//! Broker errors.

use std::error::Error;
use std::fmt;

use pscd_types::ServerId;

/// Error produced by the delivery engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BrokerError {
    /// The strategy and cost vectors differ in length.
    MismatchedCosts {
        /// Number of strategies supplied.
        strategies: usize,
        /// Number of costs supplied.
        costs: usize,
    },
    /// A server id was outside the proxy population.
    UnknownServer {
        /// The rejected server.
        server: ServerId,
        /// Number of configured servers.
        server_count: u16,
    },
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::MismatchedCosts { strategies, costs } => {
                write!(f, "got {strategies} strategies but {costs} fetch costs")
            }
            BrokerError::UnknownServer {
                server,
                server_count,
            } => write!(
                f,
                "{server} out of range: only {server_count} proxies configured"
            ),
        }
    }
}

impl Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BrokerError::MismatchedCosts {
            strategies: 2,
            costs: 3,
        };
        assert!(e.to_string().contains("2 strategies"));
        let e = BrokerError::UnknownServer {
            server: ServerId::new(7),
            server_count: 4,
        };
        assert!(e.to_string().contains("server7"));
    }
}
