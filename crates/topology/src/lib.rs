//! BRITE-like random network topologies and fetch-cost derivation.
//!
//! The paper uses the BRITE topology generator to build "a random graph of
//! proxy servers and the publisher" and measures the **cost to fetch a page**
//! `c(p)` as the network distance from a proxy to the origin publisher
//! (following Cao & Irani's cost-aware caching). BRITE is an external
//! C++/Java tool, so this crate re-implements its two flat router-level
//! models from scratch:
//!
//! * [`GraphModel::Waxman`] — nodes placed uniformly on a plane; the
//!   probability of an edge decays exponentially with Euclidean distance
//!   (Waxman 1988, BRITE's default).
//! * [`GraphModel::BarabasiAlbert`] — incremental growth with preferential
//!   attachment (BRITE's BA model).
//!
//! Generated graphs are post-processed to be connected (components are
//! stitched through their closest node pairs, as BRITE does), and
//! [`Graph::shortest_paths`] runs Dijkstra over Euclidean edge weights.
//! [`FetchCosts`] then maps a topology to the per-proxy cost vector the
//! cache value functions consume.
//!
//! # Examples
//!
//! ```
//! use pscd_topology::{FetchCosts, GraphModel, TopologyBuilder};
//!
//! // 1 publisher + 100 proxies on a Waxman graph, deterministic seed.
//! let topo = TopologyBuilder::new(101)
//!     .model(GraphModel::waxman())
//!     .seed(7)
//!     .build()?;
//! let costs = FetchCosts::from_topology(&topo, 0)?; // node 0 = publisher
//! assert_eq!(costs.server_count(), 100);
//! assert!(costs.iter().all(|c| c >= 1.0));
//! # Ok::<(), pscd_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod error;
mod generate;
mod graph;
mod point;

pub use cost::FetchCosts;
pub use error::TopologyError;
pub use generate::{GraphModel, TopologyBuilder};
pub use graph::{Edge, Graph};
pub use point::Point;
