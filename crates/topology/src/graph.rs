//! Undirected weighted graph with Dijkstra shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::{Point, TopologyError};

/// An undirected edge with a positive weight (Euclidean length).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Edge weight (network distance).
    pub weight: f64,
}

/// An undirected weighted graph of network nodes placed on a plane.
///
/// Node 0 is conventionally the publisher; the remaining nodes are proxy
/// servers, but the graph itself is agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Graph {
    positions: Vec<Point>,
    /// adjacency[v] = [(neighbor, weight)]
    adjacency: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `positions.len()` nodes and no edges.
    pub fn new(positions: Vec<Point>) -> Self {
        let n = positions.len();
        Self {
            positions,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn position(&self, node: usize) -> Point {
        self.positions[node]
    }

    /// Neighbors of `node` with edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[(usize, f64)] {
        &self.adjacency[node]
    }

    /// `true` if an edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency
            .get(a)
            .is_some_and(|adj| adj.iter().any(|&(n, _)| n == b))
    }

    /// Adds the undirected edge `{a, b}` weighted by the Euclidean distance
    /// between the endpoints. Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.has_edge(a, b) {
            return;
        }
        let w = self.positions[a]
            .distance(self.positions[b])
            .max(f64::MIN_POSITIVE);
        self.adjacency[a].push((b, w));
        self.adjacency[b].push((a, w));
        self.edge_count += 1;
    }

    /// All edges, each reported once with `a < b`.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (a, adj) in self.adjacency.iter().enumerate() {
            for &(b, weight) in adj {
                if a < b {
                    out.push(Edge { a, b, weight });
                }
            }
        }
        out
    }

    /// Single-source shortest path distances from `source` (Dijkstra).
    /// Unreachable nodes get `f64::INFINITY`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if `source` is out of range.
    pub fn shortest_paths(&self, source: usize) -> Result<Vec<f64>, TopologyError> {
        let n = self.node_count();
        if source >= n {
            return Err(TopologyError::NodeOutOfRange {
                node: source,
                nodes: n,
            });
        }
        let mut dist = vec![f64::INFINITY; n];
        dist[source] = 0.0;
        let mut heap = BinaryHeap::new();
        heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        while let Some(HeapEntry { dist: d, node }) = heap.pop() {
            if d > dist[node] {
                continue;
            }
            for &(next, w) in &self.adjacency[node] {
                let nd = d + w;
                if nd < dist[next] {
                    dist[next] = nd;
                    heap.push(HeapEntry {
                        dist: nd,
                        node: next,
                    });
                }
            }
        }
        Ok(dist)
    }

    /// Connected components as lists of node indices (each sorted).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &(next, _) in &self.adjacency[v] {
                    if !seen[next] {
                        seen[next] = true;
                        stack.push(next);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.node_count() <= 1 || self.components().len() == 1
    }
}

/// Min-heap entry: `BinaryHeap` is a max-heap, so ordering is reversed.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for min-heap behavior; ties broken by node id
        // to keep the order total (distances are finite, never NaN).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        // 0-(1)-1
        // |      |
        // 3-(1)-2   with unit edges around, diagonal absent
        let mut g = Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g
    }

    #[test]
    fn add_edge_dedups_and_ignores_self_loops() {
        let mut g = square();
        assert_eq!(g.edge_count(), 4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn shortest_paths_on_square() {
        let g = square();
        let d = g.shortest_paths(0).unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[2], 2.0); // around the square, diagonal missing
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = Graph::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        let d = g.shortest_paths(0).unwrap();
        assert!(d[1].is_infinite());
        g.add_edge(0, 1);
        let d = g.shortest_paths(0).unwrap();
        assert_eq!(d[1], 5.0);
    }

    #[test]
    fn source_out_of_range_errors() {
        let g = square();
        assert!(matches!(
            g.shortest_paths(99),
            Err(TopologyError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(9.0, 9.0),
        ]);
        g.add_edge(0, 1);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        assert!(!g.is_connected());
        g.add_edge(1, 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edges_reported_once() {
        let g = square();
        let edges = g.edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|e| e.a < e.b));
        assert!(edges.iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn coincident_points_get_positive_weight() {
        let mut g = Graph::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        g.add_edge(0, 1);
        assert!(g.edges()[0].weight > 0.0);
    }
}
