//! Undirected weighted graph with Dijkstra shortest paths.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use pscd_pool::parallel_indexed;
use serde::{Deserialize, Serialize};

use crate::{Point, TopologyError};

/// An undirected edge with a positive weight (Euclidean length).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Edge weight (network distance).
    pub weight: f64,
}

/// The adjacency lists flattened into compressed-sparse-row form:
/// node `v`'s neighbors live at `offsets[v]..offsets[v + 1]` in
/// `targets`/`weights`, in the same order as the builder added them.
/// One contiguous layout instead of `n` separate heap allocations —
/// built lazily on first shortest-path query, shared by every query
/// after it (and by every worker of [`Graph::shortest_paths_many`]).
#[derive(Debug, Clone)]
struct CsrAdj {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrAdj {
    fn build(adjacency: &[Vec<(usize, f64)>]) -> Self {
        let half_edges: usize = adjacency.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(adjacency.len() + 1);
        let mut targets = Vec::with_capacity(half_edges);
        let mut weights = Vec::with_capacity(half_edges);
        offsets.push(0u32);
        for adj in adjacency {
            for &(next, w) in adj {
                targets.push(next as u32);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    #[inline]
    fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.offsets[node] as usize;
        let hi = self.offsets[node + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t as usize, w))
    }
}

/// An undirected weighted graph of network nodes placed on a plane.
///
/// Node 0 is conventionally the publisher; the remaining nodes are proxy
/// servers, but the graph itself is agnostic.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct Graph {
    positions: Vec<Point>,
    /// adjacency[v] = [(neighbor, weight)]
    adjacency: Vec<Vec<(usize, f64)>>,
    edge_count: usize,
    /// Lazily-built CSR mirror of `adjacency`; reset by [`add_edge`]
    /// (Graph::add_edge), excluded from equality and serialization.
    #[serde(skip)]
    csr: OnceLock<CsrAdj>,
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        // The CSR cache is derived state: whether it has been built yet
        // must not distinguish otherwise-identical graphs.
        self.positions == other.positions
            && self.adjacency == other.adjacency
            && self.edge_count == other.edge_count
    }
}

impl Graph {
    /// Creates a graph with `positions.len()` nodes and no edges.
    pub fn new(positions: Vec<Point>) -> Self {
        let n = positions.len();
        Self {
            positions,
            adjacency: vec![Vec::new(); n],
            edge_count: 0,
            csr: OnceLock::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn position(&self, node: usize) -> Point {
        self.positions[node]
    }

    /// Neighbors of `node` with edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn neighbors(&self, node: usize) -> &[(usize, f64)] {
        &self.adjacency[node]
    }

    /// `true` if an edge `{a, b}` exists.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adjacency
            .get(a)
            .is_some_and(|adj| adj.iter().any(|&(n, _)| n == b))
    }

    /// Adds the undirected edge `{a, b}` weighted by the Euclidean distance
    /// between the endpoints. Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        if a == b || self.has_edge(a, b) {
            return;
        }
        let w = self.positions[a]
            .distance(self.positions[b])
            .max(f64::MIN_POSITIVE);
        self.adjacency[a].push((b, w));
        self.adjacency[b].push((a, w));
        self.edge_count += 1;
        // The CSR mirror no longer reflects the adjacency lists; rebuild
        // lazily on the next shortest-path query.
        self.csr = OnceLock::new();
    }

    /// The CSR mirror of the adjacency lists, built at most once per
    /// mutation epoch.
    fn csr(&self) -> &CsrAdj {
        self.csr.get_or_init(|| CsrAdj::build(&self.adjacency))
    }

    /// All edges, each reported once with `a < b`.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for (a, adj) in self.adjacency.iter().enumerate() {
            for &(b, weight) in adj {
                if a < b {
                    out.push(Edge { a, b, weight });
                }
            }
        }
        out
    }

    /// Single-source shortest path distances from `source` (Dijkstra over
    /// the cached CSR adjacency). Unreachable nodes get `f64::INFINITY`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if `source` is out of range.
    pub fn shortest_paths(&self, source: usize) -> Result<Vec<f64>, TopologyError> {
        let n = self.node_count();
        if source >= n {
            return Err(TopologyError::NodeOutOfRange {
                node: source,
                nodes: n,
            });
        }
        Ok(dijkstra(self.csr(), n, source))
    }

    /// Shortest-path distance vectors from many sources, computed
    /// per-source on up to `threads` pool workers (`0` = auto) and
    /// returned in `sources` order. The CSR adjacency is built once on
    /// the caller's thread and shared read-only by every worker; each
    /// per-source run relaxes edges in exactly the order the sequential
    /// [`shortest_paths`](Graph::shortest_paths) does, so the distances
    /// are bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] for the first
    /// out-of-range source (checked up front — no partial work).
    pub fn shortest_paths_many(
        &self,
        sources: &[usize],
        threads: usize,
    ) -> Result<Vec<Vec<f64>>, TopologyError> {
        let n = self.node_count();
        if let Some(&node) = sources.iter().find(|&&s| s >= n) {
            return Err(TopologyError::NodeOutOfRange { node, nodes: n });
        }
        let csr = self.csr();
        Ok(parallel_indexed(sources.len(), threads, |i| {
            dijkstra(csr, n, sources[i])
        }))
    }

    /// Connected components as lists of node indices (each sorted).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start];
            let mut comp = Vec::new();
            seen[start] = true;
            while let Some(v) = stack.pop() {
                comp.push(v);
                for &(next, _) in &self.adjacency[v] {
                    if !seen[next] {
                        seen[next] = true;
                        stack.push(next);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// `true` if every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.node_count() <= 1 || self.components().len() == 1
    }
}

/// Dijkstra over a CSR adjacency; relaxation order matches the original
/// per-`Vec` adjacency walk exactly, so the result is independent of how
/// (or on which thread) the CSR was built.
fn dijkstra(csr: &CsrAdj, n: usize, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > dist[node] {
            continue;
        }
        for (next, w) in csr.neighbors(node) {
            let nd = d + w;
            if nd < dist[next] {
                dist[next] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    node: next,
                });
            }
        }
    }
    dist
}

/// Min-heap entry: `BinaryHeap` is a max-heap, so ordering is reversed.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.node == other.node
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on distance for min-heap behavior; ties broken by node id
        // to keep the order total (distances are finite, never NaN).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Graph {
        // 0-(1)-1
        // |      |
        // 3-(1)-2   with unit edges around, diagonal absent
        let mut g = Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 0);
        g
    }

    #[test]
    fn add_edge_dedups_and_ignores_self_loops() {
        let mut g = square();
        assert_eq!(g.edge_count(), 4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn shortest_paths_on_square() {
        let g = square();
        let d = g.shortest_paths(0).unwrap();
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[2], 2.0); // around the square, diagonal missing
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut g = Graph::new(vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)]);
        let d = g.shortest_paths(0).unwrap();
        assert!(d[1].is_infinite());
        g.add_edge(0, 1);
        let d = g.shortest_paths(0).unwrap();
        assert_eq!(d[1], 5.0);
    }

    #[test]
    fn source_out_of_range_errors() {
        let g = square();
        assert!(matches!(
            g.shortest_paths(99),
            Err(TopologyError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(9.0, 9.0),
        ]);
        g.add_edge(0, 1);
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        assert!(!g.is_connected());
        g.add_edge(1, 2);
        assert!(g.is_connected());
    }

    #[test]
    fn edges_reported_once() {
        let g = square();
        let edges = g.edges();
        assert_eq!(edges.len(), 4);
        assert!(edges.iter().all(|e| e.a < e.b));
        assert!(edges.iter().all(|e| e.weight > 0.0));
    }

    #[test]
    fn csr_cache_is_invalidated_by_add_edge() {
        let mut g = Graph::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ]);
        g.add_edge(0, 1);
        // Querying builds the CSR cache…
        assert!(g.shortest_paths(0).unwrap()[2].is_infinite());
        // …and mutating must rebuild it, not serve stale adjacency.
        g.add_edge(1, 2);
        assert_eq!(g.shortest_paths(0).unwrap()[2], 2.0);
        // No-op adds (duplicates, self-loops) are fine either way.
        g.add_edge(0, 1);
        g.add_edge(2, 2);
        assert_eq!(g.shortest_paths(0).unwrap()[2], 2.0);
    }

    #[test]
    fn equality_ignores_the_csr_cache() {
        let queried = square();
        let fresh = square();
        let _ = queried.shortest_paths(0).unwrap();
        assert_eq!(queried, fresh);
    }

    #[test]
    fn shortest_paths_many_matches_the_looped_singles() {
        let g = square();
        let sources = [0usize, 2, 1, 0, 3];
        for threads in [1, 2, 0] {
            let many = g.shortest_paths_many(&sources, threads).unwrap();
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(many[i], g.shortest_paths(s).unwrap(), "source {s}");
            }
        }
        assert!(matches!(
            g.shortest_paths_many(&[0, 99], 2),
            Err(TopologyError::NodeOutOfRange { node: 99, .. })
        ));
        assert!(g.shortest_paths_many(&[], 2).unwrap().is_empty());
    }

    #[test]
    fn coincident_points_get_positive_weight() {
        let mut g = Graph::new(vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        g.add_edge(0, 1);
        assert!(g.edges()[0].weight > 0.0);
    }
}
