//! Plane placement.

use serde::{Deserialize, Serialize};

/// A node position on the BRITE placement plane.
///
/// # Examples
///
/// ```
/// use pscd_topology::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-0.5, 4.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }
}
