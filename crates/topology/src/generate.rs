//! Random-graph generators (BRITE's flat router-level models).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{Graph, Point, TopologyError};

/// The random-graph model used to wire nodes together.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GraphModel {
    /// Waxman (1988): nodes uniform on the plane; edge probability
    /// `alpha * exp(-d / (beta * d_max))` for node distance `d` and plane
    /// diameter `d_max`. BRITE's default is `alpha = 0.15`, `beta = 0.2`.
    Waxman {
        /// Maximum edge probability, `0 < alpha <= 1`.
        alpha: f64,
        /// Distance-decay control, `0 < beta <= 1`.
        beta: f64,
    },
    /// Barabási–Albert preferential attachment: each new node connects to
    /// `m` existing nodes with probability proportional to their degree.
    BarabasiAlbert {
        /// Edges added per new node, `m >= 1`.
        m: usize,
    },
    /// Two-level top-down hierarchy (BRITE's hierarchical model, in the
    /// spirit of transit-stub topologies): `domains` transit nodes are
    /// placed and wired with a Waxman graph over the whole plane; the
    /// remaining nodes are split evenly into stub clusters, each placed in
    /// a small disc around its transit node, wired internally with a dense
    /// local Waxman, and attached to its transit node.
    Hierarchical {
        /// Number of top-level (transit) domains, `>= 1`.
        domains: usize,
        /// Waxman `alpha` used at both levels, `0 < alpha <= 1`.
        alpha: f64,
        /// Waxman `beta` used at both levels, `0 < beta <= 1`.
        beta: f64,
    },
}

impl GraphModel {
    /// Waxman model with BRITE's default parameters (α = 0.15, β = 0.2).
    pub const fn waxman() -> Self {
        GraphModel::Waxman {
            alpha: 0.15,
            beta: 0.2,
        }
    }

    /// Barabási–Albert model with `m = 2` (BRITE's default).
    pub const fn barabasi_albert() -> Self {
        GraphModel::BarabasiAlbert { m: 2 }
    }

    /// Hierarchical model with 8 transit domains and Waxman defaults.
    pub const fn hierarchical() -> Self {
        GraphModel::Hierarchical {
            domains: 8,
            alpha: 0.4,
            beta: 0.4,
        }
    }

    fn validate(self) -> Result<(), TopologyError> {
        match self {
            GraphModel::Waxman { alpha, beta } => {
                if !(alpha > 0.0 && alpha <= 1.0) {
                    return Err(TopologyError::InvalidParameter {
                        name: "alpha",
                        constraint: "0 < alpha <= 1",
                    });
                }
                if !(beta > 0.0 && beta <= 1.0) {
                    return Err(TopologyError::InvalidParameter {
                        name: "beta",
                        constraint: "0 < beta <= 1",
                    });
                }
                Ok(())
            }
            GraphModel::BarabasiAlbert { m } => {
                if m == 0 {
                    return Err(TopologyError::InvalidParameter {
                        name: "m",
                        constraint: "m >= 1",
                    });
                }
                Ok(())
            }
            GraphModel::Hierarchical {
                domains,
                alpha,
                beta,
            } => {
                if domains == 0 {
                    return Err(TopologyError::InvalidParameter {
                        name: "domains",
                        constraint: "domains >= 1",
                    });
                }
                if !(alpha > 0.0 && alpha <= 1.0 && beta > 0.0 && beta <= 1.0) {
                    return Err(TopologyError::InvalidParameter {
                        name: "alpha/beta",
                        constraint: "0 < alpha, beta <= 1",
                    });
                }
                Ok(())
            }
        }
    }
}

impl Default for GraphModel {
    fn default() -> Self {
        GraphModel::waxman()
    }
}

/// Builder for a connected random topology.
///
/// Node 0 is conventionally the publisher. The generated graph is always
/// connected: disconnected components are stitched together through their
/// closest node pairs.
///
/// # Examples
///
/// ```
/// use pscd_topology::{GraphModel, TopologyBuilder};
/// let g = TopologyBuilder::new(50)
///     .model(GraphModel::barabasi_albert())
///     .plane_size(1000.0)
///     .seed(42)
///     .build()?;
/// assert!(g.is_connected());
/// assert_eq!(g.node_count(), 50);
/// # Ok::<(), pscd_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    nodes: usize,
    model: GraphModel,
    plane: f64,
    seed: u64,
}

impl TopologyBuilder {
    /// Starts a builder for a topology with `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            model: GraphModel::default(),
            plane: 1_000.0,
            seed: 0,
        }
    }

    /// Sets the wiring model (default: Waxman with BRITE defaults).
    pub fn model(mut self, model: GraphModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the side length of the square placement plane (default 1000).
    pub fn plane_size(mut self, side: f64) -> Self {
        self.plane = side;
        self
    }

    /// Sets the RNG seed; the same seed reproduces the same topology.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::TooFewNodes`] for fewer than 2 nodes and
    /// [`TopologyError::InvalidParameter`] for out-of-range model parameters
    /// or a non-positive plane size.
    pub fn build(self) -> Result<Graph, TopologyError> {
        if self.nodes < 2 {
            return Err(TopologyError::TooFewNodes { nodes: self.nodes });
        }
        self.model.validate()?;
        if self.plane.is_nan() || self.plane <= 0.0 {
            return Err(TopologyError::InvalidParameter {
                name: "plane_size",
                constraint: "plane_size > 0",
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut graph = match self.model {
            GraphModel::Hierarchical {
                domains,
                alpha,
                beta,
            } => build_hierarchical(self.nodes, self.plane, domains, alpha, beta, &mut rng),
            flat => {
                let positions: Vec<Point> = (0..self.nodes)
                    .map(|_| {
                        Point::new(
                            rng.random_range(0.0..self.plane),
                            rng.random_range(0.0..self.plane),
                        )
                    })
                    .collect();
                let mut graph = Graph::new(positions);
                match flat {
                    GraphModel::Waxman { alpha, beta } => {
                        wire_waxman_subset(
                            &mut graph,
                            &(0..self.nodes).collect::<Vec<_>>(),
                            alpha,
                            beta,
                            &mut rng,
                        );
                    }
                    GraphModel::BarabasiAlbert { m } => {
                        wire_barabasi_albert(&mut graph, m, &mut rng);
                    }
                    GraphModel::Hierarchical { .. } => unreachable!("handled above"),
                }
                graph
            }
        };
        connect_components(&mut graph);
        debug_assert!(graph.is_connected());
        Ok(graph)
    }
}

/// Waxman wiring restricted to a node subset (the whole graph for flat
/// models; one level/cluster for the hierarchical model).
fn wire_waxman_subset(graph: &mut Graph, nodes: &[usize], alpha: f64, beta: f64, rng: &mut StdRng) {
    // Diameter of the subset: maximum pairwise separation.
    let mut d_max: f64 = 0.0;
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            d_max = d_max.max(graph.position(a).distance(graph.position(b)));
        }
    }
    if d_max <= 0.0 {
        d_max = 1.0;
    }
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let d = graph.position(a).distance(graph.position(b));
            let p = alpha * (-d / (beta * d_max)).exp();
            if rng.random::<f64>() < p {
                graph.add_edge(a, b);
            }
        }
    }
}

/// Builds the two-level hierarchical topology: transit nodes first (ids
/// `0..domains`), then stub clusters around them.
fn build_hierarchical(
    nodes: usize,
    plane: f64,
    domains: usize,
    alpha: f64,
    beta: f64,
    rng: &mut StdRng,
) -> Graph {
    let domains = domains.min(nodes);
    // Transit nodes anywhere on the plane.
    let mut positions: Vec<Point> = (0..domains)
        .map(|_| Point::new(rng.random_range(0.0..plane), rng.random_range(0.0..plane)))
        .collect();
    // Stub nodes in a disc around their transit node.
    let radius = plane / (domains as f64).sqrt() / 2.0;
    let mut cluster_of = Vec::with_capacity(nodes - domains);
    for i in 0..nodes - domains {
        let cluster = i % domains;
        let center = positions[cluster];
        let angle = rng.random_range(0.0..std::f64::consts::TAU);
        let r = radius * rng.random::<f64>().sqrt();
        positions.push(Point::new(
            (center.x + r * angle.cos()).clamp(0.0, plane),
            (center.y + r * angle.sin()).clamp(0.0, plane),
        ));
        cluster_of.push(cluster);
    }
    let mut graph = Graph::new(positions);
    // Top level: Waxman over the transit nodes.
    let transit: Vec<usize> = (0..domains).collect();
    wire_waxman_subset(&mut graph, &transit, alpha, beta, rng);
    // Each stub cluster: dense local Waxman + uplink to its transit node.
    for cluster in 0..domains {
        let mut members: Vec<usize> = vec![cluster];
        members.extend(
            cluster_of
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == cluster)
                .map(|(i, _)| domains + i),
        );
        // Denser than the top level so stubs are internally well-connected.
        wire_waxman_subset(&mut graph, &members, (alpha * 2.0).min(1.0), beta, rng);
        for &m in &members[1..] {
            if rng.random::<f64>() < 0.3 {
                graph.add_edge(cluster, m);
            }
        }
    }
    graph
}

fn wire_barabasi_albert(graph: &mut Graph, m: usize, rng: &mut StdRng) {
    let n = graph.node_count();
    let seed_size = (m + 1).min(n);
    // Fully connect the seed clique.
    for a in 0..seed_size {
        for b in (a + 1)..seed_size {
            graph.add_edge(a, b);
        }
    }
    // Repeated-node list: each node appears once per incident edge end,
    // giving degree-proportional sampling.
    let mut targets: Vec<usize> = Vec::new();
    for e in graph.edges() {
        targets.push(e.a);
        targets.push(e.b);
    }
    for new in seed_size..n {
        let mut chosen = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m.min(new) && guard < 64 * m {
            guard += 1;
            let pick = if targets.is_empty() {
                rng.random_range(0..new)
            } else {
                targets[rng.random_range(0..targets.len())]
            };
            if pick != new && !chosen.contains(&pick) {
                chosen.push(pick);
            }
        }
        for &t in &chosen {
            graph.add_edge(new, t);
            targets.push(new);
            targets.push(t);
        }
    }
}

/// Stitches disconnected components together through their closest node
/// pairs, keeping total added length small (what BRITE's post-processing
/// does to guarantee a usable topology).
fn connect_components(graph: &mut Graph) {
    loop {
        let comps = graph.components();
        if comps.len() <= 1 {
            return;
        }
        // Join the first component to its nearest other component.
        let base = &comps[0];
        let mut best: Option<(usize, usize, f64)> = None;
        for comp in &comps[1..] {
            for &a in base {
                for &b in comp {
                    let d = graph.position(a).distance(graph.position(b));
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((a, b, d));
                    }
                }
            }
        }
        let (a, b, _) = best.expect("at least two components");
        graph.add_edge(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let a = TopologyBuilder::new(101).seed(7).build().unwrap();
        let b = TopologyBuilder::new(101).seed(7).build().unwrap();
        assert!(a.is_connected());
        assert_eq!(a.edges().len(), b.edges().len());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TopologyBuilder::new(60).seed(1).build().unwrap();
        let b = TopologyBuilder::new(60).seed(2).build().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn barabasi_albert_builds_connected_graph() {
        let g = TopologyBuilder::new(80)
            .model(GraphModel::BarabasiAlbert { m: 2 })
            .seed(3)
            .build()
            .unwrap();
        assert!(g.is_connected());
        // BA with m=2 should produce roughly 2 edges per non-seed node.
        assert!(g.edge_count() >= 80);
    }

    #[test]
    fn ba_degree_distribution_is_skewed() {
        let g = TopologyBuilder::new(200)
            .model(GraphModel::BarabasiAlbert { m: 2 })
            .seed(11)
            .build()
            .unwrap();
        let max_degree = (0..g.node_count())
            .map(|v| g.neighbors(v).len())
            .max()
            .unwrap();
        // Preferential attachment produces hubs well above the mean degree.
        assert!(max_degree >= 10, "max degree {max_degree} too flat for BA");
    }

    #[test]
    fn tiny_and_invalid_configs_rejected() {
        assert!(matches!(
            TopologyBuilder::new(1).build(),
            Err(TopologyError::TooFewNodes { nodes: 1 })
        ));
        assert!(TopologyBuilder::new(10)
            .model(GraphModel::Waxman {
                alpha: 0.0,
                beta: 0.2
            })
            .build()
            .is_err());
        assert!(TopologyBuilder::new(10)
            .model(GraphModel::Waxman {
                alpha: 0.5,
                beta: 1.5
            })
            .build()
            .is_err());
        assert!(TopologyBuilder::new(10)
            .model(GraphModel::BarabasiAlbert { m: 0 })
            .build()
            .is_err());
        assert!(TopologyBuilder::new(10).plane_size(0.0).build().is_err());
    }

    #[test]
    fn hierarchical_builds_connected_clustered_graph() {
        let g = TopologyBuilder::new(101)
            .model(GraphModel::hierarchical())
            .seed(5)
            .build()
            .unwrap();
        assert!(g.is_connected());
        assert_eq!(g.node_count(), 101);
        // Deterministic.
        let g2 = TopologyBuilder::new(101)
            .model(GraphModel::hierarchical())
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(g, g2);
        // Clustered: stub nodes sit near their transit node, so the mean
        // edge length is much shorter than the plane size.
        let mean_edge: f64 =
            g.edges().iter().map(|e| e.weight).sum::<f64>() / g.edge_count() as f64;
        assert!(mean_edge < 500.0, "mean edge {mean_edge}");
    }

    #[test]
    fn hierarchical_validates_parameters() {
        assert!(TopologyBuilder::new(10)
            .model(GraphModel::Hierarchical {
                domains: 0,
                alpha: 0.4,
                beta: 0.4
            })
            .build()
            .is_err());
        assert!(TopologyBuilder::new(10)
            .model(GraphModel::Hierarchical {
                domains: 2,
                alpha: 0.0,
                beta: 0.4
            })
            .build()
            .is_err());
        // More domains than nodes degrades gracefully.
        assert!(TopologyBuilder::new(3)
            .model(GraphModel::Hierarchical {
                domains: 8,
                alpha: 0.4,
                beta: 0.4
            })
            .build()
            .unwrap()
            .is_connected());
    }

    #[test]
    fn hierarchical_costs_work_for_proxy_fleet() {
        use crate::FetchCosts;
        let g = TopologyBuilder::new(101)
            .model(GraphModel::hierarchical())
            .seed(9)
            .build()
            .unwrap();
        let costs = FetchCosts::from_topology(&g, 0).unwrap();
        assert_eq!(costs.server_count(), 100);
        assert!(costs.max() >= costs.min());
    }

    #[test]
    fn two_node_graph_connects() {
        let g = TopologyBuilder::new(2).seed(5).build().unwrap();
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn sparse_waxman_still_connected() {
        // Tiny alpha -> almost no organic edges; stitching must connect.
        let g = TopologyBuilder::new(40)
            .model(GraphModel::Waxman {
                alpha: 0.001,
                beta: 0.05,
            })
            .seed(9)
            .build()
            .unwrap();
        assert!(g.is_connected());
        assert!(g.edge_count() >= 39);
    }
}
