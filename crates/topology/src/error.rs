//! Topology errors.

use std::error::Error;
use std::fmt;

/// Error produced while building or querying a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A topology needs at least two nodes (one publisher, one proxy).
    TooFewNodes {
        /// The rejected node count.
        nodes: usize,
    },
    /// A model parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// A node index was outside the graph.
    NodeOutOfRange {
        /// The rejected index.
        node: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewNodes { nodes } => {
                write!(f, "topology needs at least 2 nodes, got {nodes}")
            }
            TopologyError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter {name}: must satisfy {constraint}")
            }
            TopologyError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range for graph with {nodes} nodes")
            }
        }
    }
}

impl Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TopologyError::TooFewNodes { nodes: 1 }
            .to_string()
            .contains("at least 2"));
        assert!(TopologyError::InvalidParameter {
            name: "alpha",
            constraint: "0 < alpha <= 1"
        }
        .to_string()
        .contains("alpha"));
        assert!(TopologyError::NodeOutOfRange { node: 9, nodes: 3 }
            .to_string()
            .contains("node 9"));
    }
}
