//! Per-proxy fetch costs derived from a topology.

use serde::{Deserialize, Serialize};

use pscd_types::ServerId;

use crate::{Graph, TopologyError};

/// The cost `c(p)` each proxy pays to fetch a page from the publisher.
///
/// Following the paper (§3.1, after Cao & Irani), the cost is the network
/// distance from the proxy to the origin publisher on the generated
/// topology; with a single publisher the cost is constant per proxy. Costs
/// are normalized so the cheapest proxy pays 1.0, keeping the value
/// functions' scale independent of the plane size.
///
/// # Examples
///
/// ```
/// use pscd_topology::{FetchCosts, TopologyBuilder};
/// use pscd_types::ServerId;
///
/// let topo = TopologyBuilder::new(11).seed(1).build()?;
/// let costs = FetchCosts::from_topology(&topo, 0)?;
/// assert_eq!(costs.server_count(), 10);
/// assert!((costs.min() - 1.0).abs() < 1e-12);
/// let _c0 = costs.cost(ServerId::new(0));
/// # Ok::<(), pscd_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchCosts {
    per_server: Vec<f64>,
}

impl FetchCosts {
    /// Uniform costs of 1.0 for `servers` proxies — the degenerate cost
    /// model where the network plays no role.
    pub fn uniform(servers: u16) -> Self {
        Self {
            per_server: vec![1.0; servers as usize],
        }
    }

    /// Builds costs from explicit per-server values.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::InvalidParameter`] if any cost is not a
    /// finite positive number.
    pub fn from_values(per_server: Vec<f64>) -> Result<Self, TopologyError> {
        if per_server.iter().any(|c| !c.is_finite() || *c <= 0.0) {
            return Err(TopologyError::InvalidParameter {
                name: "cost",
                constraint: "finite and > 0",
            });
        }
        Ok(Self { per_server })
    }

    /// Derives costs from a connected topology: the shortest-path distance
    /// from every other node to `publisher`, normalized so the minimum
    /// proxy cost is 1.0. Node `publisher` is excluded from the result;
    /// proxy `ServerId(i)` maps to topology node `i + 1` when
    /// `publisher == 0` (the conventional layout), or more generally to the
    /// `i`-th non-publisher node in node order.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if `publisher` is not a
    /// node, and [`TopologyError::InvalidParameter`] if some proxy cannot
    /// reach the publisher (disconnected graph).
    pub fn from_topology(graph: &Graph, publisher: usize) -> Result<Self, TopologyError> {
        let dist = graph.shortest_paths(publisher)?;
        Self::normalize(&dist, publisher)
    }

    /// Derives one [`FetchCosts`] per publisher in `publishers` order,
    /// running the per-source shortest-path computations on up to
    /// `threads` pool workers (`0` = auto). Each result is exactly what
    /// [`from_topology`](Self::from_topology) returns for that publisher
    /// — same exclusion of the publisher node, same normalization — and
    /// bit-identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NodeOutOfRange`] if any publisher is not
    /// a node, and [`TopologyError::InvalidParameter`] if some proxy
    /// cannot reach its publisher.
    pub fn from_topology_many(
        graph: &Graph,
        publishers: &[usize],
        threads: usize,
    ) -> Result<Vec<Self>, TopologyError> {
        let dists = graph.shortest_paths_many(publishers, threads)?;
        publishers
            .iter()
            .zip(dists)
            .map(|(&publisher, dist)| Self::normalize(&dist, publisher))
            .collect()
    }

    /// The shared tail of [`from_topology`](Self::from_topology) and
    /// [`from_topology_many`](Self::from_topology_many): drop the
    /// publisher's own entry, reject unreachable proxies, normalize the
    /// cheapest proxy to 1.0.
    fn normalize(dist: &[f64], publisher: usize) -> Result<Self, TopologyError> {
        let proxy_dists: Vec<f64> = dist
            .iter()
            .enumerate()
            .filter(|&(node, _)| node != publisher)
            .map(|(_, &d)| d)
            .collect();
        if proxy_dists.iter().any(|d| !d.is_finite()) {
            return Err(TopologyError::InvalidParameter {
                name: "topology",
                constraint: "all proxies reachable from the publisher",
            });
        }
        let min = proxy_dists
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .max(f64::MIN_POSITIVE);
        Ok(Self {
            per_server: proxy_dists.iter().map(|d| (d / min).max(1.0)).collect(),
        })
    }

    /// Number of proxies covered.
    #[inline]
    pub fn server_count(&self) -> u16 {
        self.per_server.len() as u16
    }

    /// The fetch cost of one proxy.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    #[inline]
    pub fn cost(&self, server: ServerId) -> f64 {
        self.per_server[server.as_usize()]
    }

    /// Iterates over all proxy costs in server order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.per_server.iter().copied()
    }

    /// The smallest proxy cost (1.0 for topology-derived costs).
    pub fn min(&self) -> f64 {
        self.per_server
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The largest proxy cost.
    pub fn max(&self) -> f64 {
        self.per_server
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TopologyBuilder;

    #[test]
    fn uniform_costs() {
        let c = FetchCosts::uniform(4);
        assert_eq!(c.server_count(), 4);
        assert!(c.iter().all(|v| v == 1.0));
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 1.0);
    }

    #[test]
    fn from_values_validates() {
        assert!(FetchCosts::from_values(vec![1.0, 2.5]).is_ok());
        assert!(FetchCosts::from_values(vec![0.0]).is_err());
        assert!(FetchCosts::from_values(vec![-1.0]).is_err());
        assert!(FetchCosts::from_values(vec![f64::NAN]).is_err());
        assert!(FetchCosts::from_values(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn topology_costs_normalized_and_sized() {
        let g = TopologyBuilder::new(101).seed(42).build().unwrap();
        let c = FetchCosts::from_topology(&g, 0).unwrap();
        assert_eq!(c.server_count(), 100);
        assert!((c.min() - 1.0).abs() < 1e-12);
        assert!(c.max() >= c.min());
        assert!(c.iter().all(|v| v.is_finite() && v >= 1.0));
    }

    #[test]
    fn publisher_out_of_range() {
        let g = TopologyBuilder::new(5).seed(0).build().unwrap();
        assert!(FetchCosts::from_topology(&g, 9).is_err());
    }

    #[test]
    fn nonzero_publisher_excluded() {
        let g = TopologyBuilder::new(5).seed(0).build().unwrap();
        let c = FetchCosts::from_topology(&g, 3).unwrap();
        assert_eq!(c.server_count(), 4);
    }

    #[test]
    fn many_matches_looped_singles_at_every_thread_count() {
        let g = TopologyBuilder::new(21).seed(7).build().unwrap();
        let publishers = [0usize, 5, 20, 0];
        for threads in [1, 2, 0] {
            let many = FetchCosts::from_topology_many(&g, &publishers, threads).unwrap();
            assert_eq!(many.len(), publishers.len());
            for (i, &p) in publishers.iter().enumerate() {
                assert_eq!(many[i], FetchCosts::from_topology(&g, p).unwrap());
            }
        }
        assert!(FetchCosts::from_topology_many(&g, &[0, 99], 2).is_err());
    }
}
