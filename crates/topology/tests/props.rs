//! Property tests for topology generation and shortest paths.

use proptest::prelude::*;

use pscd_topology::{FetchCosts, GraphModel, TopologyBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated topology is connected, deterministic in its seed,
    /// and yields finite normalized costs from any publisher node.
    #[test]
    fn generated_topologies_are_well_formed(
        nodes in 2usize..80,
        seed in 0u64..1_000,
        ba in proptest::bool::ANY,
    ) {
        let model = if ba {
            GraphModel::barabasi_albert()
        } else {
            GraphModel::waxman()
        };
        let g1 = TopologyBuilder::new(nodes).model(model).seed(seed).build().unwrap();
        let g2 = TopologyBuilder::new(nodes).model(model).seed(seed).build().unwrap();
        prop_assert_eq!(&g1, &g2);
        prop_assert!(g1.is_connected());
        prop_assert_eq!(g1.node_count(), nodes);
        // A connected graph needs at least n-1 edges.
        prop_assert!(g1.edge_count() >= nodes - 1);

        let publisher = (seed as usize) % nodes;
        let costs = FetchCosts::from_topology(&g1, publisher).unwrap();
        prop_assert_eq!(costs.server_count() as usize, nodes - 1);
        prop_assert!(costs.iter().all(|c| c.is_finite() && c >= 1.0));
        prop_assert!((costs.min() - 1.0).abs() < 1e-9);
    }

    /// Dijkstra distances satisfy the relaxation property: for every edge
    /// (u, v, w), d(v) <= d(u) + w.
    #[test]
    fn shortest_paths_satisfy_relaxation(nodes in 2usize..60, seed in 0u64..500) {
        let g = TopologyBuilder::new(nodes).seed(seed).build().unwrap();
        let dist = g.shortest_paths(0).unwrap();
        prop_assert_eq!(dist[0], 0.0);
        for e in g.edges() {
            prop_assert!(dist[e.b] <= dist[e.a] + e.weight + 1e-9);
            prop_assert!(dist[e.a] <= dist[e.b] + e.weight + 1e-9);
        }
        // Connected: all distances finite; and each non-source node's
        // distance is realized by some incoming edge (tightness).
        for v in 1..nodes {
            prop_assert!(dist[v].is_finite());
            let tight = g
                .neighbors(v)
                .iter()
                .any(|&(u, w)| (dist[u] + w - dist[v]).abs() < 1e-6);
            prop_assert!(tight, "no tight edge into node {v}");
        }
    }

    /// Edge weights equal the Euclidean distance between endpoints.
    #[test]
    fn weights_are_euclidean(nodes in 2usize..40, seed in 0u64..200) {
        let g = TopologyBuilder::new(nodes).seed(seed).build().unwrap();
        for e in g.edges() {
            let d = g.position(e.a).distance(g.position(e.b));
            prop_assert!((e.weight - d.max(f64::MIN_POSITIVE)).abs() < 1e-9);
        }
    }
}
