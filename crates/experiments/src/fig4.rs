//! Figure 4: overall hit ratios with perfect subscriptions.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, TraceRow,
    CAPACITIES, PAPER_BETA,
};

/// Figure 4 of the paper: GD\*, SUB, SG1, SG2, SR and DC-LAP across the
/// three capacity settings, on both traces, with perfect subscription
/// information (SQ = 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// `(trace, capacity fraction, [(strategy, hit ratio)])` rows.
    pub rows: Vec<TraceRow>,
}

impl Fig4 {
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = StrategyKind::figure4_lineup(PAPER_BETA);
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            for &capacity in &CAPACITIES {
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&*compiled, SimOptions::at_capacity(kind, capacity)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                rows.push((
                    trace,
                    capacity,
                    results
                        .into_iter()
                        .map(|r| (r.strategy.clone(), r.hit_ratio()))
                        .collect(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// The hit ratio of one strategy in one row; `None` if absent.
    pub fn hit_ratio(&self, trace: Trace, capacity: f64, strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, c, _)| *t == trace && *c == capacity)
            .and_then(|(_, _, cells)| {
                cells
                    .iter()
                    .find(|(name, _)| name == strategy)
                    .map(|&(_, h)| h)
            })
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## Figure 4: hit ratio (%) of all methods (SQ = 1)\n")?;
        for (label, trace) in [("(a)", Trace::News), ("(b)", Trace::Alternative)] {
            writeln!(f, "### {label} {} trace", trace.name())?;
            let names: Vec<String> = self
                .rows
                .iter()
                .find(|(t, _, _)| *t == trace)
                .map(|(_, _, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
                .unwrap_or_default();
            let mut headers = vec!["capacity".to_owned()];
            headers.extend(names.iter().cloned());
            let mut table = TextTable::new(headers);
            for (t, capacity, cells) in &self.rows {
                if t != &trace {
                    continue;
                }
                let mut row = vec![format!("{:.0}%", capacity * 100.0)];
                row.extend(cells.iter().map(|&(_, h)| pct(h)));
                table.add_row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_with_paper_orderings() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let fig = Fig4::run(&ctx).unwrap();
        assert_eq!(fig.rows.len(), 6);
        for trace in [Trace::News, Trace::Alternative] {
            let gd = fig.hit_ratio(trace, 0.05, "GD*").unwrap();
            let sg1 = fig.hit_ratio(trace, 0.05, "SG1").unwrap();
            let sg2 = fig.hit_ratio(trace, 0.05, "SG2").unwrap();
            let sr = fig.hit_ratio(trace, 0.05, "SR").unwrap();
            let sub = fig.hit_ratio(trace, 0.05, "SUB").unwrap();
            // SG2 and SR lead; the combined schemes beat pure pushing.
            // (Finer orderings like SG1 > SUB need paper scale; see the
            // shape tests in tests/paper_shapes.rs.)
            assert!(sg2 > gd && sr > gd, "{}", trace.name());
            assert!(sg2 >= sg1 && sr >= sg1, "{}", trace.name());
            assert!(sg2 > sub, "{}", trace.name());
        }
        let rendered = fig.to_string();
        assert!(rendered.contains("(a) NEWS"));
        assert!(rendered.contains("(b) ALTERNATIVE"));
    }
}
