//! Figure 6: average hourly hit ratio over the 7-day horizon.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA};

/// The strategies of figure 6: the best combined scheme against the two
/// single-opportunity schemes.
fn lineup(beta: f64) -> Vec<StrategyKind> {
    vec![
        StrategyKind::Sg2 { beta },
        StrategyKind::Sub,
        StrategyKind::GdStar { beta },
    ]
}

/// Figure 6 of the paper: hourly hit ratio of SG2, SUB and GD\* over the
/// 168 simulated hours (SQ = 1, capacity = 5%), on both traces.
///
/// The paper's reading: SUB starts high (proactive pushing) and decays
/// because static subscriptions never adapt; GD\* stabilizes after a
/// warm-up; SG2 stays high throughout.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6 {
    /// `(trace, strategy, hourly hit ratio % — None for idle hours)`.
    pub series: Vec<(Trace, String, Vec<Option<f64>>)>,
}

impl Fig6 {
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let mut series = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let jobs: Vec<_> = lineup(PAPER_BETA)
                .into_iter()
                .map(|kind| (&*compiled, SimOptions::at_capacity(kind, 0.05)))
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for r in results {
                series.push((trace, r.strategy.clone(), r.hourly.hit_ratio_percent()));
            }
        }
        Ok(Self { series })
    }

    /// Mean hourly hit ratio (%) of a strategy over an inclusive hour
    /// range, ignoring idle hours.
    pub fn mean_over(&self, trace: Trace, strategy: &str, hours: std::ops::Range<usize>) -> f64 {
        let Some((_, _, s)) = self
            .series
            .iter()
            .find(|(t, n, _)| *t == trace && n == strategy)
        else {
            return 0.0;
        };
        let vals: Vec<f64> = s[hours.start.min(s.len())..hours.end.min(s.len())]
            .iter()
            .flatten()
            .copied()
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Figure 6: average hourly hit ratio (%) (SQ = 1, capacity = 5%)\n"
        )?;
        for (label, trace) in [("(a)", Trace::News), ("(b)", Trace::Alternative)] {
            writeln!(f, "### {label} {} trace (6-hour buckets)", trace.name())?;
            let names: Vec<&String> = self
                .series
                .iter()
                .filter(|(t, _, _)| *t == trace)
                .map(|(_, n, _)| n)
                .collect();
            let mut headers = vec!["hour".to_owned()];
            headers.extend(names.iter().map(|n| (*n).clone()));
            let mut table = TextTable::new(headers);
            let hours = self
                .series
                .iter()
                .find(|(t, _, _)| *t == trace)
                .map(|(_, _, s)| s.len())
                .unwrap_or(0);
            let mut h = 0;
            while h < hours {
                let hi = (h + 6).min(hours);
                let mut row = vec![format!("{h}-{}", hi - 1)];
                for name in &names {
                    row.push(format!("{:.1}", self.mean_over(trace, name, h..hi)));
                }
                table.add_row(row);
                h = hi;
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temporal_shapes() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let fig = Fig6::run(&ctx).unwrap();
        assert_eq!(fig.series.len(), 6);
        for trace in [Trace::News, Trace::Alternative] {
            // SUB's advantage decays: early hours beat late hours.
            let sub_early = fig.mean_over(trace, "SUB", 0..48);
            let sub_late = fig.mean_over(trace, "SUB", 120..168);
            assert!(
                sub_early > sub_late,
                "{}: SUB early {sub_early} <= late {sub_late}",
                trace.name()
            );
            // SG2 stays above GD* in the steady state.
            let sg2_late = fig.mean_over(trace, "SG2", 120..168);
            let gd_late = fig.mean_over(trace, "GD*", 120..168);
            assert!(sg2_late > gd_late, "{}", trace.name());
        }
        let rendered = fig.to_string();
        assert!(rendered.contains("Figure 6"));
        assert!(rendered.contains("hour"));
        assert_eq!(fig.mean_over(Trace::News, "missing", 0..10), 0.0);
    }
}
