//! Figure 7: traffic overhead under the two pushing schemes.

use std::fmt;

use pscd_broker::PushScheme;
use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA};

/// The strategies of figure 7.
fn lineup(beta: f64) -> Vec<StrategyKind> {
    vec![
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta },
        StrategyKind::GdStar { beta },
    ]
}

/// Figure 7 of the paper: publisher→proxy traffic (pages per hour: pushes
/// plus fetch-on-miss) for SUB, SG2 and GD\* under (a) Always-Pushing and
/// (b) Pushing-When-Necessary. NEWS trace, SQ = 1, capacity = 5%; totals
/// in both pages and bytes are also recorded (the paper states the
/// observations hold for both units and both traces).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// `(scheme, strategy, hourly total pages)`.
    pub series: Vec<(PushScheme, String, Vec<u64>)>,
    /// `(scheme, strategy, total pages, total bytes)` summary.
    pub totals: Vec<(PushScheme, String, u64, u64)>,
}

impl Fig7 {
    /// Runs the experiment on the NEWS trace.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        Self::run_on(ctx, Trace::News)
    }

    /// Runs the experiment on a chosen trace.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run_on(ctx: &ExperimentContext, trace: Trace) -> Result<Self, ExperimentError> {
        let compiled = ctx.compiled(trace, 1.0)?;
        let mut series = Vec::new();
        let mut totals = Vec::new();
        for scheme in [PushScheme::Always, PushScheme::WhenNecessary] {
            let jobs: Vec<_> = lineup(PAPER_BETA)
                .into_iter()
                .map(|kind| {
                    (
                        &*compiled,
                        SimOptions {
                            strategy: kind,
                            capacity_fraction: 0.05,
                            scheme,
                            crash: None,
                            invalidate_stale: false,
                            threads: 1,
                        },
                    )
                })
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for r in results {
                series.push((scheme, r.strategy.clone(), r.hourly.traffic_pages()));
                totals.push((
                    scheme,
                    r.strategy.clone(),
                    r.traffic.total_pages(),
                    r.traffic.total_bytes().as_u64(),
                ));
            }
        }
        Ok(Self { series, totals })
    }

    /// Total pages transferred for one (scheme, strategy).
    pub fn total_pages(&self, scheme: PushScheme, strategy: &str) -> Option<u64> {
        self.totals
            .iter()
            .find(|(s, n, _, _)| *s == scheme && n == strategy)
            .map(|&(_, _, p, _)| p)
    }

    /// Total bytes transferred for one (scheme, strategy).
    pub fn total_bytes(&self, scheme: PushScheme, strategy: &str) -> Option<u64> {
        self.totals
            .iter()
            .find(|(s, n, _, _)| *s == scheme && n == strategy)
            .map(|&(_, _, _, b)| b)
    }

    fn scheme_label(scheme: PushScheme) -> &'static str {
        match scheme {
            PushScheme::Always => "Always-Pushing",
            PushScheme::WhenNecessary => "Pushing-When-Necessary",
        }
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Figure 7: publisher→proxy traffic in pages (SQ = 1, capacity = 5%, NEWS)\n"
        )?;
        for (label, scheme) in [
            ("(a)", PushScheme::Always),
            ("(b)", PushScheme::WhenNecessary),
        ] {
            writeln!(
                f,
                "### {label} {} (6-hour buckets)",
                Self::scheme_label(scheme)
            )?;
            let names: Vec<&String> = self
                .series
                .iter()
                .filter(|(s, _, _)| *s == scheme)
                .map(|(_, n, _)| n)
                .collect();
            let mut headers = vec!["hour".to_owned()];
            headers.extend(names.iter().map(|n| (*n).clone()));
            let mut table = TextTable::new(headers);
            let hours = self
                .series
                .iter()
                .find(|(s, _, _)| *s == scheme)
                .map(|(_, _, v)| v.len())
                .unwrap_or(0);
            let mut h = 0;
            while h < hours {
                let hi = (h + 6).min(hours);
                let mut row = vec![format!("{h}-{}", hi - 1)];
                for name in &names {
                    let v = self
                        .series
                        .iter()
                        .find(|(s, n, _)| *s == scheme && n == *name)
                        .map(|(_, _, v)| v[h..hi].iter().sum::<u64>() / (hi - h) as u64)
                        .unwrap_or(0);
                    row.push(v.to_string());
                }
                table.add_row(row);
                h = hi;
            }
            writeln!(f, "{table}")?;
            writeln!(f, "Totals:")?;
            for (s, name, pages, bytes) in &self.totals {
                if s == &scheme {
                    writeln!(f, "  {name:6} {pages:>9} pages  {bytes:>14} bytes")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_shapes() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let fig = Fig7::run(&ctx).unwrap();
        assert_eq!(fig.series.len(), 6);
        {
            // Under Always-Pushing SUB introduces the most traffic.
            let scheme = PushScheme::Always;
            let sub = fig.total_pages(scheme, "SUB").unwrap();
            let sg2 = fig.total_pages(scheme, "SG2").unwrap();
            let gd = fig.total_pages(scheme, "GD*").unwrap();
            assert!(sub > gd, "SUB {sub} <= GD* {gd}");
            assert!(sub > sg2);
            // SG2's overhead is comparable to GD* (within 2x here; the
            // paper's claim is "comparable").
            assert!((sg2 as f64) < 2.0 * gd as f64, "{sg2} vs {gd}");
            assert!(fig.total_bytes(scheme, "SUB").unwrap() > 0);
        }
        // GD*'s traffic is scheme-independent.
        assert_eq!(
            fig.total_pages(PushScheme::Always, "GD*"),
            fig.total_pages(PushScheme::WhenNecessary, "GD*")
        );
        // Pushing-When-Necessary shrinks SUB's overhead.
        assert!(
            fig.total_pages(PushScheme::WhenNecessary, "SUB").unwrap()
                <= fig.total_pages(PushScheme::Always, "SUB").unwrap()
        );
        assert!(fig.to_string().contains("Figure 7"));
    }
}
