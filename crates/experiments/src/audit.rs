//! Instrumented audit replays: re-run a lineup of strategies serially
//! with observers attached, cross-check the observers' aggregate totals
//! against each [`SimResult`](pscd_sim::SimResult), and write the
//! artifacts — `summary.txt` plus, on request, one
//! `events_<strategy>.jsonl` structured event log per strategy.
//!
//! This powers `repro <exhibit> --obs-dir DIR [--events]`. With `--events`
//! the replay is deliberately serial (one strategy at a time, one shard):
//! the goal is a faithful, ordered decision log, not throughput. Without
//! `--events` the replay goes through the sharded runner at the
//! context's thread count, and the hard-check then verifies that the
//! shard-merged registry totals equal the `SimResult` exactly.

use std::fmt;
use std::path::{Path, PathBuf};

use pscd_core::StrategyKind;
use pscd_obs::{JsonlObserver, Registry, SharedObserver, StatsObserver, TraceSink};
use pscd_sim::{simulate_observed_sharded_compiled_traced, SimOptions, Simulation};

use crate::{ExperimentContext, ExperimentError, Trace};

/// One strategy's instrumented replay.
#[derive(Debug)]
pub struct AuditRow {
    /// Paper name of the strategy.
    pub strategy: String,
    /// Requests served (cross-checked against the observer's hit + miss
    /// counters).
    pub requests: u64,
    /// Cache hits.
    pub hits: u64,
    /// Pages pushed publisher→proxy (cross-checked against the observer's
    /// transfer counter).
    pub pushed_pages: u64,
    /// The full [`StatsObserver`] summary for this run.
    pub summary: String,
    /// Where the event log went (only with `events`).
    pub events_path: Option<PathBuf>,
    /// Number of events in the log.
    pub events_written: u64,
}

/// The decision audit of one exhibit lineup: per-strategy observed
/// replays plus wall-clock spans, rendered into `summary.txt`.
#[derive(Debug)]
pub struct ObsAudit {
    /// The trace replayed (the paper's NEWS trace).
    pub trace: Trace,
    /// Per-proxy capacity fraction of the replay.
    pub capacity: f64,
    /// One row per strategy, in lineup order.
    pub rows: Vec<AuditRow>,
    /// Wall-clock spans (one per strategy) and any audit-level metrics.
    pub timing: Registry,
}

impl ObsAudit {
    /// Replays `kinds` on the NEWS trace at `capacity` with a
    /// [`StatsObserver`] (and, with `events`, a tee'd [`JsonlObserver`])
    /// attached, writes `summary.txt` and the event logs into `dir`, and
    /// fails if any observer total disagrees with its `SimResult`.
    ///
    /// Without `events` the replay runs through the sharded path at
    /// [`ExperimentContext::threads`], so the hard-check exercises the
    /// deterministic shard merge; with `events` it stays serial so the
    /// decision log is a single ordered stream.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Io`] when `dir` or a file in it cannot
    /// be written, [`ExperimentError::ObserverMismatch`] when an observer
    /// total disagrees with the simulation's own accounting, and
    /// propagates simulation errors.
    pub fn run(
        ctx: &ExperimentContext,
        kinds: &[StrategyKind],
        capacity: f64,
        dir: &Path,
        events: bool,
    ) -> Result<Self, ExperimentError> {
        Self::run_traced(ctx, kinds, capacity, dir, events, &TraceSink::disabled())
    }

    /// [`run`](Self::run) with timeline tracing: the sharded replays
    /// record per-shard tracks into `sink` (see `repro --trace`). Only
    /// the non-`events` path shards, so only it traces; a disabled sink
    /// makes this exactly `run`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_traced(
        ctx: &ExperimentContext,
        kinds: &[StrategyKind],
        capacity: f64,
        dir: &Path,
        events: bool,
        sink: &TraceSink,
    ) -> Result<Self, ExperimentError> {
        let io_err = |what: &Path, e: std::io::Error| {
            ExperimentError::Io(format!("{}: {e}", what.display()))
        };
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let trace = Trace::News;
        let compiled = ctx.compiled(trace, 1.0)?;
        let mut rows = Vec::new();
        // Lead the report with the cold-path phase spans (generation,
        // costs, subscriptions, compilation) so the audit shows where
        // setup time went before any strategy replay span.
        let mut timing = ctx.cold_timing();
        for &kind in kinds {
            let (result, stats, events_path, events_written) = if events {
                let events_path = dir.join(format!("events_{}.jsonl", slug(kind.name())));
                let jsonl =
                    JsonlObserver::to_file(&events_path).map_err(|e| io_err(&events_path, e))?;
                let obs = SharedObserver::new((StatsObserver::new(), Some(jsonl)));
                let options = SimOptions::at_capacity(kind, capacity);
                let result = timing.time(kind.name(), || {
                    Simulation::from_compiled_observed(
                        &compiled,
                        ctx.costs(),
                        &options,
                        obs.clone(),
                    )
                    .map(Simulation::run)
                })?;
                let (stats, jsonl) = obs
                    .try_unwrap()
                    .expect("the finished simulation holds no observer clones");
                let events_written = jsonl.as_ref().map_or(0, JsonlObserver::events_written);
                drop(jsonl); // flushes the event log
                (result, stats, Some(events_path), events_written)
            } else {
                let options = SimOptions::at_capacity(kind, capacity).with_threads(ctx.threads());
                let (result, stats): (_, StatsObserver) = timing.time(kind.name(), || {
                    simulate_observed_sharded_compiled_traced(
                        &compiled,
                        ctx.costs(),
                        &options,
                        sink,
                    )
                })?;
                (result, stats, None, 0)
            };
            check(
                &result.strategy,
                "requests",
                stats.requests(),
                result.requests,
            )?;
            check(&result.strategy, "hits", stats.hits(), result.hits)?;
            check(
                &result.strategy,
                "pushed pages",
                stats.push_transfers(),
                result.traffic.pushed_pages,
            )?;
            check(
                &result.strategy,
                "pushed bytes",
                stats.registry().bytes("bytes.pushed"),
                result.traffic.pushed_bytes.as_u64(),
            )?;
            check(
                &result.strategy,
                "fetched bytes",
                stats.registry().bytes("bytes.fetched"),
                result.traffic.fetched_bytes.as_u64(),
            )?;
            rows.push(AuditRow {
                strategy: result.strategy,
                requests: result.requests,
                hits: result.hits,
                pushed_pages: result.traffic.pushed_pages,
                summary: stats.summary(),
                events_path,
                events_written,
            });
        }
        let audit = Self {
            trace,
            capacity,
            rows,
            timing,
        };
        let summary_path = dir.join("summary.txt");
        std::fs::write(&summary_path, audit.to_string()).map_err(|e| io_err(&summary_path, e))?;
        Ok(audit)
    }
}

impl fmt::Display for ObsAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "# decision audit: {} trace, capacity {:.0}%, SQ = 1\n",
            self.trace.name(),
            self.capacity * 100.0
        )?;
        for row in &self.rows {
            writeln!(f, "== {} ==", row.strategy)?;
            writeln!(
                f,
                "sim result: requests {}  hits {}  pushed_pages {}  (observer totals verified)",
                row.requests, row.hits, row.pushed_pages
            )?;
            if let Some(path) = &row.events_path {
                writeln!(
                    f,
                    "event log: {} ({} events)",
                    path.display(),
                    row.events_written
                )?;
            }
            writeln!(f, "{}", row.summary)?;
        }
        writeln!(f, "== timing ==")?;
        write!(f, "{}", self.timing.render())
    }
}

/// A filesystem-safe lowercase slug of a strategy name
/// (`"DC-LAP"` → `dc_lap`, `"GD*"` → `gdstar`).
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        match c {
            '*' => out.push_str("star"),
            c if c.is_ascii_alphanumeric() => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    out
}

fn check(strategy: &str, what: &str, observed: u64, simulated: u64) -> Result<(), ExperimentError> {
    if observed == simulated {
        Ok(())
    } else {
        Err(ExperimentError::ObserverMismatch {
            strategy: strategy.to_owned(),
            detail: format!("{what}: observer saw {observed}, simulation counted {simulated}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_filesystem_safe() {
        assert_eq!(slug("GD*"), "gdstar");
        assert_eq!(slug("DC-LAP"), "dc_lap");
        assert_eq!(slug("SG2"), "sg2");
        assert_eq!(slug("SUB"), "sub");
    }

    #[test]
    fn audit_writes_artifacts_and_totals_match() {
        let ctx = ExperimentContext::scaled(0.003).unwrap();
        let dir = std::env::temp_dir().join(format!("pscd_audit_{}", std::process::id()));
        let kinds = [
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sg2 { beta: 2.0 },
        ];
        let audit = ObsAudit::run(&ctx, &kinds, 0.05, &dir, true).unwrap();
        assert_eq!(audit.rows.len(), 2);
        for row in &audit.rows {
            assert!(row.requests > 0);
            assert!(row.events_written > 0);
            let log = std::fs::read_to_string(row.events_path.as_ref().unwrap()).unwrap();
            let lines: Vec<&str> = log.lines().collect();
            assert_eq!(lines.len(), row.events_written as usize);
            assert!(lines[0].starts_with("{\"seq\":0,"));
        }
        // SG2 pushes; its log must contain push events, GD*'s none.
        let sg2 = &audit.rows[1];
        assert!(sg2.pushed_pages > 0);
        let summary = std::fs::read_to_string(dir.join("summary.txt")).unwrap();
        assert!(summary.contains("== GD* =="));
        assert!(summary.contains("== SG2 =="));
        assert!(summary.contains("observer totals verified"));
        assert!(summary.contains("== timing =="));
        // Cold-path phase spans lead, one replay span per strategy follows.
        assert!(summary.contains("cold.generate.news"));
        assert!(summary.contains("cold.compile"));
        let labels: Vec<&str> = audit
            .timing
            .spans()
            .iter()
            .map(|(l, _)| l.as_str())
            .collect();
        assert_eq!(labels.last(), Some(&"SG2"));
        assert_eq!(labels.iter().filter(|l| !l.starts_with("cold.")).count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_audit_matches_serial_audit() {
        // Without --events the audit replays through the sharded runner;
        // its hard-checked totals must equal the serial tee run's.
        let serial_ctx = ExperimentContext::scaled(0.003).unwrap().with_threads(1);
        let sharded_ctx = ExperimentContext::scaled(0.003).unwrap().with_threads(4);
        let base = std::env::temp_dir().join(format!("pscd_audit_shard_{}", std::process::id()));
        let kinds = [StrategyKind::Sg2 { beta: 2.0 }, StrategyKind::Sub];
        let serial = ObsAudit::run(&serial_ctx, &kinds, 0.05, &base.join("serial"), false).unwrap();
        let sharded =
            ObsAudit::run(&sharded_ctx, &kinds, 0.05, &base.join("shard"), false).unwrap();
        assert_eq!(serial.rows.len(), sharded.rows.len());
        for (a, b) in serial.rows.iter().zip(&sharded.rows) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.pushed_pages, b.pushed_pages);
            assert!(b.events_path.is_none());
        }
        assert!(base.join("shard/summary.txt").exists());
        std::fs::remove_dir_all(&base).ok();
    }
}
