//! The committed perf-trajectory harness behind `repro bench`.
//!
//! Every PR that claims a performance win needs a number the next PR can
//! be compared against, so this module runs a **pinned suite** — hot-loop
//! ns/event for four representative strategies, the three cold-path
//! phases, the match kernel, and one end-to-end exhibit — and renders the
//! result as a schema'd JSON document (`BENCH_<pr>.json`) committed at
//! the repo root. Each benchmark reports the median, p10 and p90 of its
//! samples, plus the git sha and host shape the samples were taken on,
//! so deltas across PRs can be separated from host-to-host variance.
//!
//! The JSON is emitted and validated without any JSON dependency: the
//! emitter is hand-formatted (like the `jsonl` observer) and
//! [`validate_bench_json`] carries a minimal parser, which is what the
//! CI `bench-smoke` job runs against `repro bench --quick` output.

use std::time::Instant;

use pscd_core::StrategyKind;
use pscd_matching::{
    Content, FrozenIndex, MatchScratch, Predicate, Subscription, SubscriptionIndex, SymbolTable,
    Value,
};
use pscd_sim::trace::CompiledTrace;
use pscd_sim::{simulate_compiled, PrefetchOptions, ReplaySource, SimOptions, StreamingTrace};
use pscd_types::SimTime;
use pscd_workload::{Workload, WorkloadConfig};

use crate::{ExperimentContext, ExperimentError, Table2, Trace};

/// Schema identifier emitted in (and required of) every bench document.
pub const BENCH_SCHEMA: &str = "pscd-bench/1";

/// The PR this harness ships in; names the default output file
/// (`BENCH_10.json`).
pub const BENCH_PR: u32 = 10;

/// Minimum benchmarks a valid document must carry (the pinned suite has
/// sixteen; a shrunk document means the suite silently lost coverage).
pub const MIN_BENCHMARKS: usize = 8;

/// One benchmark's summarized samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Suite-pinned benchmark name (`hot_loop.sg2`, `cold.compile`, …).
    pub name: String,
    /// Unit of the three statistics (`ns/event`, `ms`, `Mmatch/s`).
    pub unit: String,
    /// Number of samples taken.
    pub samples: usize,
    /// Median sample.
    pub median: f64,
    /// 10th-percentile sample (nearest rank).
    pub p10: f64,
    /// 90th-percentile sample (nearest rank).
    pub p90: f64,
}

/// A full `repro bench` run: host/provenance header plus one
/// [`BenchRow`] per suite entry.
#[derive(Debug)]
pub struct BenchReport {
    /// `git rev-parse HEAD` at run time (`unknown` outside a checkout).
    pub git_sha: String,
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// The machine's available parallelism.
    pub threads: usize,
    /// Workload scale the suite ran at.
    pub scale: f64,
    /// Whether this was the CI quick mode.
    pub quick: bool,
    /// The suite results, in suite order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// Runs the pinned suite. `quick` shrinks the workload scale and the
    /// sample count for CI smoke coverage — same suite, same schema,
    /// smaller numbers.
    ///
    /// # Errors
    ///
    /// Propagates generation/simulation failures (none occur for the
    /// pinned configurations).
    pub fn run(quick: bool) -> Result<Self, ExperimentError> {
        let scale = if quick { 0.01 } else { 0.05 };
        let n = if quick { 2 } else { 5 };
        let mut rows = Vec::new();

        // Cold-path phases, measured serially regenerated per sample (the
        // auto thread count, like `repro` itself runs them).
        let config = WorkloadConfig::news_scaled(scale);
        rows.push(summarize(
            "cold.generate.news",
            "ms",
            sample(n, || {
                let t = Instant::now();
                Workload::generate_threads(&config, 0)?;
                Ok(millis(t))
            })?,
        ));
        let workload = Workload::generate_threads(&config, 0)?;
        rows.push(summarize(
            "cold.subscriptions",
            "ms",
            sample(n, || {
                let t = Instant::now();
                workload.subscriptions_threads(1.0, 0)?;
                Ok(millis(t))
            })?,
        ));
        let subs = workload.subscriptions_threads(1.0, 0)?;
        rows.push(summarize(
            "cold.compile",
            "ms",
            sample(n, || {
                let t = Instant::now();
                CompiledTrace::compile_threads(&workload, &subs, 0)?;
                Ok(millis(t))
            })?,
        ));

        // The streaming alternative to cold.compile: build the windowed
        // source and drain one full 24-hour-window pass (same compiled
        // events, O(window) resident), plus the peak window-buffer bytes
        // that bound its resident compile state.
        let window = SimTime::from_hours(24);
        rows.push(summarize(
            "cold.stream",
            "ms",
            sample(n, || {
                let t = Instant::now();
                let stream = StreamingTrace::new(&config, 1.0, window, 0)?;
                let mut pass = stream.open();
                while pass.next_window().is_some() {}
                Ok(millis(t))
            })?,
        ));
        // The pipelined streaming path: compile-ahead prefetcher
        // overlapping generation/compilation with the drain, measured at
        // depth 4 (the depth the perf trajectory tracks; the API default
        // is `DEFAULT_PREFETCH_DEPTH` = 2 — see EXPERIMENTS.md for the
        // depth sweep). Construction is inside the timer like
        // `cold.stream`, so the two rows price the same work end to end.
        rows.push(summarize(
            "cold.stream.pipelined",
            "ms",
            sample(n, || {
                let t = Instant::now();
                let stream = StreamingTrace::with_lookahead(&config, 1.0, window, 0, 4)?;
                stream.drain_prefetched(&PrefetchOptions::new(4));
                Ok(millis(t))
            })?,
        ));
        let stream = StreamingTrace::new(&config, 1.0, window, 0)?;
        rows.push(summarize(
            "cold.stream.peak_bytes",
            "MB",
            sample(n, || {
                let mut pass = stream.open();
                let mut peak = 0usize;
                while pass.next_window().is_some() {
                    peak = peak.max(pass.buffer_bytes());
                }
                Ok(peak as f64 / 1e6)
            })?,
        ));

        // Hot loop: sequential replay ns/event for four strategies that
        // cover the implementation families (access-only GD*, push-all
        // SUB, subscription-aware SG2, adaptive dual-cache DC-LAP).
        let ctx = ExperimentContext::scaled(scale)?;
        let compiled = ctx.compiled(Trace::News, 1.0)?;
        let events = compiled.len().max(1) as f64;
        for (name, kind) in [
            ("hot_loop.gdstar", StrategyKind::GdStar { beta: 2.0 }),
            ("hot_loop.sub", StrategyKind::Sub),
            ("hot_loop.sg2", StrategyKind::Sg2 { beta: 2.0 }),
            ("hot_loop.dc_lap", StrategyKind::dc_lap(2.0)),
        ] {
            let options = SimOptions::at_capacity(kind, 0.05);
            rows.push(summarize(
                name,
                "ns/event",
                sample(n, || {
                    let t = Instant::now();
                    simulate_compiled(&compiled, ctx.costs(), &options)?;
                    Ok(t.elapsed().as_nanos() as f64 / events)
                })?,
            ));
        }

        // Service mode sustained ingest: the same events the hot loop
        // replays, fed through the live front door (resolve + journal-less
        // inline apply) in 256-event batches.
        let live_events = workload.live_events(&subs);
        rows.push(summarize(
            "service.sustained_load",
            "kevent/s",
            sample(n, || {
                let service_config = pscd_service::ServiceConfig::new(
                    StrategyKind::Sg2 { beta: 2.0 },
                    compiled.capacities(0.05),
                    ctx.costs().iter().collect(),
                    pscd_broker::PushScheme::Always,
                    compiled.pages().iter().copied().collect(),
                    compiled.hours(),
                );
                let mut core = pscd_service::ServiceCore::new(service_config)?;
                let mut registry = pscd_obs::Registry::new();
                let report = pscd_service::run_load(
                    &mut core,
                    &live_events,
                    256,
                    &mut registry,
                    &pscd_obs::TraceSink::disabled(),
                )?;
                Ok(report.events_per_sec / 1e3)
            })?,
        ));

        // Match kernel throughput over a large equality+tag index (the
        // index is built once; samples time matching only).
        let (index, contents) = bench_index(if quick { 100_000 } else { 1_000_000 });
        rows.push(summarize(
            "match_kernel.count",
            "Mmatch/s",
            sample(n, || {
                let mut scratch = MatchScratch::new();
                let mut total = 0usize;
                let t = Instant::now();
                for content in &contents {
                    total += index.match_count_scratch(content, &mut scratch);
                }
                Ok(total as f64 / t.elapsed().as_secs_f64() / 1e6)
            })?,
        ));
        rows.push(summarize(
            "match_kernel.matches_into",
            "Mmatch/s",
            sample(n, || {
                let mut scratch = MatchScratch::new();
                let mut out = Vec::new();
                let mut total = 0usize;
                let t = Instant::now();
                for content in &contents {
                    index.matches_into(content, &mut scratch, &mut out);
                    total += out.len();
                }
                Ok(total as f64 / t.elapsed().as_secs_f64() / 1e6)
            })?,
        ));

        // Frozen kernel: one-time compile cost, then the same batch
        // through the interned-symbol/CSR/bitset fast path.
        rows.push(summarize(
            "match_kernel.freeze_build",
            "ms",
            sample(n, || {
                let t = Instant::now();
                let frozen = FrozenIndex::freeze(&index, &mut SymbolTable::new());
                let ms = millis(t);
                std::hint::black_box(frozen.len());
                Ok(ms)
            })?,
        ));
        let mut symbols = SymbolTable::new();
        let frozen = FrozenIndex::freeze(&index, &mut symbols);
        rows.push(summarize(
            "match_kernel.frozen",
            "Mmatch/s",
            sample(n, || {
                let mut scratch = MatchScratch::new();
                let mut out = Vec::new();
                let mut total = 0usize;
                let t = Instant::now();
                for content in &contents {
                    frozen.matches_into(&symbols, content, &mut scratch, &mut out);
                    total += out.len();
                }
                Ok(total as f64 / t.elapsed().as_secs_f64() / 1e6)
            })?,
        ));

        // End-to-end exhibit wall time (compiled traces pre-warmed above,
        // so this prices the replay grid, not the cold path).
        ctx.compiled(Trace::Alternative, 1.0)?;
        rows.push(summarize(
            "exhibit.table2",
            "ms",
            sample(n, || {
                let t = Instant::now();
                Table2::run(&ctx)?;
                Ok(millis(t))
            })?,
        ));

        Ok(Self {
            git_sha: git_sha(),
            os: std::env::consts::OS.to_owned(),
            arch: std::env::consts::ARCH.to_owned(),
            threads: std::thread::available_parallelism().map_or(1, usize::from),
            scale,
            quick,
            rows,
        })
    }

    /// Renders the report as the schema'd JSON document (one benchmark
    /// per line, trailing newline).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(512 + self.rows.len() * 128);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", BENCH_SCHEMA);
        let _ = writeln!(out, "  \"pr\": {},", BENCH_PR);
        let _ = writeln!(out, "  \"git_sha\": \"{}\",", escape(&self.git_sha));
        let _ = writeln!(
            out,
            "  \"host\": {{\"os\": \"{}\", \"arch\": \"{}\", \"threads\": {}}},",
            escape(&self.os),
            escape(&self.arch),
            self.threads
        );
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"benchmarks\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"samples\": {}, \
                 \"median\": {}, \"p10\": {}, \"p90\": {}}}",
                escape(&row.name),
                escape(&row.unit),
                row.samples,
                Num(row.median),
                Num(row.p10),
                Num(row.p90),
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A short human-readable table of the report (stdout of `repro bench`).
impl std::fmt::Display for BenchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "# bench: sha {} · {}/{} · {} threads · scale {}{}",
            &self.git_sha[..self.git_sha.len().min(12)],
            self.os,
            self.arch,
            self.threads,
            self.scale,
            if self.quick { " · quick" } else { "" }
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<28} {:>12.3} {:<9} (p10 {:.3}, p90 {:.3}, n={})",
                row.name, row.median, row.unit, row.p10, row.p90, row.samples
            )?;
        }
        Ok(())
    }
}

fn millis(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn sample(
    n: usize,
    mut f: impl FnMut() -> Result<f64, ExperimentError>,
) -> Result<Vec<f64>, ExperimentError> {
    (0..n.max(1)).map(|_| f()).collect()
}

/// Collapses samples into a row: nearest-rank p10/median/p90 over the
/// sorted values.
fn summarize(name: &str, unit: &str, mut samples: Vec<f64>) -> BenchRow {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let q = |q: f64| samples[((q * (samples.len() - 1) as f64).round()) as usize];
    BenchRow {
        name: name.to_owned(),
        unit: unit.to_owned(),
        samples: samples.len(),
        median: q(0.5),
        p10: q(0.1),
        p90: q(0.9),
    }
}

/// A large equality+tag subscription index (the shape of the criterion
/// `cold_match_1m_subs` bench) plus a fixed content batch.
fn bench_index(subs: usize) -> (SubscriptionIndex, Vec<Content>) {
    const CATEGORIES: usize = 2_000;
    let categories: Vec<String> = (0..CATEGORIES).map(|i| format!("cat{i}")).collect();
    let mut index = SubscriptionIndex::new();
    for i in 0..subs {
        let cat = &categories[i % CATEGORIES];
        let sub = if i % 10 == 0 {
            Subscription::new(vec![
                Predicate::eq("category", Value::str(cat)),
                Predicate::contains("tags", "breaking"),
            ])
        } else {
            Subscription::new(vec![Predicate::eq("category", Value::str(cat))])
        };
        index.insert(sub);
    }
    let contents = (0..64usize)
        .map(|i| {
            Content::new()
                .with("category", Value::str(&categories[(i * 31) % CATEGORIES]))
                .with(
                    "tags",
                    Value::tags(if i % 2 == 0 { ["breaking"] } else { ["local"] }),
                )
        })
        .collect();
    (index, contents)
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// A float rendered as JSON (finite, shortest-ish form with three
/// decimals of precision).
struct Num(f64);

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.0.is_finite() {
            return write!(f, "0");
        }
        if self.0 == self.0.trunc() && self.0.abs() < 1e15 {
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{:.3}", self.0)
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// Validation: a minimal JSON reader (no dependency) plus the schema
// checks the CI bench-smoke job runs.

/// A parsed JSON value (just enough for validation).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn document(&mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing data"));
        }
        Ok(v)
    }
}

/// Validates a `BENCH_*.json` document against the `pscd-bench/1`
/// schema. Returns the number of benchmarks on success and the first
/// problem found otherwise — the contract the CI `bench-smoke` job
/// enforces on `repro bench --quick` output.
///
/// # Errors
///
/// Returns a description of the first malformation: unparseable JSON,
/// wrong/missing schema marker, missing provenance fields, fewer than
/// [`MIN_BENCHMARKS`] benchmarks, or a benchmark row with missing or
/// non-finite statistics (including `p10 > median` / `median > p90`).
pub fn validate_bench_json(text: &str) -> Result<usize, String> {
    let doc = Parser::new(text).document()?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema is {schema:?}, want {BENCH_SCHEMA:?}"));
    }
    doc.get("pr")
        .and_then(Json::as_num)
        .filter(|n| *n >= 1.0)
        .ok_or("missing numeric \"pr\"")?;
    let sha = doc
        .get("git_sha")
        .and_then(Json::as_str)
        .ok_or("missing \"git_sha\"")?;
    if sha.is_empty() {
        return Err("empty git_sha".to_owned());
    }
    let host = doc.get("host").ok_or("missing \"host\"")?;
    for key in ["os", "arch"] {
        host.get(key)
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("missing host.{key}"))?;
    }
    host.get("threads")
        .and_then(Json::as_num)
        .filter(|n| *n >= 1.0)
        .ok_or("missing host.threads")?;
    let Some(Json::Arr(rows)) = doc.get("benchmarks") else {
        return Err("missing \"benchmarks\" array".to_owned());
    };
    if rows.len() < MIN_BENCHMARKS {
        return Err(format!(
            "only {} benchmarks, want at least {MIN_BENCHMARKS}",
            rows.len()
        ));
    }
    for (i, row) in rows.iter().enumerate() {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("benchmark {i}: missing name"))?;
        row.get("unit")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("{name}: missing unit"))?;
        row.get("samples")
            .and_then(Json::as_num)
            .filter(|n| *n >= 1.0)
            .ok_or_else(|| format!("{name}: missing samples"))?;
        let stat = |key: &str| {
            row.get(key)
                .and_then(Json::as_num)
                .filter(|n| n.is_finite())
                .ok_or_else(|| format!("{name}: missing finite {key}"))
        };
        let (median, p10, p90) = (stat("median")?, stat("p10")?, stat("p90")?);
        if p10 > median || median > p90 {
            // Name the tolerance band, not just the mismatch: the median
            // must sit inside [p10, p90] for the row to be coherent.
            return Err(format!(
                "{name}: median {median} outside its tolerance band [p10 {p10}, p90 {p90}] \
                 (quantiles must satisfy p10 <= median <= p90)"
            ));
        }
    }
    Ok(rows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> BenchReport {
        BenchReport {
            git_sha: "abc123".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            threads: 4,
            scale: 0.01,
            quick: true,
            rows: (0..MIN_BENCHMARKS)
                .map(|i| BenchRow {
                    name: format!("bench.{i}"),
                    unit: "ms".into(),
                    samples: 3,
                    median: 2.0 + i as f64,
                    p10: 1.0,
                    p90: 30.5,
                })
                .collect(),
        }
    }

    #[test]
    fn emitted_json_validates_round_trip() {
        let report = fake_report();
        let json = report.to_json();
        assert_eq!(validate_bench_json(&json), Ok(MIN_BENCHMARKS));
        assert!(json.contains("\"schema\": \"pscd-bench/1\""));
        assert!(json.contains("\"name\": \"bench.0\""));
        let text = report.to_string();
        assert!(text.contains("bench.0"));
        assert!(text.contains("abc123"));
    }

    #[test]
    fn validator_rejects_malformations() {
        let ok = fake_report().to_json();
        assert!(validate_bench_json("not json").is_err());
        assert!(validate_bench_json("{}").unwrap_err().contains("schema"));
        assert!(validate_bench_json(&ok.replace("pscd-bench/1", "other/9")).is_err());
        // A quantile violation names the tolerance band and the value
        // that fell outside it, not just a bare mismatch.
        let band =
            validate_bench_json(&ok.replace("\"median\": 2.0", "\"median\": 0.5")).unwrap_err();
        assert!(band.contains("tolerance band"), "{band}");
        assert!(band.contains("[p10 1"), "{band}");
        assert!(band.contains("median 0.5"), "{band}");
        let mut few = fake_report();
        few.rows.truncate(2);
        assert!(validate_bench_json(&few.to_json())
            .unwrap_err()
            .contains("benchmarks"));
        // Trailing garbage is malformed, not silently accepted.
        assert!(validate_bench_json(&format!("{ok}]")).is_err());
    }

    #[test]
    fn summarize_orders_quantiles() {
        let row = summarize("x", "ms", vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(row.median, 3.0);
        assert_eq!(row.p10, 1.0);
        assert_eq!(row.p90, 5.0);
        assert_eq!(row.samples, 5);
        let single = summarize("y", "ms", vec![7.0]);
        assert_eq!((single.p10, single.median, single.p90), (7.0, 7.0, 7.0));
    }

    #[test]
    fn quick_suite_runs_and_validates() {
        let report = BenchReport::run(true).unwrap();
        assert!(report.rows.len() >= MIN_BENCHMARKS);
        assert!(report.quick);
        let json = report.to_json();
        let n = validate_bench_json(&json).unwrap();
        assert_eq!(n, report.rows.len());
        for row in &report.rows {
            assert!(row.median.is_finite() && row.median >= 0.0, "{}", row.name);
            assert!(
                row.p10 <= row.median && row.median <= row.p90,
                "{}",
                row.name
            );
        }
        // The pinned suite names stay pinned — the trajectory depends on
        // cross-PR comparability.
        let names: Vec<&str> = report.rows.iter().map(|r| r.name.as_str()).collect();
        for expected in [
            "cold.generate.news",
            "cold.subscriptions",
            "cold.compile",
            "cold.stream",
            "cold.stream.pipelined",
            "cold.stream.peak_bytes",
            "service.sustained_load",
            "hot_loop.gdstar",
            "hot_loop.sub",
            "hot_loop.sg2",
            "hot_loop.dc_lap",
            "match_kernel.count",
            "match_kernel.matches_into",
            "match_kernel.freeze_build",
            "match_kernel.frozen",
            "exhibit.table2",
        ] {
            assert!(names.contains(&expected), "suite lost {expected}");
        }
    }
}
