//! Table 2: relative improvement over GD\* at the 5% capacity setting.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    run_grid_threads, signed_pct, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA,
};

/// The strategies Table 2 reports, in column order.
fn lineup(beta: f64) -> Vec<StrategyKind> {
    vec![
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta },
        StrategyKind::Sg2 { beta },
        StrategyKind::Sr,
        StrategyKind::Dm { beta },
        StrategyKind::dc_fp(beta),
        StrategyKind::dc_lap(beta),
    ]
}

/// Table 2 of the paper: for each trace (α = 1.5 and α = 1.0), the
/// relative hit-ratio improvement (%) of every subscription-aware strategy
/// over the GD\* baseline, at 5% capacity and SQ = 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// `(trace, [(strategy, improvement %)])` rows.
    pub rows: Vec<(Trace, Vec<(String, f64)>)>,
    /// Baseline GD\* hit ratios per trace (for reference).
    pub baselines: Vec<(Trace, f64)>,
}

impl Table2 {
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let mut rows = Vec::new();
        let mut baselines = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let mut kinds = vec![StrategyKind::GdStar { beta: PAPER_BETA }];
            kinds.extend(lineup(PAPER_BETA));
            let jobs: Vec<_> = kinds
                .iter()
                .map(|&kind| (&*compiled, SimOptions::at_capacity(kind, 0.05)))
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            let baseline = &results[0];
            baselines.push((trace, baseline.hit_ratio()));
            rows.push((
                trace,
                results[1..]
                    .iter()
                    .map(|r| (r.strategy.clone(), r.relative_improvement_percent(baseline)))
                    .collect(),
            ));
        }
        Ok(Self { rows, baselines })
    }

    /// Improvement of one strategy on one trace, in percent.
    pub fn improvement(&self, trace: Trace, strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, _)| *t == trace)
            .and_then(|(_, cells)| {
                cells
                    .iter()
                    .find(|(name, _)| name == strategy)
                    .map(|&(_, v)| v)
            })
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Table 2: relative improvement over GD* (%) (capacity = 5%, SQ = 1)\n"
        )?;
        let names: Vec<String> = self
            .rows
            .first()
            .map(|(_, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let mut headers = vec!["α".to_owned()];
        headers.extend(names);
        let mut table = TextTable::new(headers);
        for (trace, cells) in &self.rows {
            let mut row = vec![format!("{}", trace.alpha())];
            row.extend(cells.iter().map(|&(_, v)| signed_pct(v)));
            table.add_row(row);
        }
        writeln!(f, "{table}")?;
        for (trace, h) in &self.baselines {
            writeln!(f, "GD* baseline on {}: {:.1}%", trace.name(), 100.0 * h)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvements_larger_for_alternative() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let t = Table2::run(&ctx).unwrap();
        assert_eq!(t.rows.len(), 2);
        // The paper's key observation: gains are much larger for α = 1.0.
        // At this tiny scale the GD* baseline is only a handful of hits,
        // so the two improvements land within a few percent of each other
        // and their order is sampling noise — assert near-parity here and
        // leave the strict ordering to the larger-scale shape tests in
        // tests/paper_shapes.rs.
        for name in ["SG1", "SG2", "DC-LAP"] {
            let news = t.improvement(Trace::News, name).unwrap();
            let alt = t.improvement(Trace::Alternative, name).unwrap();
            assert!(alt > 0.9 * news, "{name}: ALT {alt} far below NEWS {news}");
            assert!(alt > 0.0);
        }
        assert!(t.improvement(Trace::News, "missing").is_none());
        let rendered = t.to_string();
        assert!(rendered.contains("Table 2"));
        assert!(rendered.contains("GD* baseline"));
    }
}
