//! Prints descriptive statistics of a generated workload — a quick sanity
//! check of the trace against the paper's §4 parameters.
//!
//! ```text
//! cargo run --release -p pscd-experiments --bin workload-stats -- \
//!     [news|alternative] [--scale F] [--seed N] [--export DIR]
//! ```
//!
//! `--export DIR` writes the trace in the TSV format of
//! [`pscd_workload::io`] (pages.tsv, requests.tsv, subscriptions.tsv).

use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

use pscd_obs::Registry;
use pscd_workload::{popularity_class_shifted, Workload, WorkloadConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace = "news".to_owned();
    let mut scale = 1.0f64;
    let mut seed = 0u64;
    let mut export: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..=1.0).contains(&v) && v > 0.0 => scale = v,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--export" => match it.next() {
                Some(dir) => export = Some(dir.into()),
                None => return usage(),
            },
            "news" | "alternative" => trace = arg.clone(),
            _ => return usage(),
        }
    }
    let config = match trace.as_str() {
        "news" => WorkloadConfig::news_scaled(scale),
        _ => WorkloadConfig::alternative_scaled(scale),
    }
    .with_seed(seed);
    let workload = match Workload::generate(&config) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_stats(&workload, &trace);
    if let Some(dir) = export {
        if let Err(e) = export_tsv(&workload, &dir) {
            eprintln!("export failed: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "
exported TSV traces to {}",
            dir.display()
        );
    }
    ExitCode::SUCCESS
}

fn export_tsv(w: &Workload, dir: &std::path::Path) -> Result<(), Box<dyn std::error::Error>> {
    use pscd_workload::io as trace_io;
    use std::io::BufWriter;
    std::fs::create_dir_all(dir)?;
    let file = |name: &str| -> Result<BufWriter<std::fs::File>, std::io::Error> {
        Ok(BufWriter::new(std::fs::File::create(dir.join(name))?))
    };
    trace_io::write_pages(file("pages.tsv")?, w.pages())?;
    trace_io::write_requests(file("requests.tsv")?, w.requests())?;
    trace_io::write_subscriptions(file("subscriptions.tsv")?, &w.subscriptions(1.0)?)?;
    Ok(())
}

fn usage() -> ExitCode {
    eprintln!("usage: workload-stats [news|alternative] [--scale F] [--seed N] [--export DIR]");
    ExitCode::FAILURE
}

fn print_stats(w: &Workload, trace: &str) {
    let mut reg = Registry::new();
    let pages = w.pages();
    let alpha = w.config().requests.zipf_alpha;
    let shift = w.config().requests.zipf_shift;
    println!(
        "trace: {trace} (alpha = {alpha}, shift = {shift}, seed = {})",
        w.config().seed
    );

    // Publishing stream.
    let originals = pages.iter().filter(|p| p.kind().is_original()).count();
    let origins: HashSet<_> = pages.iter().filter_map(|p| p.kind().origin()).collect();
    println!("\n# publishing stream");
    println!("pages:            {}", pages.len());
    println!("originals:        {originals}");
    println!(
        "modified:         {} (from {} updated articles)",
        pages.len() - originals,
        origins.len()
    );
    let mut sizes: Vec<u64> = reg.time("scan.stream", || {
        pages.iter().map(|p| p.size().as_u64()).collect()
    });
    sizes.sort_unstable();
    let pct = |q: f64| sizes[((sizes.len() - 1) as f64 * q) as usize];
    println!(
        "page size:        p10 {}  p50 {}  p90 {}  p99 {}  max {}",
        pct(0.10),
        pct(0.50),
        pct(0.90),
        pct(0.99),
        sizes[sizes.len() - 1]
    );

    // Request stream.
    let requests = w.requests();
    let mut per_page: HashMap<u32, u64> = HashMap::new();
    let mut pairs: HashSet<(u32, u16)> = HashSet::new();
    reg.time("scan.stream", || {
        for ev in requests {
            *per_page.entry(ev.page.index()).or_default() += 1;
            pairs.insert((ev.page.index(), ev.server.index()));
        }
    });
    let mut counts: Vec<u64> = per_page.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    println!("\n# request stream");
    println!("requests:         {}", requests.len());
    println!("distinct pages:   {}", per_page.len());
    println!("(page,server):    {} pairs", pairs.len());
    println!("top pages:        {:?}", &counts[..counts.len().min(5)]);
    let total: u64 = counts.iter().sum();
    let top10: u64 = counts.iter().take(counts.len().div_ceil(10)).sum();
    println!(
        "head share:       top-10% of requested pages serve {:.1}% of requests",
        100.0 * top10 as f64 / total as f64
    );
    // Popularity classes (per the generator's rank assignment model).
    let mut class_pages = [0usize; 4];
    for rank in 1..=pages.len() {
        class_pages[popularity_class_shifted(rank, alpha, shift)] += 1;
    }
    println!("class sizes:      {class_pages:?} (by rank, classes 0-3)");

    // Subscriptions at SQ = 1.
    let subs = reg
        .time("subscriptions", || w.subscriptions(1.0))
        .expect("SQ = 1 is valid");
    let total_subs: u64 = subs.iter().map(|(_, _, c)| c as u64).sum();
    println!("\n# subscriptions (SQ = 1)");
    println!("pairs:            {}", subs.iter().count());
    println!("total count:      {total_subs}");

    // The same trace folded through the observability registry: the log₂
    // histograms show the size and popularity shapes at a glance.
    reg.add("pages.total", pages.len() as u64);
    reg.add("pages.originals", originals as u64);
    reg.add("requests.total", requests.len() as u64);
    reg.add("requests.distinct_pages", per_page.len() as u64);
    reg.add("subscriptions.pairs", subs.iter().count() as u64);
    reg.add("subscriptions.count", total_subs);
    for p in pages {
        reg.observe("page_size", p.size().as_f64());
        reg.add_bytes("bytes.published", p.size());
    }
    for &count in per_page.values() {
        reg.observe("requests_per_page", count as f64);
    }
    println!("\n# registry (log2 buckets)");
    print!("{}", reg.render());

    // Aggregated phase timings: the two stream scans share one label, so
    // the rolled-up view shows the total with its repeat count.
    println!("\n# phase totals");
    for (label, total, count) in reg.span_totals() {
        println!("{label:<18} {total:>10.3?}  (x{count})");
    }

    // Capacity settings.
    println!("\n# per-proxy cache capacities");
    for frac in [0.01, 0.05, 0.10] {
        let caps = w.cache_capacities(frac);
        let mut vals: Vec<u64> = caps.iter().map(|b| b.as_u64()).collect();
        vals.sort_unstable();
        println!(
            "{:>4.0}%: median {}  min {}  max {}",
            frac * 100.0,
            pscd_types::Bytes::new(vals[vals.len() / 2]),
            pscd_types::Bytes::new(vals[0]),
            pscd_types::Bytes::new(vals[vals.len() - 1]),
        );
    }
}
