//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release --bin repro -- all          # everything, paper scale
//! cargo run --release --bin repro -- fig4         # one exhibit
//! cargo run --release --bin repro -- table2 --scale 0.05
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pscd_core::StrategyKind;
use pscd_experiments::{
    validate_bench_json, BenchReport, BetaSweep, ClassicBaselines, CoverageSweep, CrashRecovery,
    ExperimentContext, ExperimentError, Fig3, Fig4, Fig5, Fig6, Fig7, InvalidationStudy,
    LapBoundsSweep, ObsAudit, PartitionSweep, ShiftSensitivity, Table2, ToCsv, Trace,
    VarianceStudy, BENCH_PR, PAPER_BETA,
};
use pscd_obs::{render_chrome_trace, NullObserver, SpanEvent, TraceSink};
use pscd_sim::{
    simulate_observed_sharded_compiled_traced, simulate_streamed, simulate_streamed_prefetched,
    PrefetchOptions, SimOptions, StreamingTrace,
};
use pscd_topology::{FetchCosts, TopologyBuilder};
use pscd_types::SimTime;
use pscd_workload::ScenarioConfig;

const USAGE: &str = "usage: repro <beta|fig3|fig4|table2|fig5|fig6|fig7|classic|lap-bounds|partition|coverage|shift|crash|invalidation|variance|ablations|all> [--scale FRACTION] [--threads N] [--stream-window HOURS [--prefetch N]] [--csv DIR] [--obs-dir DIR [--events]] [--trace FILE]\n       repro scenario <list|NAME|FILE> [--stream-window HOURS] [--prefetch N] [--threads N]\n       repro bench [--quick] [--out FILE] [--check FILE]\n       repro serve --load [--scale FRACTION] [--threads N] [--batch N] [--dir DIR [--snapshot-every K]]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exhibit = None;
    let mut scale = 1.0f64;
    let mut threads = 0usize; // 0 = auto
    let mut csv_dir: Option<PathBuf> = None;
    let mut obs_dir: Option<PathBuf> = None;
    let mut trace_file: Option<PathBuf> = None;
    let mut events = false;
    let mut quick = false;
    let mut bench_out: Option<PathBuf> = None;
    let mut bench_check: Option<PathBuf> = None;
    let mut load = false;
    let mut stream_window: Option<u64> = None;
    let mut prefetch: Option<usize> = None;
    let mut scenario_arg: Option<String> = None;
    let mut batch = 256usize;
    let mut snapshot_every = 0u64;
    let mut serve_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale = v,
                _ => {
                    eprintln!("--scale needs a fraction in (0, 1]");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads needs a worker count (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => match it.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--csv needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--obs-dir" => match it.next() {
                Some(dir) => obs_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--obs-dir needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--trace" => match it.next() {
                Some(path) => trace_file = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--trace needs an output file (Chrome trace-event JSON)");
                    return ExitCode::FAILURE;
                }
            },
            "--stream-window" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(h) if h > 0 => stream_window = Some(h),
                _ => {
                    eprintln!("--stream-window needs a positive window length in hours");
                    return ExitCode::FAILURE;
                }
            },
            "--prefetch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(d) if d > 0 => prefetch = Some(d),
                _ => {
                    eprintln!("--prefetch needs a positive compile-ahead depth in windows");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => events = true,
            "--quick" => quick = true,
            "--load" => load = true,
            "--batch" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => {
                    eprintln!("--batch needs a positive ingest batch size");
                    return ExitCode::FAILURE;
                }
            },
            "--snapshot-every" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(k) => snapshot_every = k,
                None => {
                    eprintln!("--snapshot-every needs an event count (0 = never)");
                    return ExitCode::FAILURE;
                }
            },
            "--dir" => match it.next() {
                Some(dir) => serve_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--dir needs a directory for the journal and snapshots");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(path) => bench_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out needs an output file");
                    return ExitCode::FAILURE;
                }
            },
            "--check" => match it.next() {
                Some(path) => bench_check = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--check needs a BENCH_*.json file to validate");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            name if exhibit.is_none() => exhibit = Some(name.to_owned()),
            name if exhibit.as_deref() == Some("scenario") && scenario_arg.is_none() => {
                scenario_arg = Some(name.to_owned())
            }
            other => {
                eprintln!("unexpected argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(exhibit) = exhibit else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if events && obs_dir.is_none() {
        eprintln!("--events requires --obs-dir\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if prefetch.is_some() && stream_window.is_none() && exhibit != "scenario" {
        // Scenario runs always stream (24 h default window); exhibit runs
        // only stream when asked, so compile-ahead needs the window first.
        eprintln!("--prefetch requires --stream-window\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if exhibit == "bench" {
        return run_bench(quick, bench_out.as_deref(), bench_check.as_deref());
    }
    if exhibit == "scenario" {
        let Some(arg) = scenario_arg else {
            eprintln!("scenario needs <list|NAME|FILE>\n{USAGE}");
            return ExitCode::FAILURE;
        };
        return match run_scenario(&arg, threads, stream_window, prefetch) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if exhibit == "serve" {
        if !load {
            eprintln!(
                "serve has no network listener yet; run the seeded load generator with --load\n{USAGE}"
            );
            return ExitCode::FAILURE;
        }
        return match run_serve(scale, threads, batch, snapshot_every, serve_dir.as_deref()) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let outputs = Outputs {
        csv_dir: csv_dir.as_deref(),
        obs_dir: obs_dir.as_deref(),
        trace_file: trace_file.as_deref(),
        events,
    };
    match run(&exhibit, scale, threads, stream_window, prefetch, &outputs) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("unknown exhibit: {exhibit}\n{USAGE}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro bench`: run the pinned perf suite and write `BENCH_<pr>.json`,
/// or — with `--check FILE` — just validate an existing document against
/// the schema (the CI bench-smoke contract).
fn run_bench(
    quick: bool,
    out: Option<&std::path::Path>,
    check: Option<&std::path::Path>,
) -> ExitCode {
    if let Some(path) = check {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        return match validate_bench_json(&text) {
            Ok(n) => {
                println!("{}: valid ({n} benchmarks)", path.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}: INVALID: {e}", path.display());
                ExitCode::FAILURE
            }
        };
    }
    eprintln!(
        "running pinned bench suite ({}) …",
        if quick { "quick" } else { "full" }
    );
    let report = match BenchReport::run(quick) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{report}");
    let default = PathBuf::from(format!("BENCH_{BENCH_PR}.json"));
    let path = out.unwrap_or(&default);
    let json = report.to_json();
    if let Err(e) = validate_bench_json(&json) {
        eprintln!("internal error: emitted JSON fails its own schema: {e}");
        return ExitCode::FAILURE;
    }
    match std::fs::write(path, json) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            ExitCode::FAILURE
        }
    }
}

/// `repro serve --load`: stand up the live broker service on the seeded
/// news workload and drive every event through its front door, printing
/// sustained throughput, batch latency quantiles, and the final
/// accounting (which matches a batch replay bit-for-bit — the
/// `service_differential` suite holds that equivalence).
fn run_serve(
    scale: f64,
    threads: usize,
    batch: usize,
    snapshot_every: u64,
    dir: Option<&std::path::Path>,
) -> Result<(), ExperimentError> {
    eprintln!("generating workloads (scale = {scale}) …");
    let ctx = ExperimentContext::scaled_threads(scale, 0)?;
    let compiled = ctx.compiled(Trace::News, 1.0)?;
    let subs = ctx.subscriptions(Trace::News, 1.0)?;
    let events = ctx.workload(Trace::News).live_events(&subs);
    let kind = StrategyKind::Sg2 { beta: PAPER_BETA };
    let mut config = pscd_service::ServiceConfig::new(
        kind,
        compiled.capacities(0.05),
        ctx.costs().iter().collect(),
        pscd_broker::PushScheme::Always,
        compiled.pages().iter().copied().collect(),
        compiled.hours(),
    )
    .with_workers(threads)
    .with_batch_size(batch);
    if let Some(dir) = dir {
        config = config.with_persistence(dir.to_path_buf(), snapshot_every);
        eprintln!(
            "journaling to {} (snapshot every {} events)",
            dir.display(),
            if snapshot_every == 0 {
                "∞".to_owned()
            } else {
                snapshot_every.to_string()
            }
        );
    }
    let mut core = pscd_service::ServiceCore::new(config)?;
    eprintln!(
        "serving {} as {} events arrive in batches of {batch} …",
        kind.name(),
        events.len()
    );
    let mut registry = pscd_obs::Registry::new();
    let report = pscd_service::run_load(
        &mut core,
        &events,
        batch,
        &mut registry,
        &TraceSink::disabled(),
    )?;
    let outcome = core.shutdown()?;
    let result = &outcome.result;
    let hit_rate = if result.requests > 0 {
        result.hits as f64 / result.requests as f64
    } else {
        0.0
    };
    println!(
        "ingested {} events in {} batches over {:.2} s",
        report.events, report.batches, report.elapsed_secs
    );
    println!(
        "sustained {:.0} events/s (batch latency p50 {:.1} µs, p99 {:.1} µs)",
        report.events_per_sec, report.batch_micros_p50, report.batch_micros_p99
    );
    println!(
        "requests {}  hits {}  hit rate {:.4}  pushed {} pages  fetched {} pages",
        result.requests,
        result.hits,
        hit_rate,
        result.traffic.pushed_pages,
        result.traffic.fetched_pages
    );
    Ok(())
}

/// `repro scenario`: the config-driven workload library. `list` prints
/// the shipped scenarios; a name (or a path to a scenario text file)
/// builds the workload through the streaming compiler and replays the
/// figure-4 lineup on it at the paper's middle capacity.
fn run_scenario(
    arg: &str,
    threads: usize,
    stream_window: Option<u64>,
    prefetch: Option<usize>,
) -> Result<(), ExperimentError> {
    if arg == "list" {
        println!("shipped scenarios:");
        for s in ScenarioConfig::shipped() {
            let config = s.workload_config()?;
            println!(
                "  {:<14} seed {}  {} pages  {} requests  {} days",
                s.name,
                s.seed,
                config.publishing.total_pages,
                config.requests.total_requests,
                s.horizon_days
            );
        }
        return Ok(());
    }
    let scenario = match ScenarioConfig::shipped_by_name(arg) {
        Some(s) => s,
        None => {
            let text = std::fs::read_to_string(arg)
                .map_err(|e| ExperimentError::Io(format!("{arg}: {e}")))?;
            ScenarioConfig::from_text(&text)
                .map_err(|e| ExperimentError::Io(format!("{arg}: {e}")))?
        }
    };
    let window = SimTime::from_hours(stream_window.unwrap_or(24));
    eprintln!(
        "building scenario \"{}\" through {}-hour streaming windows{} …",
        scenario.name,
        window.as_millis() / SimTime::from_hours(1).as_millis(),
        match prefetch {
            Some(d) => format!(" (compile-ahead depth {d})"),
            None => String::new(),
        }
    );
    let stream = match prefetch {
        Some(d) => {
            StreamingTrace::from_scenario_with_lookahead(&scenario, 1.0, window, threads, d)?
        }
        None => StreamingTrace::from_scenario(&scenario, 1.0, window, threads)?,
    };
    let meta = stream.meta();
    println!(
        "scenario {}: {} pages, {} publishes, {} requests, {} proxies, {} windows, digest {:016x}",
        scenario.name,
        meta.pages().len(),
        meta.publish_count(),
        meta.request_count(),
        meta.server_count(),
        stream.window_count(),
        scenario.digest()?
    );
    let topo = TopologyBuilder::new(meta.server_count() as usize + 1)
        .seed(42)
        .build()?;
    let costs = FetchCosts::from_topology(&topo, 0)?;
    println!(
        "{:<8} {:>9} {:>12} {:>13}",
        "strategy", "hit rate", "pushed pages", "fetched pages"
    );
    for kind in StrategyKind::figure4_lineup(PAPER_BETA) {
        let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
        let result = match prefetch {
            Some(d) => {
                simulate_streamed_prefetched(&stream, &costs, &options, &PrefetchOptions::new(d))?
            }
            None => simulate_streamed(&stream, &costs, &options)?,
        };
        let hit_rate = if result.requests > 0 {
            result.hits as f64 / result.requests as f64
        } else {
            0.0
        };
        println!(
            "{:<8} {:>9.4} {:>12} {:>13}",
            kind.name(),
            hit_rate,
            result.traffic.pushed_pages,
            result.traffic.fetched_pages
        );
    }
    Ok(())
}

/// Where an exhibit run writes besides stdout: CSV exports, observer
/// audits (with or without the per-decision event log), chrome traces.
struct Outputs<'a> {
    csv_dir: Option<&'a std::path::Path>,
    obs_dir: Option<&'a std::path::Path>,
    trace_file: Option<&'a std::path::Path>,
    events: bool,
}

fn run(
    exhibit: &str,
    scale: f64,
    threads: usize,
    stream_window: Option<u64>,
    prefetch: Option<usize>,
    outputs: &Outputs<'_>,
) -> Result<bool, ExperimentError> {
    let &Outputs {
        csv_dir,
        obs_dir,
        trace_file,
        events,
    } = outputs;
    let sink = if trace_file.is_some() {
        TraceSink::enabled()
    } else {
        TraceSink::disabled()
    };
    if let Some(epoch) = sink.epoch() {
        // Collect the worker pool's per-task spans against the same epoch
        // so cold-path fan-outs and grid cells land on the timeline too.
        pscd_sim::pool::spans::enable(epoch);
    }
    eprintln!("generating workloads (scale = {scale}) …");
    let mut ctx = ExperimentContext::scaled_threads_traced(scale, threads, sink.clone())?;
    if let Some(hours) = stream_window {
        match prefetch {
            Some(depth) => {
                eprintln!(
                    "compiling traces through {hours}-hour streaming windows \
                     (pipelined, compile-ahead depth {depth}) …"
                );
                ctx = ctx
                    .with_stream_window(SimTime::from_hours(hours))
                    .with_prefetch(depth);
            }
            None => {
                eprintln!("compiling traces through {hours}-hour streaming windows …");
                ctx = ctx.with_stream_window(SimTime::from_hours(hours));
            }
        }
    }
    let all = exhibit == "all";
    let mut known = all;
    let emit = |result: &dyn ToCsv| {
        let Some(dir) = csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return;
        }
        for (name, content) in result.to_csv() {
            let path = dir.join(&name);
            match std::fs::write(&path, content) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    };
    if all || exhibit == "beta" {
        known = true;
        eprintln!("running β sweep (126 simulations) …");
        let result = BetaSweep::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "fig3" {
        known = true;
        eprintln!("running figure 3 …");
        let result = Fig3::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "fig4" {
        known = true;
        eprintln!("running figure 4 …");
        let result = Fig4::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "table2" {
        known = true;
        eprintln!("running table 2 …");
        let result = Table2::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "fig5" {
        known = true;
        eprintln!("running figure 5 …");
        let result = Fig5::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "fig6" {
        known = true;
        eprintln!("running figure 6 …");
        let result = Fig6::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || exhibit == "fig7" {
        known = true;
        eprintln!("running figure 7 …");
        let result = Fig7::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    let ablations = exhibit == "ablations";
    if all || ablations || exhibit == "classic" {
        known = true;
        eprintln!("running classic-baseline ablation …");
        let result = ClassicBaselines::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || ablations || exhibit == "lap-bounds" {
        known = true;
        eprintln!("running DC-LAP bounds ablation …");
        let result = LapBoundsSweep::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || ablations || exhibit == "partition" {
        known = true;
        eprintln!("running DC-FP partition ablation …");
        let result = PartitionSweep::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || ablations || exhibit == "coverage" {
        known = true;
        eprintln!("running notification-coverage extension …");
        let result = CoverageSweep::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || ablations || exhibit == "crash" {
        known = true;
        eprintln!("running crash-recovery extension …");
        let result = CrashRecovery::run(&ctx)?;
        println!("{result}");
        emit(&result);
    }
    if all || ablations || exhibit == "invalidation" {
        known = true;
        eprintln!("running stale-version invalidation extension …");
        println!("{}", InvalidationStudy::run(&ctx)?);
    }
    if all || ablations || exhibit == "variance" {
        known = true;
        eprintln!("running seed-sensitivity study (5 seeds × 2 traces) …");
        println!("{}", VarianceStudy::run(&ctx, scale, &[0, 1, 2, 3, 4])?);
    }
    if all || ablations || exhibit == "shift" {
        known = true;
        eprintln!("running popularity-shift calibration sweep …");
        println!("{}", ShiftSensitivity::run(&ctx, scale)?);
    }
    if known {
        let lineup = if exhibit == "fig3" {
            StrategyKind::figure3_lineup(PAPER_BETA)
        } else {
            StrategyKind::figure4_lineup(PAPER_BETA)
        };
        if let Some(dir) = obs_dir {
            // Instrumented replay of the exhibit's lineup at the paper's
            // middle capacity: sharded with hard-checked merge totals, or
            // serial with a full decision log when --events is set.
            eprintln!(
                "replaying {} strategies with observers (events: {events}) …",
                lineup.len()
            );
            let audit = ObsAudit::run_traced(&ctx, &lineup, 0.05, dir, events, &sink)?;
            for row in &audit.rows {
                eprintln!(
                    "  {:>6}: requests {}  hits {}  pushed {}  events {}",
                    row.strategy, row.requests, row.hits, row.pushed_pages, row.events_written
                );
            }
            eprintln!("wrote {}", dir.join("summary.txt").display());
        } else if trace_file.is_some() {
            // No audit replay to trace: record one sharded replay of the
            // lineup's lead strategy so the timeline has per-shard tracks.
            let kind = lineup[0];
            eprintln!("tracing a sharded replay of {} …", kind.name());
            let compiled = ctx.compiled(Trace::News, 1.0)?;
            let options = SimOptions::at_capacity(kind, 0.05).with_threads(ctx.threads());
            let (_result, _obs): (_, NullObserver) =
                simulate_observed_sharded_compiled_traced(&compiled, ctx.costs(), &options, &sink)?;
        }
    }
    if let Some(path) = trace_file {
        flush_pool_spans(&sink);
        let mut file = std::fs::File::create(path)
            .map_err(|e| ExperimentError::Io(format!("{}: {e}", path.display())))?;
        render_chrome_trace(&sink.snapshot(), &mut file)
            .map_err(|e| ExperimentError::Io(format!("{}: {e}", path.display())))?;
        eprintln!(
            "wrote {} ({} spans)",
            path.display(),
            sink.snapshot().span_count()
        );
    }
    Ok(known)
}

/// Converts the worker pool's collected task spans into one timeline
/// track per pool worker (`pool worker <w>`, span label = the phase that
/// was current when the task ran, detail = the job index).
fn flush_pool_spans(sink: &TraceSink) {
    let mut by_worker: std::collections::BTreeMap<usize, Vec<SpanEvent>> =
        std::collections::BTreeMap::new();
    for s in pscd_sim::pool::spans::disable() {
        by_worker.entry(s.worker).or_default().push(SpanEvent {
            label: s.phase,
            start_ns: s.start_ns,
            dur_ns: s.end_ns - s.start_ns,
            detail: Some(format!("job {}", s.job)),
        });
    }
    for (w, events) in by_worker {
        sink.add_events(&format!("pool worker {w}"), events);
    }
}
