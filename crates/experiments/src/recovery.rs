//! Failure-recovery extension: hourly hit ratio around a fleet-wide proxy
//! restart.
//!
//! Not part of the paper's evaluation, but a natural systems question its
//! design raises: after a proxy loses its cache, push-time placement
//! repopulates it *proactively* (every newly published matched page is an
//! offer), while access-only caching must pay one miss per page again.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::{CrashPlan, SimOptions};
use pscd_types::SimTime;

use crate::{run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA};

/// The crash instant used by the experiment (mid-week).
pub const CRASH_HOUR: usize = 84;

/// Hourly hit-ratio series around a crash of the whole proxy fleet at
/// [`CRASH_HOUR`], for GD\*, SUB and SG2 (NEWS, SQ = 1, 5% capacity).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashRecovery {
    /// `(strategy, hourly hit ratio % — None for idle hours)`.
    pub series: Vec<(String, Vec<Option<f64>>)>,
}

impl CrashRecovery {
    /// Runs the experiment on the NEWS trace.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::Sg2 { beta: PAPER_BETA },
            StrategyKind::Sub,
            StrategyKind::GdStar { beta: PAPER_BETA },
        ];
        let compiled = ctx.compiled(Trace::News, 1.0)?;
        let crash = CrashPlan::new(SimTime::from_hours(CRASH_HOUR as u64), 1.0);
        let jobs: Vec<_> = lineup
            .iter()
            .map(|&kind| {
                (
                    &*compiled,
                    SimOptions::at_capacity(kind, 0.05).with_crash(crash),
                )
            })
            .collect();
        let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
        Ok(Self {
            series: results
                .into_iter()
                .map(|r| (r.strategy.clone(), r.hourly.hit_ratio_percent()))
                .collect(),
        })
    }

    /// Mean hourly hit ratio (%) of one strategy over an hour range,
    /// ignoring idle hours.
    pub fn mean_over(&self, strategy: &str, hours: std::ops::Range<usize>) -> f64 {
        let Some((_, s)) = self.series.iter().find(|(n, _)| n == strategy) else {
            return 0.0;
        };
        let vals: Vec<f64> = s[hours.start.min(s.len())..hours.end.min(s.len())]
            .iter()
            .flatten()
            .copied()
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }

    /// Hit-ratio drop from the 12 hours before the crash to the 12 hours
    /// after it, in percentage points.
    pub fn crash_dent(&self, strategy: &str) -> f64 {
        self.mean_over(strategy, CRASH_HOUR.saturating_sub(12)..CRASH_HOUR)
            - self.mean_over(strategy, CRASH_HOUR..CRASH_HOUR + 12)
    }
}

impl fmt::Display for CrashRecovery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Extension: recovery after a fleet-wide proxy restart at hour {CRASH_HOUR} \
             (NEWS, SQ = 1, capacity = 5%)\n"
        )?;
        let names: Vec<&String> = self.series.iter().map(|(n, _)| n).collect();
        let mut headers = vec!["hour".to_owned()];
        headers.extend(names.iter().map(|n| (*n).clone()));
        let mut table = TextTable::new(headers);
        // 6-hour buckets in a window around the crash.
        let lo = CRASH_HOUR.saturating_sub(24);
        let hi = (CRASH_HOUR + 36).min(
            self.series
                .first()
                .map(|(_, s)| s.len())
                .unwrap_or(CRASH_HOUR),
        );
        let mut h = lo;
        while h < hi {
            let end = (h + 6).min(hi);
            let mut row = vec![format!("{h}-{}", end - 1)];
            for name in &names {
                row.push(format!("{:.1}", self.mean_over(name, h..end)));
            }
            table.add_row(row);
            h = end;
        }
        writeln!(f, "{table}")?;
        writeln!(f, "Hit-ratio dent (12 h before vs 12 h after the crash):")?;
        for (name, _) in &self.series {
            writeln!(f, "  {name:6} {:+.1} points", -self.crash_dent(name))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_strategies_recover_faster_than_gdstar() {
        let ctx = ExperimentContext::scaled(0.02).unwrap();
        let rec = CrashRecovery::run(&ctx).unwrap();
        assert_eq!(rec.series.len(), 3);
        // Everyone dips at the crash...
        for name in ["SG2", "GD*"] {
            assert!(
                rec.crash_dent(name) > 0.0,
                "{name}: no dent ({})",
                rec.crash_dent(name)
            );
        }
        // ...but the push-based strategy recovers to a higher level in the
        // first half-day than the access-only baseline.
        let sg2_after = rec.mean_over("SG2", CRASH_HOUR..CRASH_HOUR + 12);
        let gd_after = rec.mean_over("GD*", CRASH_HOUR..CRASH_HOUR + 12);
        assert!(
            sg2_after > gd_after,
            "SG2 {sg2_after} <= GD* {gd_after} after the crash"
        );
        let rendered = rec.to_string();
        assert!(rendered.contains("restart at hour"));
        assert!(rendered.contains("dent"));
        assert_eq!(rec.mean_over("missing", 0..10), 0.0);
    }
}
