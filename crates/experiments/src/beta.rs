//! β tuning sweep (§5.1): GD\*, SG1 and SG2 across β, capacities, traces.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, BETAS, CAPACITIES,
};

/// Which GD\*-framework algorithm a β sweep cell belongs to.
const ALGORITHMS: [&str; 3] = ["GD*", "SG1", "SG2"];

fn kind_for(algorithm: &str, beta: f64) -> StrategyKind {
    match algorithm {
        "GD*" => StrategyKind::GdStar { beta },
        "SG1" => StrategyKind::Sg1 { beta },
        "SG2" => StrategyKind::Sg2 { beta },
        other => unreachable!("unknown β-sweep algorithm {other}"),
    }
}

/// One cell of the β sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaCell {
    /// The trace.
    pub trace: Trace,
    /// The algorithm ("GD*", "SG1", "SG2").
    pub algorithm: &'static str,
    /// Cache capacity fraction.
    pub capacity: f64,
    /// β value.
    pub beta: f64,
    /// Measured global hit ratio in `[0, 1]`.
    pub hit_ratio: f64,
}

/// The β sweep result: every (trace, algorithm, capacity, β) hit ratio
/// plus the per-(trace, algorithm, capacity) argmax the paper uses to fix
/// β in the following experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct BetaSweep {
    /// All measured cells.
    pub cells: Vec<BetaCell>,
}

impl BetaSweep {
    /// Runs the sweep on both traces with perfect subscriptions (SQ = 1).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let mut cells = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let mut plan = Vec::new();
            for algorithm in ALGORITHMS {
                for &capacity in &CAPACITIES {
                    for &beta in &BETAS {
                        plan.push((algorithm, capacity, beta));
                    }
                }
            }
            let jobs: Vec<_> = plan
                .iter()
                .map(|&(algorithm, capacity, beta)| {
                    (
                        &*compiled,
                        SimOptions::at_capacity(kind_for(algorithm, beta), capacity),
                    )
                })
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for ((algorithm, capacity, beta), result) in plan.into_iter().zip(results) {
                cells.push(BetaCell {
                    trace,
                    algorithm,
                    capacity,
                    beta,
                    hit_ratio: result.hit_ratio(),
                });
            }
        }
        Ok(Self { cells })
    }

    /// The β with the highest hit ratio for one (trace, algorithm,
    /// capacity) combination.
    pub fn best_beta(&self, trace: Trace, algorithm: &str, capacity: f64) -> Option<f64> {
        self.cells
            .iter()
            .filter(|c| c.trace == trace && c.algorithm == algorithm && c.capacity == capacity)
            .max_by(|a, b| {
                a.hit_ratio
                    .partial_cmp(&b.hit_ratio)
                    .expect("hit ratios are finite")
            })
            .map(|c| c.beta)
    }
}

impl fmt::Display for BetaSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## β sweep (§5.1): hit ratio (%) by β, SQ = 1\n")?;
        for trace in [Trace::News, Trace::Alternative] {
            for algorithm in ALGORITHMS {
                writeln!(f, "### {} / {}", trace.name(), algorithm)?;
                let mut headers = vec!["capacity".to_owned()];
                headers.extend(BETAS.iter().map(|b| format!("β={b}")));
                headers.push("best β".to_owned());
                let mut table = TextTable::new(headers);
                for &capacity in &CAPACITIES {
                    let mut row = vec![format!("{:.0}%", capacity * 100.0)];
                    for &beta in &BETAS {
                        let cell = self
                            .cells
                            .iter()
                            .find(|c| {
                                c.trace == trace
                                    && c.algorithm == algorithm
                                    && c.capacity == capacity
                                    && c.beta == beta
                            })
                            .expect("complete sweep");
                        row.push(pct(cell.hit_ratio));
                    }
                    row.push(
                        self.best_beta(trace, algorithm, capacity)
                            .map(|b| b.to_string())
                            .unwrap_or_default(),
                    );
                    table.add_row(row);
                }
                writeln!(f, "{table}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_at_small_scale() {
        let ctx = ExperimentContext::scaled(0.002).unwrap();
        let sweep = BetaSweep::run(&ctx).unwrap();
        assert_eq!(sweep.cells.len(), 2 * 3 * 3 * BETAS.len());
        let best = sweep.best_beta(Trace::News, "GD*", 0.05).unwrap();
        assert!(BETAS.contains(&best));
        assert!(sweep.best_beta(Trace::News, "nope", 0.05).is_none());
        let rendered = sweep.to_string();
        assert!(rendered.contains("NEWS / SG2"));
        assert!(rendered.contains("best β"));
    }
}
