//! Experiment drivers reproducing every table and figure of the paper's
//! evaluation (§5).
//!
//! Each driver runs the full grid of simulations for one exhibit and
//! renders the same rows/series the paper reports:
//!
//! | Exhibit | Driver | What it shows |
//! |---|---|---|
//! | §5.1 β tuning | [`BetaSweep`] | best β per algorithm/capacity/trace |
//! | Figure 3 | [`Fig3`] | Dual-Methods vs Dual-Caches hit ratios |
//! | Figure 4 | [`Fig4`] | all methods, capacity sweep, SQ = 1 |
//! | Table 2 | [`Table2`] | relative improvement over GD\* at 5% |
//! | Figure 5 | [`Fig5`] | sensitivity to subscription quality |
//! | Figure 6 | [`Fig6`] | hourly hit ratio over 7 days |
//! | Figure 7 | [`Fig7`] | traffic under the two pushing schemes |
//!
//! [`ExperimentContext`] generates the two traces and the topology once;
//! [`run_grid`] fans the simulation grid across cores. The `repro` binary
//! (`cargo run --release --bin repro -- all`) regenerates everything.
//!
//! # Examples
//!
//! ```
//! use pscd_experiments::{ExperimentContext, Table2};
//! // 0.4% scale for the doctest; use paper_scale() to reproduce the paper.
//! let ctx = ExperimentContext::scaled(0.004)?;
//! let table2 = Table2::run(&ctx)?;
//! println!("{table2}");
//! # Ok::<(), pscd_experiments::ExperimentError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ablations;
mod audit;
mod bench;
mod beta;
mod context;
mod csv;
mod error;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig7;
mod grid;
mod invalidation;
mod recovery;
mod table;
mod table2;
mod variance;

pub use ablations::{
    ClassicBaselines, CoverageSweep, LapBoundsSweep, PartitionSweep, ShiftSensitivity, COVERAGES,
    LAP_BOUNDS, PC_FRACTIONS, SHIFTS,
};
pub use audit::{AuditRow, ObsAudit};
pub use bench::{
    validate_bench_json, BenchReport, BenchRow, BENCH_PR, BENCH_SCHEMA, MIN_BENCHMARKS,
};
pub use beta::{BetaCell, BetaSweep};
pub use context::{ExperimentContext, Trace, BETAS, CAPACITIES, PAPER_BETA, QUALITIES};
pub use csv::ToCsv;
pub use error::ExperimentError;
pub use fig3::Fig3;
pub use fig4::Fig4;
pub use fig5::Fig5;
pub use fig6::Fig6;
pub use fig7::Fig7;
pub use grid::{run_grid, run_grid_threads, GridJob};
pub use invalidation::InvalidationStudy;
pub use recovery::{CrashRecovery, CRASH_HOUR};
pub use table::{pct, signed_pct, TextTable};
pub use table2::Table2;
pub use variance::{MeanSd, VarianceStudy};

/// Per-strategy measurement cells: `(strategy name, value)` pairs in
/// lineup order.
pub type StrategyCells = Vec<(String, f64)>;

/// One sweep row: `(trace, x value, per-strategy cells)` — the shape
/// shared by the figure grids and most ablations.
pub type TraceRow = (Trace, f64, StrategyCells);
