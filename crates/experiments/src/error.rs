//! Experiment errors.

use std::error::Error;
use std::fmt;

use pscd_sim::SimError;
use pscd_topology::TopologyError;
use pscd_workload::WorkloadError;

/// Error produced while preparing or running an experiment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// Workload generation failed.
    Workload(WorkloadError),
    /// Topology/cost generation failed.
    Topology(TopologyError),
    /// A simulation run failed.
    Sim(SimError),
    /// Writing observability artifacts failed.
    Io(String),
    /// A live service run failed (rendered, since service errors carry
    /// non-cloneable I/O sources).
    Service(String),
    /// An observer's aggregate totals disagreed with the simulation's own
    /// accounting — an instrumentation bug, never expected in a release.
    ObserverMismatch {
        /// Strategy whose replay disagreed.
        strategy: String,
        /// Which total disagreed and the two values.
        detail: String,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Workload(e) => write!(f, "workload generation failed: {e}"),
            ExperimentError::Topology(e) => write!(f, "topology generation failed: {e}"),
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::Io(detail) => write!(f, "cannot write audit output: {detail}"),
            ExperimentError::Service(detail) => write!(f, "service run failed: {detail}"),
            ExperimentError::ObserverMismatch { strategy, detail } => {
                write!(
                    f,
                    "observer disagrees with the {strategy} simulation: {detail}"
                )
            }
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Workload(e) => Some(e),
            ExperimentError::Topology(e) => Some(e),
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::Io(_)
            | ExperimentError::Service(_)
            | ExperimentError::ObserverMismatch { .. } => None,
        }
    }
}

impl From<WorkloadError> for ExperimentError {
    fn from(e: WorkloadError) -> Self {
        ExperimentError::Workload(e)
    }
}

impl From<TopologyError> for ExperimentError {
    fn from(e: TopologyError) -> Self {
        ExperimentError::Topology(e)
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        ExperimentError::Sim(e)
    }
}

impl From<pscd_service::ServiceError> for ExperimentError {
    fn from(e: pscd_service::ServiceError) -> Self {
        ExperimentError::Service(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_sources() {
        let e = ExperimentError::from(WorkloadError::InvalidConfig {
            field: "x",
            constraint: "y",
        });
        assert!(e.to_string().contains("workload"));
        assert!(e.source().is_some());
        let e = ExperimentError::from(TopologyError::TooFewNodes { nodes: 1 });
        assert!(e.to_string().contains("topology"));
        let e = ExperimentError::from(SimError::InvalidOption {
            option: "o",
            constraint: "c",
        });
        assert!(e.to_string().contains("simulation"));
        let e = ExperimentError::from(pscd_service::ServiceError::Stopped);
        assert!(e.to_string().contains("service"));
        assert!(e.source().is_none());
    }
}
