//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table, used to print the paper's tables and
/// figure series in a terminal- and Markdown-friendly form.
///
/// # Examples
///
/// ```
/// use pscd_experiments::TextTable;
/// let mut t = TextTable::new(vec!["capacity".into(), "GD*".into(), "SG2".into()]);
/// t.add_row(vec!["1%".into(), "36.7".into(), "61.9".into()]);
/// let s = t.to_string();
/// assert!(s.contains("| capacity | GD*  | SG2  |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(&widths) {
                write!(f, " {cell:<w$} |", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<w$}|", "", w = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio in percent with one decimal, as the paper reports.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Formats a signed percentage (already in percent units).
pub fn signed_pct(x: f64) -> String {
    format!("{x:+.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = TextTable::new(vec!["a".into(), "bbb".into()]);
        t.add_row(vec!["xx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "| a  | bbb |");
        assert_eq!(lines[1], "|----|-----|");
        assert_eq!(lines[2], "| xx | 1   |");
        assert_eq!(lines[3], "| y  | 22  |");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.add_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.4216), "42.2");
        assert_eq!(pct(0.5), "50.0");
        assert_eq!(signed_pct(34.2), "+34");
        assert_eq!(signed_pct(-6.0), "-6");
    }
}
