//! Ablations beyond the paper's exhibits: design-choice sweeps the paper
//! motivates but does not plot.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::trace::CompiledTrace;
use pscd_sim::SimOptions;
use pscd_workload::{Workload, WorkloadConfig};

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, StrategyCells, TextTable, Trace,
    TraceRow, CAPACITIES, PAPER_BETA,
};

/// Classic access-only baselines (LRU, GDS, LFU-DA) against GD\*,
/// validating the paper's premise that GD\* is the strongest access-only
/// baseline (it cites Jin & Bestavros's comparison rather than re-running
/// it; we re-run it).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassicBaselines {
    /// `(trace, capacity, [(policy, hit ratio)])` rows.
    pub rows: Vec<TraceRow>,
}

impl ClassicBaselines {
    /// Runs LRU/GDS/LFU-DA/GD\* across the capacity settings, both traces.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::Lru,
            StrategyKind::Gds,
            StrategyKind::LfuDa,
            StrategyKind::GdStar { beta: PAPER_BETA },
        ];
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            for &capacity in &CAPACITIES {
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&*compiled, SimOptions::at_capacity(kind, capacity)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                rows.push((
                    trace,
                    capacity,
                    results
                        .into_iter()
                        .map(|r| (r.strategy.clone(), r.hit_ratio()))
                        .collect(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// Hit ratio of one policy in one row.
    pub fn hit_ratio(&self, trace: Trace, capacity: f64, policy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, c, _)| *t == trace && *c == capacity)
            .and_then(|(_, _, cells)| cells.iter().find(|(n, _)| n == policy).map(|&(_, h)| h))
    }
}

impl fmt::Display for ClassicBaselines {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Ablation: classic access-only policies vs GD* (SQ irrelevant)\n"
        )?;
        for trace in [Trace::News, Trace::Alternative] {
            writeln!(f, "### {} trace", trace.name())?;
            let mut table = TextTable::new(
                ["capacity", "LRU", "GDS", "LFU-DA", "GD*"]
                    .map(str::to_owned)
                    .to_vec(),
            );
            for (t, capacity, cells) in &self.rows {
                if t != &trace {
                    continue;
                }
                let mut row = vec![format!("{:.0}%", capacity * 100.0)];
                row.extend(cells.iter().map(|&(_, h)| pct(h)));
                table.add_row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

/// DC-LAP boundary ablation: how tight can the PC-fraction bounds be
/// before the adaptivity is lost (→ DC-FP), and how loose before it
/// degenerates (→ DC-AP)?
#[derive(Debug, Clone, PartialEq)]
pub struct LapBoundsSweep {
    /// `(trace, (lo, hi), hit ratio)` cells at 5% capacity, SQ = 1.
    pub cells: Vec<(Trace, (f64, f64), f64)>,
}

/// The bound pairs the sweep evaluates, widest first. `(0.5, 0.5)` pins
/// the partition (DC-FP behaviour); `(0.0, 1.0)` is unbounded (DC-AP).
pub const LAP_BOUNDS: [(f64, f64); 5] =
    [(0.0, 1.0), (0.1, 0.9), (0.25, 0.75), (0.4, 0.6), (0.5, 0.5)];

impl LapBoundsSweep {
    /// Runs the sweep at 5% capacity on both traces.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let mut cells = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let jobs: Vec<_> = LAP_BOUNDS
                .iter()
                .map(|&(lo, hi)| {
                    (
                        &*compiled,
                        SimOptions::at_capacity(
                            StrategyKind::DcLap {
                                beta: PAPER_BETA,
                                lo,
                                hi,
                            },
                            0.05,
                        ),
                    )
                })
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for (&bounds, r) in LAP_BOUNDS.iter().zip(results) {
                cells.push((trace, bounds, r.hit_ratio()));
            }
        }
        Ok(Self { cells })
    }

    /// Hit ratio at one bound pair.
    pub fn hit_ratio(&self, trace: Trace, bounds: (f64, f64)) -> Option<f64> {
        self.cells
            .iter()
            .find(|(t, b, _)| *t == trace && *b == bounds)
            .map(|&(_, _, h)| h)
    }
}

impl fmt::Display for LapBoundsSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Ablation: DC-LAP PC-fraction bounds (capacity = 5%, SQ = 1)\n"
        )?;
        let mut headers = vec!["trace".to_owned()];
        headers.extend(LAP_BOUNDS.iter().map(|(lo, hi)| format!("[{lo},{hi}]")));
        let mut table = TextTable::new(headers);
        for trace in [Trace::News, Trace::Alternative] {
            let mut row = vec![trace.name().to_owned()];
            for &bounds in &LAP_BOUNDS {
                row.push(self.hit_ratio(trace, bounds).map(pct).unwrap_or_default());
            }
            table.add_row(row);
        }
        writeln!(f, "{table}")
    }
}

/// DC-FP partition sweep: the fixed PC fraction is the strategy's only
/// knob; the paper fixes it at 50% without justification.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSweep {
    /// `(trace, pc fraction, hit ratio)` cells at 5% capacity, SQ = 1.
    pub cells: Vec<(Trace, f64, f64)>,
}

/// The PC fractions the sweep evaluates.
pub const PC_FRACTIONS: [f64; 7] = [0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9];

impl PartitionSweep {
    /// Runs the sweep at 5% capacity on both traces.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let mut cells = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let jobs: Vec<_> = PC_FRACTIONS
                .iter()
                .map(|&pc_fraction| {
                    (
                        &*compiled,
                        SimOptions::at_capacity(
                            StrategyKind::DcFp {
                                beta: PAPER_BETA,
                                pc_fraction,
                            },
                            0.05,
                        ),
                    )
                })
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for (&frac, r) in PC_FRACTIONS.iter().zip(results) {
                cells.push((trace, frac, r.hit_ratio()));
            }
        }
        Ok(Self { cells })
    }

    /// Hit ratio at one PC fraction.
    pub fn hit_ratio(&self, trace: Trace, pc_fraction: f64) -> Option<f64> {
        self.cells
            .iter()
            .find(|(t, p, _)| *t == trace && *p == pc_fraction)
            .map(|&(_, _, h)| h)
    }
}

impl fmt::Display for PartitionSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Ablation: DC-FP push-cache fraction (capacity = 5%, SQ = 1)\n"
        )?;
        let mut headers = vec!["trace".to_owned()];
        headers.extend(PC_FRACTIONS.iter().map(|p| format!("PC={p}")));
        let mut table = TextTable::new(headers);
        for trace in [Trace::News, Trace::Alternative] {
            let mut row = vec![trace.name().to_owned()];
            for &p in &PC_FRACTIONS {
                row.push(self.hit_ratio(trace, p).map(pct).unwrap_or_default());
            }
            table.add_row(row);
        }
        writeln!(f, "{table}")
    }
}

/// Subscription-coverage sweep: the paper's future-work scenario in which
/// only part of the request stream is notification-driven. Gains should
/// degrade gracefully toward the GD\* baseline as coverage drops.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSweep {
    /// `(trace, coverage, [(strategy, hit ratio)])` rows at 5%, SQ = 1.
    pub rows: Vec<TraceRow>,
}

/// Coverage levels evaluated.
pub const COVERAGES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

impl CoverageSweep {
    /// Runs GD\*, SG2 and DC-LAP across coverage levels, both traces.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::GdStar { beta: PAPER_BETA },
            StrategyKind::Sg2 { beta: PAPER_BETA },
            StrategyKind::dc_lap(PAPER_BETA),
        ];
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            for &coverage in &COVERAGES {
                let subs = ctx.workload(trace).subscriptions_partial(1.0, coverage)?;
                // Partial-coverage tables live outside the context's
                // cache; compile once per level, share across the lineup.
                let compiled = CompiledTrace::compile(ctx.workload(trace), &subs)?;
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&compiled, SimOptions::at_capacity(kind, 0.05)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                rows.push((
                    trace,
                    coverage,
                    results
                        .into_iter()
                        .map(|r| (r.strategy.clone(), r.hit_ratio()))
                        .collect(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// Hit ratio of one strategy at one coverage level.
    pub fn hit_ratio(&self, trace: Trace, coverage: f64, strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, c, _)| *t == trace && *c == coverage)
            .and_then(|(_, _, cells)| cells.iter().find(|(n, _)| n == strategy).map(|&(_, h)| h))
    }
}

impl fmt::Display for CoverageSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Extension: partial notification coverage (capacity = 5%, SQ = 1)\n"
        )?;
        for trace in [Trace::News, Trace::Alternative] {
            writeln!(f, "### {} trace", trace.name())?;
            let names: Vec<String> = self
                .rows
                .iter()
                .find(|(t, _, _)| *t == trace)
                .map(|(_, _, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
                .unwrap_or_default();
            let mut headers = vec!["coverage".to_owned()];
            headers.extend(names);
            let mut table = TextTable::new(headers);
            for (t, coverage, cells) in &self.rows {
                if t != &trace {
                    continue;
                }
                let mut row = vec![format!("{coverage}")];
                row.extend(cells.iter().map(|&(_, h)| pct(h)));
                table.add_row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

/// Popularity-head sensitivity: sweeps the Zipf–Mandelbrot `shift` our
/// workload calibration introduces (DESIGN.md §3) and reports the trace's
/// density and the headline strategies' hit ratios, justifying the
/// default of 100.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftSensitivity {
    /// `(shift, matched pairs, [(strategy, hit ratio)])` on NEWS at 5%.
    pub rows: Vec<(f64, u64, StrategyCells)>,
}

/// Shift values evaluated.
pub const SHIFTS: [f64; 5] = [0.0, 20.0, 50.0, 100.0, 200.0];

impl ShiftSensitivity {
    /// Runs GD\* and SG2 on NEWS-trace variants regenerated per shift.
    /// `scale` controls workload size (1.0 = paper scale).
    ///
    /// # Errors
    ///
    /// Propagates workload/simulation failures.
    pub fn run(ctx: &ExperimentContext, scale: f64) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::GdStar { beta: PAPER_BETA },
            StrategyKind::Sg2 { beta: PAPER_BETA },
        ];
        let mut rows = Vec::new();
        for &shift in &SHIFTS {
            let mut cfg = WorkloadConfig::news_scaled(scale);
            cfg.requests.zipf_shift = shift;
            let w = Workload::generate(&cfg)?;
            let subs = w.subscriptions(1.0)?;
            let pairs = subs.iter().count() as u64;
            let compiled = CompiledTrace::compile(&w, &subs)?;
            let jobs: Vec<_> = lineup
                .iter()
                .map(|&kind| (&compiled, SimOptions::at_capacity(kind, 0.05)))
                .collect();
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            rows.push((
                shift,
                pairs,
                results
                    .into_iter()
                    .map(|r| (r.strategy.clone(), r.hit_ratio()))
                    .collect(),
            ));
        }
        Ok(Self { rows })
    }
}

impl fmt::Display for ShiftSensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Calibration: Zipf–Mandelbrot shift sensitivity (NEWS, capacity = 5%, SQ = 1)\n"
        )?;
        let mut table = TextTable::new(
            ["shift", "matched pairs", "GD*", "SG2", "SG2/GD*"]
                .map(str::to_owned)
                .to_vec(),
        );
        for (shift, pairs, cells) in &self.rows {
            let gd = cells.iter().find(|(n, _)| n == "GD*").map(|&(_, h)| h);
            let sg2 = cells.iter().find(|(n, _)| n == "SG2").map(|&(_, h)| h);
            table.add_row(vec![
                format!("{shift}"),
                pairs.to_string(),
                gd.map(pct).unwrap_or_default(),
                sg2.map(pct).unwrap_or_default(),
                match (gd, sg2) {
                    (Some(g), Some(s)) if g > 0.0 => format!("{:.2}x", s / g),
                    _ => String::new(),
                },
            ]);
        }
        writeln!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::scaled(0.004).unwrap()
    }

    #[test]
    fn classic_baselines_gdstar_competitive() {
        let a = ClassicBaselines::run(&ctx()).unwrap();
        assert_eq!(a.rows.len(), 6);
        // GD* should be at least as good as LRU at 5% on both traces.
        for trace in [Trace::News, Trace::Alternative] {
            let gd = a.hit_ratio(trace, 0.05, "GD*").unwrap();
            let lru = a.hit_ratio(trace, 0.05, "LRU").unwrap();
            assert!(gd >= lru, "{}: GD* {gd} < LRU {lru}", trace.name());
        }
        assert!(a.to_string().contains("LFU-DA"));
    }

    #[test]
    fn lap_bounds_sweep_runs() {
        let s = LapBoundsSweep::run(&ctx()).unwrap();
        assert_eq!(s.cells.len(), 2 * LAP_BOUNDS.len());
        for trace in [Trace::News, Trace::Alternative] {
            for &b in &LAP_BOUNDS {
                let h = s.hit_ratio(trace, b).unwrap();
                assert!((0.0..=1.0).contains(&h));
            }
        }
        assert!(s.to_string().contains("[0.25,0.75]"));
    }

    #[test]
    fn partition_sweep_runs() {
        let s = PartitionSweep::run(&ctx()).unwrap();
        assert_eq!(s.cells.len(), 2 * PC_FRACTIONS.len());
        assert!(s.hit_ratio(Trace::News, 0.5).is_some());
        assert!(s.hit_ratio(Trace::News, 0.33).is_none());
        assert!(s.to_string().contains("PC=0.5"));
    }

    #[test]
    fn coverage_degrades_gracefully() {
        let s = CoverageSweep::run(&ctx()).unwrap();
        for trace in [Trace::News, Trace::Alternative] {
            let gd = s.hit_ratio(trace, 1.0, "GD*").unwrap();
            let full = s.hit_ratio(trace, 1.0, "SG2").unwrap();
            let quarter = s.hit_ratio(trace, 0.25, "SG2").unwrap();
            // Less coverage, fewer push wins — but never below useless.
            assert!(full >= quarter, "{}", trace.name());
            assert!(quarter >= 0.0 && full > gd, "{}", trace.name());
        }
        assert!(s.to_string().contains("coverage"));
    }

    #[test]
    fn shift_sensitivity_reports_density() {
        let c = ctx();
        let s = ShiftSensitivity::run(&c, 0.004).unwrap();
        assert_eq!(s.rows.len(), SHIFTS.len());
        // Pair density grows with the shift (flatter head -> wider
        // spread). At this tiny scale the trend is only reliable between
        // the endpoints — adjacent settings can swap by sampling noise in
        // the generator's RNG stream.
        let pairs: Vec<u64> = s.rows.iter().map(|&(_, p, _)| p).collect();
        assert!(pairs.last() > pairs.first(), "{pairs:?}");
        assert!(s.to_string().contains("matched pairs"));
    }
}
