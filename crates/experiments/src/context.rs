//! Shared experiment inputs: the two traces, subscriptions, costs, and
//! the compiled-trace cache every exhibit's grid replays from.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use pscd_obs::{Registry, SharedRegistry, TraceSink};
use pscd_sim::trace::CompiledTrace;
use pscd_sim::{PrefetchOptions, StreamingTrace};
use pscd_topology::{FetchCosts, TopologyBuilder};
use pscd_types::{SimTime, SubscriptionTable};
use pscd_workload::{Workload, WorkloadConfig};

use crate::ExperimentError;

/// The paper's capacity settings (§5.1): 1%, 5% and 10% of the unique
/// bytes requested per server.
pub const CAPACITIES: [f64; 3] = [0.01, 0.05, 0.10];

/// The paper's subscription-quality settings (§5.4).
pub const QUALITIES: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// The β values the paper tunes over (§5.1): 0.0625 … 4.
pub const BETAS: [f64; 7] = [0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0];

/// The β the paper selects for the NEWS trace (used by every GD\*-based
/// strategy in the headline experiments).
pub const PAPER_BETA: f64 = 2.0;

/// Which of the paper's two traces an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trace {
    /// α = 1.5 (news-like popularity).
    News,
    /// α = 1.0 (regular web popularity).
    Alternative,
}

impl Trace {
    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Trace::News => "NEWS",
            Trace::Alternative => "ALTERNATIVE",
        }
    }

    /// The trace's Zipf α.
    pub fn alpha(self) -> f64 {
        match self {
            Trace::News => 1.5,
            Trace::Alternative => 1.0,
        }
    }
}

/// Everything the experiment drivers need: both traces plus the
/// topology-derived fetch costs, generated once and shared.
#[derive(Debug)]
pub struct ExperimentContext {
    news: Workload,
    alternative: Workload,
    costs: FetchCosts,
    threads: usize,
    /// When set, [`compiled`](Self::compiled) builds each trace through
    /// the streaming window compiler ([`StreamingTrace`]) at this window
    /// size instead of the monolithic [`CompiledTrace::compile`]. The
    /// result is bit-identical (the streaming differential suite proves
    /// it), so every exhibit's CSV byte-compares across the two modes —
    /// the knob trades peak compile memory for window bookkeeping.
    stream_window: Option<SimTime>,
    /// When set alongside `stream_window`, the streaming compile runs
    /// through the pipelined prefetcher at this compile-ahead depth
    /// (`repro --prefetch`): the window producer overlaps the consuming
    /// concatenation, with the constructor-fused lookahead cache covering
    /// the first batch. Bit-identical to the serial streaming compile.
    prefetch: Option<usize>,
    /// Compiled traces keyed by `(trace, quality.to_bits())`: each
    /// `(workload, subscription table)` pair is compiled exactly once and
    /// every grid cell of every exhibit replays the shared value.
    compiled: Mutex<HashMap<(Trace, u64), Arc<CompiledTrace>>>,
    /// Wall-clock spans of the cold-path phases (workload generation,
    /// fetch costs, subscription synthesis, trace compilation) — merged
    /// into audit reports so `--obs-dir` shows where setup time goes.
    cold: SharedRegistry,
    /// Timeline tracing sink (`repro --trace`): every cold phase records
    /// a span on the `cold` track, and the worker pool's per-task phase
    /// label follows the current phase. Disabled by default — recording
    /// then costs nothing.
    sink: TraceSink,
}

impl ExperimentContext {
    /// Full paper-scale context (30,147 pages, ~195k requests, 100
    /// proxies, BRITE-style Waxman topology).
    ///
    /// # Errors
    ///
    /// Propagates workload/topology generation failures (none occur for
    /// the built-in configurations).
    pub fn paper_scale() -> Result<Self, ExperimentError> {
        Self::scaled(1.0)
    }

    /// Proportionally scaled-down context for tests and benches;
    /// equivalent to [`scaled_threads`](Self::scaled_threads) with the
    /// auto thread count.
    ///
    /// # Errors
    ///
    /// Propagates workload/topology generation failures.
    pub fn scaled(factor: f64) -> Result<Self, ExperimentError> {
        Self::scaled_threads(factor, 0)
    }

    /// Scaled context whose entire cold path — workload generation now,
    /// subscription synthesis and trace compilation later in
    /// [`compiled`](Self::compiled) — runs on up to `threads` pool
    /// workers (`0` = auto, `1` = serial). Purely a speed knob: every
    /// generated and compiled value is bit-identical at any setting.
    /// Each phase's wall-clock span is recorded for
    /// [`cold_timing`](Self::cold_timing).
    ///
    /// # Errors
    ///
    /// Propagates workload/topology generation failures.
    pub fn scaled_threads(factor: f64, threads: usize) -> Result<Self, ExperimentError> {
        Self::scaled_threads_traced(factor, threads, TraceSink::disabled())
    }

    /// [`scaled_threads`](Self::scaled_threads) with timeline tracing:
    /// every cold-path phase (now and in later
    /// [`compiled`](Self::compiled) calls) records a span on the `cold`
    /// track of `sink`, and the worker pool's task-span phase label is
    /// kept current so per-chunk pool tasks attribute to the right phase.
    /// A disabled sink makes this exactly `scaled_threads`.
    ///
    /// # Errors
    ///
    /// Propagates workload/topology generation failures.
    pub fn scaled_threads_traced(
        factor: f64,
        threads: usize,
        sink: TraceSink,
    ) -> Result<Self, ExperimentError> {
        let cold = SharedRegistry::new();
        let news = phase(&cold, &sink, "cold.generate.news", || {
            Workload::generate_threads(&WorkloadConfig::news_scaled(factor), threads)
        })?;
        let alternative = phase(&cold, &sink, "cold.generate.alternative", || {
            Workload::generate_threads(&WorkloadConfig::alternative_scaled(factor), threads)
        })?;
        let costs = phase(&cold, &sink, "cold.costs", || {
            let topo = TopologyBuilder::new(news.server_count() as usize + 1)
                .seed(42)
                .build()?;
            FetchCosts::from_topology(&topo, 0).map_err(ExperimentError::from)
        })?;
        Ok(Self {
            news,
            alternative,
            costs,
            threads,
            stream_window: None,
            prefetch: None,
            compiled: Mutex::new(HashMap::new()),
            cold,
            sink,
        })
    }

    /// Sets the worker-pool size used by sweeps and audits: `0` = auto
    /// (machine parallelism, the default), `1` = serial, `n` = exactly
    /// `n` workers. Purely a speed knob — every exhibit is bit-identical
    /// at any setting.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured worker-pool size (`0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Routes every later [`compiled`](Self::compiled) call through the
    /// streaming window compiler at `window` (`repro --stream-window`).
    /// Purely a memory-shape knob: the compiled value is bit-identical
    /// to the monolithic path, so downstream exhibits are unchanged.
    #[must_use]
    pub fn with_stream_window(mut self, window: SimTime) -> Self {
        self.stream_window = Some(window);
        self
    }

    /// The streaming compile window, if one is configured.
    pub fn stream_window(&self) -> Option<SimTime> {
        self.stream_window
    }

    /// Routes the streaming compile through the pipelined prefetcher at
    /// compile-ahead depth `depth` (`repro --prefetch N`; clamped to at
    /// least 1). Only meaningful together with
    /// [`with_stream_window`](Self::with_stream_window). Purely a speed
    /// knob: the compiled value stays bit-identical, so every exhibit's
    /// CSV byte-compares across serial, streamed, and pipelined modes.
    #[must_use]
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        self.prefetch = Some(depth.max(1));
        self
    }

    /// The pipelined compile-ahead depth, if one is configured.
    pub fn prefetch(&self) -> Option<usize> {
        self.prefetch
    }

    /// The workload of one trace.
    pub fn workload(&self, trace: Trace) -> &Workload {
        match trace {
            Trace::News => &self.news,
            Trace::Alternative => &self.alternative,
        }
    }

    /// Subscription table of one trace at a target quality.
    ///
    /// # Errors
    ///
    /// Returns an error for qualities outside `(0, 1]`.
    pub fn subscriptions(
        &self,
        trace: Trace,
        quality: f64,
    ) -> Result<SubscriptionTable, ExperimentError> {
        Ok(self.workload(trace).subscriptions(quality)?)
    }

    /// The compiled trace of one workload at a target subscription
    /// quality — compiled on first use, cached for every later call, so a
    /// whole experiment suite pays the timeline merge/fan-out/lineage
    /// analysis exactly once per `(trace, quality)` pair no matter how
    /// many grids replay it.
    ///
    /// Compilation happens **outside** the cache lock: the memo `Mutex` is
    /// taken only for the map lookup and the insert (and, being `parking_lot`,
    /// cannot poison if a panic unwinds through a replay), so a caller compiling
    /// a cold key (seconds at paper scale) never blocks callers of other,
    /// already-warm keys. Two callers racing on the same cold key may both
    /// compile; the double-checked insert keeps the first value, every
    /// caller gets the same `Arc`, and sequential suites still compile each
    /// pair exactly once (asserted by the `compile_once` integration test).
    ///
    /// # Errors
    ///
    /// Returns an error for qualities outside `(0, 1]`.
    pub fn compiled(
        &self,
        trace: Trace,
        quality: f64,
    ) -> Result<Arc<CompiledTrace>, ExperimentError> {
        let key = (trace, quality.to_bits());
        {
            let cache = self.compiled.lock();
            if let Some(hit) = cache.get(&key) {
                return Ok(Arc::clone(hit));
            }
        }
        let workload = self.workload(trace);
        let compiled = if let Some(window) = self.stream_window {
            if let Some(depth) = self.prefetch {
                // Pipelined streaming mode: the compile-ahead producer
                // generates and compiles windows on its own thread while
                // this one concatenates; the lookahead cache covers the
                // first batch straight out of the counting scan.
                Arc::new(phase(
                    &self.cold,
                    &self.sink,
                    "cold.stream.pipelined",
                    || {
                        StreamingTrace::with_lookahead(
                            workload.config(),
                            quality,
                            window,
                            self.threads,
                            depth,
                        )
                        .map(|s| {
                            s.materialize_prefetched_traced(
                                &PrefetchOptions::new(depth),
                                &self.sink,
                            )
                        })
                    },
                )?)
            } else {
                // Streaming mode: regenerate-and-compile one window at a
                // time from the workload config (subscriptions derive from
                // the counted per-page draws inside), then concatenate.
                // Same value, O(window) compile memory.
                Arc::new(phase(&self.cold, &self.sink, "cold.stream", || {
                    StreamingTrace::new(workload.config(), quality, window, self.threads)
                        .map(|s| s.materialize())
                })?)
            }
        } else {
            let subs = phase(&self.cold, &self.sink, "cold.subscriptions", || {
                workload.subscriptions_threads(quality, self.threads)
            })?;
            Arc::new(phase(&self.cold, &self.sink, "cold.compile", || {
                CompiledTrace::compile_threads(workload, &subs, self.threads)
            })?)
        };
        let mut cache = self.compiled.lock();
        Ok(Arc::clone(cache.entry(key).or_insert(compiled)))
    }

    /// The shared per-proxy fetch costs.
    pub fn costs(&self) -> &FetchCosts {
        &self.costs
    }

    /// A snapshot of the cold-path phase timings recorded so far:
    /// `cold.generate.*` from construction, plus one
    /// `cold.subscriptions` / `cold.compile` span per compiled-cache
    /// miss. Audits merge this into their timing report.
    pub fn cold_timing(&self) -> Registry {
        self.cold.snapshot()
    }

    /// The timeline-tracing sink this context records cold phases into
    /// (disabled unless constructed via
    /// [`scaled_threads_traced`](Self::scaled_threads_traced)).
    pub fn trace_sink(&self) -> &TraceSink {
        &self.sink
    }
}

/// Runs one cold-path phase: a registry span (for `cold_timing`), a trace
/// span on the `cold` track, and the pool's task-span phase label, all
/// under the same name. With a disabled sink this is exactly
/// `cold.time(label, f)`.
fn phase<T, E>(
    cold: &SharedRegistry,
    sink: &TraceSink,
    label: &str,
    f: impl FnOnce() -> Result<T, E>,
) -> Result<T, E> {
    if sink.is_enabled() {
        pscd_sim::pool::spans::set_phase(label);
    }
    let mut rec = sink.recorder("cold");
    rec.span(label, || cold.time(label, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_context_builds() {
        let ctx = ExperimentContext::scaled(0.005).unwrap();
        assert_eq!(ctx.workload(Trace::News).server_count(), 100);
        assert_eq!(ctx.costs().server_count(), 100);
        assert!(ctx.subscriptions(Trace::News, 1.0).is_ok());
        assert!(ctx.subscriptions(Trace::Alternative, 0.5).is_ok());
        assert!(ctx.subscriptions(Trace::News, 0.0).is_err());
        assert_eq!(Trace::News.name(), "NEWS");
        assert_eq!(Trace::Alternative.alpha(), 1.0);
        assert_eq!(ctx.threads(), 0);
        assert_eq!(ctx.with_threads(2).threads(), 2);
    }

    #[test]
    fn cold_timing_records_phase_spans() {
        let ctx = ExperimentContext::scaled_threads(0.003, 2).unwrap();
        assert_eq!(ctx.threads(), 2);
        let labels = |reg: &Registry| -> Vec<String> {
            reg.spans().iter().map(|(l, _)| l.clone()).collect()
        };
        let before = labels(&ctx.cold_timing());
        assert!(before.contains(&"cold.generate.news".into()));
        assert!(before.contains(&"cold.generate.alternative".into()));
        assert!(before.contains(&"cold.costs".into()));
        ctx.compiled(Trace::News, 1.0).unwrap();
        let after = labels(&ctx.cold_timing());
        assert!(after.contains(&"cold.subscriptions".into()));
        assert!(after.contains(&"cold.compile".into()));
        // A cache hit re-derives nothing, so it times nothing.
        ctx.compiled(Trace::News, 1.0).unwrap();
        assert_eq!(ctx.cold_timing().spans().len(), after.len());
    }

    #[test]
    fn stream_window_compiles_identically() {
        let mono = ExperimentContext::scaled(0.003)
            .unwrap()
            .compiled(Trace::News, 1.0)
            .unwrap();
        let ctx = ExperimentContext::scaled(0.003)
            .unwrap()
            .with_stream_window(SimTime::from_hours(12));
        assert_eq!(ctx.stream_window(), Some(SimTime::from_hours(12)));
        let streamed = ctx.compiled(Trace::News, 1.0).unwrap();
        assert_eq!(*mono, *streamed);
        let labels: Vec<String> = ctx
            .cold_timing()
            .spans()
            .iter()
            .map(|(l, _)| l.clone())
            .collect();
        assert!(labels.contains(&"cold.stream".into()));
        assert!(!labels.contains(&"cold.compile".into()));
    }

    #[test]
    fn prefetched_stream_window_compiles_identically() {
        let mono = ExperimentContext::scaled(0.003)
            .unwrap()
            .compiled(Trace::News, 1.0)
            .unwrap();
        let ctx = ExperimentContext::scaled(0.003)
            .unwrap()
            .with_stream_window(SimTime::from_hours(12))
            .with_prefetch(2);
        assert_eq!(ctx.prefetch(), Some(2));
        let piped = ctx.compiled(Trace::News, 1.0).unwrap();
        assert_eq!(*mono, *piped);
        let labels: Vec<String> = ctx
            .cold_timing()
            .spans()
            .iter()
            .map(|(l, _)| l.clone())
            .collect();
        assert!(labels.contains(&"cold.stream.pipelined".into()));
        assert!(!labels.contains(&"cold.stream".into()));
        assert!(!labels.contains(&"cold.compile".into()));
    }

    #[test]
    fn compiled_traces_are_cached_per_trace_and_quality() {
        let ctx = ExperimentContext::scaled(0.003).unwrap();
        let a = ctx.compiled(Trace::News, 1.0).unwrap();
        let b = ctx.compiled(Trace::News, 1.0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = ctx.compiled(Trace::News, 0.5).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "different quality is a new entry");
        let d = ctx.compiled(Trace::Alternative, 1.0).unwrap();
        assert!(!Arc::ptr_eq(&a, &d), "different trace is a new entry");
        assert_eq!(a.server_count(), ctx.workload(Trace::News).server_count());
        assert!(ctx.compiled(Trace::News, 0.0).is_err());
    }
}
