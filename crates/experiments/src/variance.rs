//! Seed-sensitivity study: how much do the headline numbers move across
//! workload seeds?
//!
//! The paper reports single-run numbers (as does EXPERIMENTS.md's main
//! section, for comparability). This study regenerates the trace under
//! several master seeds and reports mean ± standard deviation of the
//! headline hit ratios and of SG2's relative gain over GD\*, quantifying
//! how much of the result is workload noise.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::trace::CompiledTrace;
use pscd_sim::SimOptions;
use pscd_workload::{Workload, WorkloadConfig};

use crate::{run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA};

/// Mean and standard deviation of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanSd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub sd: f64,
}

impl MeanSd {
    fn of(samples: &[f64]) -> Self {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n.max(1.0);
        let sd = if samples.len() < 2 {
            0.0
        } else {
            (samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)).sqrt()
        };
        Self { mean, sd }
    }
}

impl fmt::Display for MeanSd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} ± {:.1}", self.mean, self.sd)
    }
}

/// The seed-variance study: headline strategies at 5% capacity, SQ = 1,
/// across several regenerated workloads per trace.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceStudy {
    /// Seeds evaluated.
    pub seeds: Vec<u64>,
    /// `(trace, strategy, per-seed hit ratios %)`.
    pub samples: Vec<(Trace, String, Vec<f64>)>,
}

impl VarianceStudy {
    /// Runs the study with `seeds.len()` regenerated workloads per trace
    /// at workload scale `scale` (1.0 = paper scale).
    ///
    /// # Errors
    ///
    /// Propagates workload/simulation failures.
    pub fn run(
        ctx: &ExperimentContext,
        scale: f64,
        seeds: &[u64],
    ) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::GdStar { beta: PAPER_BETA },
            StrategyKind::Sg2 { beta: PAPER_BETA },
            StrategyKind::dc_lap(PAPER_BETA),
        ];
        let mut samples: Vec<(Trace, String, Vec<f64>)> = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            for kind in lineup {
                samples.push((trace, kind.name().to_owned(), Vec::new()));
            }
        }
        for &seed in seeds {
            for trace in [Trace::News, Trace::Alternative] {
                let cfg = match trace {
                    Trace::News => WorkloadConfig::news_scaled(scale),
                    Trace::Alternative => WorkloadConfig::alternative_scaled(scale),
                }
                .with_seed(seed);
                let workload = Workload::generate(&cfg)?;
                let subs = workload.subscriptions(1.0)?;
                // Reseeded workloads are outside the context's cache;
                // compile once per seed and share across the lineup.
                let compiled = CompiledTrace::compile(&workload, &subs)?;
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&compiled, SimOptions::at_capacity(kind, 0.05)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                for r in results {
                    let slot = samples
                        .iter_mut()
                        .find(|(t, n, _)| *t == trace && *n == r.strategy)
                        .expect("preallocated slot");
                    slot.2.push(r.hit_ratio_percent());
                }
            }
        }
        Ok(Self {
            seeds: seeds.to_vec(),
            samples,
        })
    }

    /// Mean ± sd of one strategy's hit ratio (%).
    pub fn hit_ratio(&self, trace: Trace, strategy: &str) -> Option<MeanSd> {
        self.samples
            .iter()
            .find(|(t, n, _)| *t == trace && n == strategy)
            .map(|(_, _, xs)| MeanSd::of(xs))
    }

    /// Mean ± sd of SG2's relative improvement over GD\* (%), paired by
    /// seed.
    pub fn sg2_gain(&self, trace: Trace) -> Option<MeanSd> {
        let gd = &self
            .samples
            .iter()
            .find(|(t, n, _)| *t == trace && n == "GD*")?
            .2;
        let sg2 = &self
            .samples
            .iter()
            .find(|(t, n, _)| *t == trace && n == "SG2")?
            .2;
        let gains: Vec<f64> = gd
            .iter()
            .zip(sg2)
            .filter(|&(&g, _)| g > 0.0)
            .map(|(&g, &s)| 100.0 * (s - g) / g)
            .collect();
        (!gains.is_empty()).then(|| MeanSd::of(&gains))
    }
}

impl fmt::Display for VarianceStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Seed sensitivity: hit ratio (%) mean ± sd over {} seeds (capacity = 5%, SQ = 1)\n",
            self.seeds.len()
        )?;
        let mut table = TextTable::new(
            ["trace", "GD*", "SG2", "DC-LAP", "SG2 gain over GD* (%)"]
                .map(str::to_owned)
                .to_vec(),
        );
        for trace in [Trace::News, Trace::Alternative] {
            table.add_row(vec![
                trace.name().to_owned(),
                self.hit_ratio(trace, "GD*")
                    .map(|m| m.to_string())
                    .unwrap_or_default(),
                self.hit_ratio(trace, "SG2")
                    .map(|m| m.to_string())
                    .unwrap_or_default(),
                self.hit_ratio(trace, "DC-LAP")
                    .map(|m| m.to_string())
                    .unwrap_or_default(),
                self.sg2_gain(trace)
                    .map(|m| m.to_string())
                    .unwrap_or_default(),
            ]);
        }
        writeln!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_sd_math() {
        let m = MeanSd::of(&[2.0, 4.0, 6.0]);
        assert!((m.mean - 4.0).abs() < 1e-12);
        assert!((m.sd - 2.0).abs() < 1e-12);
        let single = MeanSd::of(&[3.0]);
        assert_eq!(single.sd, 0.0);
        assert_eq!(format!("{m}"), "4.0 ± 2.0");
    }

    #[test]
    fn study_runs_and_sg2_wins_on_every_seed() {
        let ctx = ExperimentContext::scaled(0.01).unwrap();
        let study = VarianceStudy::run(&ctx, 0.01, &[1, 2, 3]).unwrap();
        assert_eq!(study.seeds, vec![1, 2, 3]);
        for trace in [Trace::News, Trace::Alternative] {
            let gd = study.hit_ratio(trace, "GD*").unwrap();
            let sg2 = study.hit_ratio(trace, "SG2").unwrap();
            assert!(sg2.mean > gd.mean, "{}", trace.name());
            let gain = study.sg2_gain(trace).unwrap();
            assert!(gain.mean > 0.0, "{}", trace.name());
        }
        let rendered = study.to_string();
        assert!(rendered.contains("Seed sensitivity"));
        assert!(rendered.contains("±"));
        assert!(study.hit_ratio(Trace::News, "missing").is_none());
    }
}
