//! Parallel execution of simulation grids.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use pscd_sim::{simulate, SimOptions, SimResult};
use pscd_topology::FetchCosts;
use pscd_types::SubscriptionTable;
use pscd_workload::Workload;

use crate::ExperimentError;

/// One cell of a simulation grid: a subscription table (one per
/// subscription quality) plus the run options.
pub type GridJob<'a> = (&'a SubscriptionTable, SimOptions);

/// Runs a batch of simulations across all available cores, preserving job
/// order in the results.
///
/// Each simulation is single-threaded and independent (it builds its own
/// proxy fleet), so the grid parallelizes perfectly; the paper's largest
/// sweep (the β tuning of §5.1: 126 runs) completes in seconds.
///
/// # Errors
///
/// Returns the first simulation error encountered (the remaining jobs are
/// still drained).
pub fn run_grid(
    workload: &Workload,
    costs: &FetchCosts,
    jobs: &[GridJob<'_>],
) -> Result<Vec<SimResult>, ExperimentError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<SimResult, pscd_sim::SimError>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    return;
                }
                let (subs, options) = &jobs[i];
                let r = simulate(workload, subs, costs, options);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("grid workers do not panic");

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every job ran").map_err(ExperimentError::from))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;

    #[test]
    fn grid_matches_serial_runs() {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let options = [
            SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sub, 0.01),
        ];
        let jobs: Vec<GridJob> = options.iter().map(|&o| (&subs, o)).collect();
        let parallel = run_grid(&w, &costs, &jobs).unwrap();
        for (job, out) in jobs.iter().zip(&parallel) {
            let serial = simulate(&w, job.0, &costs, &job.1).unwrap();
            assert_eq!(&serial, out);
        }
    }

    #[test]
    fn empty_grid_is_empty() {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        assert!(run_grid(&w, &costs, &[]).unwrap().is_empty());
    }

    #[test]
    fn errors_propagate() {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(3); // wrong size
        let jobs: Vec<GridJob> = vec![(&subs, SimOptions::at_capacity(StrategyKind::Sub, 0.05))];
        assert!(run_grid(&w, &costs, &jobs).is_err());
    }
}
