//! Parallel execution of simulation grids.
//!
//! Built on [`pscd_sim::pool`], the same worker-pool primitives the
//! simulator's intra-run sharding uses, so the two layers of parallelism
//! share one implementation of work distribution and ordering.

use pscd_sim::pool::{effective_threads, parallel_indexed};
use pscd_sim::{simulate, SimOptions, SimResult};
use pscd_topology::FetchCosts;
use pscd_types::SubscriptionTable;
use pscd_workload::Workload;

use crate::ExperimentError;

/// One cell of a simulation grid: a subscription table (one per
/// subscription quality) plus the run options.
pub type GridJob<'a> = (&'a SubscriptionTable, SimOptions);

/// Runs a batch of simulations across all available cores, preserving job
/// order in the results.
///
/// Each simulation is independent (it builds its own proxy fleet), so the
/// grid parallelizes perfectly; the paper's largest sweep (the β tuning of
/// §5.1: 126 runs) completes in seconds. Equivalent to
/// [`run_grid_threads`] with `threads = 0` (auto).
///
/// # Errors
///
/// Returns the first simulation error encountered (the remaining jobs are
/// still drained).
pub fn run_grid(
    workload: &Workload,
    costs: &FetchCosts,
    jobs: &[GridJob<'_>],
) -> Result<Vec<SimResult>, ExperimentError> {
    run_grid_threads(workload, costs, jobs, 0)
}

/// [`run_grid`] with an explicit pool size: `0` = auto (machine
/// parallelism), `1` = serial, `n` = exactly `n` workers.
///
/// Grid-level workers compose with intra-run sharding (each job's
/// [`SimOptions::threads`]); sweeps normally keep jobs sequential and
/// parallelize across cells here instead, which avoids oversubscription.
///
/// # Errors
///
/// Returns the first simulation error encountered (the remaining jobs are
/// still drained).
pub fn run_grid_threads(
    workload: &Workload,
    costs: &FetchCosts,
    jobs: &[GridJob<'_>],
    threads: usize,
) -> Result<Vec<SimResult>, ExperimentError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let threads = effective_threads(threads, jobs.len());
    parallel_indexed(jobs.len(), threads, |i| {
        let (subs, options) = &jobs[i];
        simulate(workload, subs, costs, options)
    })
    .into_iter()
    .map(|r| r.map_err(ExperimentError::from))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;

    fn fixture() -> (Workload, SubscriptionTable, FetchCosts) {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        (w, subs, costs)
    }

    #[test]
    fn grid_matches_serial_runs() {
        let (w, subs, costs) = fixture();
        let options = [
            SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sub, 0.01),
        ];
        let jobs: Vec<GridJob> = options.iter().map(|&o| (&subs, o)).collect();
        let parallel = run_grid(&w, &costs, &jobs).unwrap();
        for (job, out) in jobs.iter().zip(&parallel) {
            let serial = simulate(&w, job.0, &costs, &job.1).unwrap();
            assert_eq!(&serial, out);
        }
    }

    #[test]
    fn pool_size_does_not_change_results() {
        let (w, subs, costs) = fixture();
        let options = [
            SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sub, 0.05),
            // A cell that itself shards: grid workers and intra-run
            // shard workers must compose without changing totals.
            SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05).with_threads(3),
        ];
        let jobs: Vec<GridJob> = options.iter().map(|&o| (&subs, o)).collect();
        let serial = run_grid_threads(&w, &costs, &jobs, 1).unwrap();
        for threads in [0, 2, 4] {
            let pooled = run_grid_threads(&w, &costs, &jobs, threads).unwrap();
            assert_eq!(serial, pooled, "grid threads={threads}");
        }
    }

    #[test]
    fn empty_grid_is_empty() {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        assert!(run_grid(&w, &costs, &[]).unwrap().is_empty());
    }

    #[test]
    fn errors_propagate() {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(3); // wrong size
        let jobs: Vec<GridJob> = vec![(&subs, SimOptions::at_capacity(StrategyKind::Sub, 0.05))];
        assert!(run_grid(&w, &costs, &jobs).is_err());
    }
}
