//! Parallel execution of simulation grids.
//!
//! Built on [`pscd_sim::pool`], the same worker-pool primitives the
//! simulator's intra-run sharding uses, so the two layers of parallelism
//! share one implementation of work distribution and ordering.
//!
//! A grid runs over **compiled** traces: every cell of a strategy ×
//! capacity × scheme sweep references the same immutable
//! [`CompiledTrace`], so the timeline merge, fan-out resolution and
//! lineage analysis are paid once per workload rather than once per cell
//! (see [`ExperimentContext::compiled`](crate::ExperimentContext::compiled)).

use pscd_sim::pool::{effective_threads, parallel_indexed};
use pscd_sim::trace::CompiledTrace;
use pscd_sim::{simulate_compiled, SimOptions, SimResult};
use pscd_topology::FetchCosts;

use crate::ExperimentError;

/// One cell of a simulation grid: a compiled trace (one per workload ×
/// subscription quality, shared by reference across cells) plus the run
/// options.
pub type GridJob<'a> = (&'a CompiledTrace, SimOptions);

/// Runs a batch of simulations across all available cores, preserving job
/// order in the results.
///
/// Each cell replays its (shared, immutable) compiled trace through its
/// own proxy fleet, so the grid parallelizes perfectly; the paper's
/// largest sweep (the β tuning of §5.1: 126 runs) completes in seconds.
/// Equivalent to [`run_grid_threads`] with `threads = 0` (auto).
///
/// # Errors
///
/// Returns the first simulation error encountered (the remaining jobs are
/// still drained).
pub fn run_grid(
    costs: &FetchCosts,
    jobs: &[GridJob<'_>],
) -> Result<Vec<SimResult>, ExperimentError> {
    run_grid_threads(costs, jobs, 0)
}

/// [`run_grid`] with an explicit pool size: `0` = auto (machine
/// parallelism), `1` = serial, `n` = exactly `n` workers.
///
/// Grid-level workers compose with intra-run sharding (each job's
/// [`SimOptions::threads`]); sweeps normally keep jobs sequential and
/// parallelize across cells here instead, which avoids oversubscription.
///
/// # Errors
///
/// Returns the first simulation error encountered (the remaining jobs are
/// still drained).
pub fn run_grid_threads(
    costs: &FetchCosts,
    jobs: &[GridJob<'_>],
    threads: usize,
) -> Result<Vec<SimResult>, ExperimentError> {
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    if pscd_sim::pool::spans::is_enabled() {
        // Under `repro --trace` each grid cell shows up as one pool task
        // span; label the fan-out so the timeline reads correctly.
        pscd_sim::pool::spans::set_phase("grid.cell");
    }
    let threads = effective_threads(threads, jobs.len());
    parallel_indexed(jobs.len(), threads, |i| {
        let (trace, options) = &jobs[i];
        simulate_compiled(trace, costs, options)
    })
    .into_iter()
    .map(|r| r.map_err(ExperimentError::from))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;
    use pscd_sim::simulate;
    use pscd_topology::FetchCosts;
    use pscd_workload::Workload;

    fn fixture() -> (Workload, CompiledTrace, FetchCosts) {
        let w = Workload::generate(&pscd_workload::WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        (w, trace, costs)
    }

    #[test]
    fn grid_matches_serial_runs() {
        let (w, trace, costs) = fixture();
        let subs = w.subscriptions(1.0).unwrap();
        let options = [
            SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sub, 0.01),
        ];
        let jobs: Vec<GridJob> = options.iter().map(|&o| (&trace, o)).collect();
        let parallel = run_grid(&costs, &jobs).unwrap();
        for (job, out) in jobs.iter().zip(&parallel) {
            // The grid (compiled path) must match the raw-input path.
            let serial = simulate(&w, &subs, &costs, &job.1).unwrap();
            assert_eq!(&serial, out);
        }
    }

    #[test]
    fn pool_size_does_not_change_results() {
        let (_w, trace, costs) = fixture();
        let options = [
            SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            SimOptions::at_capacity(StrategyKind::Sub, 0.05),
            // A cell that itself shards: grid workers and intra-run
            // shard workers must compose without changing totals.
            SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05).with_threads(3),
        ];
        let jobs: Vec<GridJob> = options.iter().map(|&o| (&trace, o)).collect();
        let serial = run_grid_threads(&costs, &jobs, 1).unwrap();
        for threads in [0, 2, 4] {
            let pooled = run_grid_threads(&costs, &jobs, threads).unwrap();
            assert_eq!(serial, pooled, "grid threads={threads}");
        }
    }

    #[test]
    fn empty_grid_is_empty() {
        let (_w, _trace, costs) = fixture();
        assert!(run_grid(&costs, &[]).unwrap().is_empty());
    }

    #[test]
    fn errors_propagate() {
        let (_w, trace, _costs) = fixture();
        let bad_costs = FetchCosts::uniform(3); // wrong size
        let jobs: Vec<GridJob> = vec![(&trace, SimOptions::at_capacity(StrategyKind::Sub, 0.05))];
        assert!(run_grid(&bad_costs, &jobs).is_err());
    }
}
