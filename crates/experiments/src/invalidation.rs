//! Freshness extension: the cost of invalidating superseded versions.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, PAPER_BETA,
};

/// Hit ratios with and without stale-version invalidation (NEWS and
/// ALTERNATIVE, SQ = 1, 5% capacity).
///
/// The paper treats every published version as an independent page and
/// never drops superseded copies; a production news cache must. This
/// experiment quantifies the *freshness tax*: how many hits each strategy
/// loses when the cache drops an article's previous version the moment a
/// new one is published (requests to the old version then miss). The tax
/// can even be negative — dropping dead weight frees space for better
/// placements — which is exactly the kind of effect worth measuring.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidationStudy {
    /// `(trace, strategy, H without invalidation, H with invalidation)`.
    pub rows: Vec<(Trace, String, f64, f64)>,
}

impl InvalidationStudy {
    /// Runs the study.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = [
            StrategyKind::GdStar { beta: PAPER_BETA },
            StrategyKind::Sub,
            StrategyKind::Sg2 { beta: PAPER_BETA },
            StrategyKind::dc_lap(PAPER_BETA),
        ];
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            let mut jobs = Vec::new();
            for &kind in &lineup {
                jobs.push((&*compiled, SimOptions::at_capacity(kind, 0.05)));
                jobs.push((
                    &*compiled,
                    SimOptions::at_capacity(kind, 0.05).with_invalidation(),
                ));
            }
            let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
            for pair in results.chunks(2) {
                rows.push((
                    trace,
                    pair[0].strategy.clone(),
                    pair[0].hit_ratio(),
                    pair[1].hit_ratio(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// `(without, with)` hit ratios for one strategy.
    pub fn hit_ratios(&self, trace: Trace, strategy: &str) -> Option<(f64, f64)> {
        self.rows
            .iter()
            .find(|(t, n, _, _)| *t == trace && n == strategy)
            .map(|&(_, _, a, b)| (a, b))
    }

    /// The freshness tax in percentage points (without − with).
    pub fn tax_points(&self, trace: Trace, strategy: &str) -> Option<f64> {
        self.hit_ratios(trace, strategy)
            .map(|(a, b)| 100.0 * (a - b))
    }
}

impl fmt::Display for InvalidationStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Extension: stale-version invalidation (capacity = 5%, SQ = 1)\n"
        )?;
        let mut table = TextTable::new(
            [
                "trace",
                "strategy",
                "keep stale",
                "invalidate",
                "tax (points)",
            ]
            .map(str::to_owned)
            .to_vec(),
        );
        for (trace, name, without, with) in &self.rows {
            table.add_row(vec![
                trace.name().to_owned(),
                name.clone(),
                pct(*without),
                pct(*with),
                format!("{:.1}", 100.0 * (without - with)),
            ]);
        }
        writeln!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freshness_tax_is_bounded_and_reported() {
        let ctx = ExperimentContext::scaled(0.01).unwrap();
        let study = InvalidationStudy::run(&ctx).unwrap();
        assert_eq!(study.rows.len(), 8);
        for trace in [Trace::News, Trace::Alternative] {
            for name in ["GD*", "SUB", "SG2", "DC-LAP"] {
                let (without, with) = study.hit_ratios(trace, name).unwrap();
                // Both runs are valid hit ratios. The tax is *usually*
                // positive (stale copies would still serve requests), but
                // can be negative: dropping dead weight frees space for
                // better placements, so no sign assertion here.
                assert!((0.0..=1.0).contains(&without), "{name}");
                assert!((0.0..=1.0).contains(&with), "{name}");
                assert!(study.tax_points(trace, name).unwrap().is_finite());
            }
        }
        assert!(study.hit_ratios(Trace::News, "missing").is_none());
        let rendered = study.to_string();
        assert!(rendered.contains("invalidate"));
        assert!(rendered.contains("tax"));
    }
}
