//! Figure 3: hit ratios of Dual-Methods and Dual-Caches algorithms.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, TraceRow,
    CAPACITIES, PAPER_BETA,
};

/// Figure 3 of the paper: GD\* against the dual family (DM, DC-FP, DC-AP,
/// DC-LAP) across the three capacity settings on the NEWS trace (SQ = 1).
/// The paper notes the observations also hold for ALTERNATIVE, so both
/// traces are measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// `(trace, capacity fraction, [(strategy, hit ratio)])` rows.
    pub rows: Vec<TraceRow>,
}

impl Fig3 {
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = StrategyKind::figure3_lineup(PAPER_BETA);
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            let compiled = ctx.compiled(trace, 1.0)?;
            for &capacity in &CAPACITIES {
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&*compiled, SimOptions::at_capacity(kind, capacity)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                rows.push((
                    trace,
                    capacity,
                    results
                        .into_iter()
                        .map(|r| (r.strategy.clone(), r.hit_ratio()))
                        .collect(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// The hit ratio of one strategy in one row; `None` if absent.
    pub fn hit_ratio(&self, trace: Trace, capacity: f64, strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, c, _)| *t == trace && *c == capacity)
            .and_then(|(_, _, cells)| {
                cells
                    .iter()
                    .find(|(name, _)| name == strategy)
                    .map(|&(_, h)| h)
            })
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Figure 3: hit ratio (%) of Dual-Methods and Dual-Caches (SQ = 1)\n"
        )?;
        for trace in [Trace::News, Trace::Alternative] {
            writeln!(f, "### {} trace", trace.name())?;
            let names: Vec<String> = self
                .rows
                .iter()
                .find(|(t, _, _)| *t == trace)
                .map(|(_, _, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
                .unwrap_or_default();
            let mut headers = vec!["capacity".to_owned()];
            headers.extend(names.iter().cloned());
            let mut table = TextTable::new(headers);
            for (t, capacity, cells) in &self.rows {
                if t != &trace {
                    continue;
                }
                let mut row = vec![format!("{:.0}%", capacity * 100.0)];
                row.extend(cells.iter().map(|&(_, h)| pct(h)));
                table.add_row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_orders_dual_family() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let fig = Fig3::run(&ctx).unwrap();
        assert_eq!(fig.rows.len(), 6);
        // Every dual strategy should beat GD* at 5% on both traces (the
        // paper's headline claim for figure 3).
        for trace in [Trace::News, Trace::Alternative] {
            let gd = fig.hit_ratio(trace, 0.05, "GD*").unwrap();
            for name in ["DM", "DC-FP", "DC-AP", "DC-LAP"] {
                let h = fig.hit_ratio(trace, 0.05, name).unwrap();
                assert!(h > gd, "{name} ({h}) <= GD* ({gd}) on {}", trace.name());
            }
        }
        let rendered = fig.to_string();
        assert!(rendered.contains("Figure 3"));
        assert!(rendered.contains("DC-LAP"));
        assert!(fig.hit_ratio(Trace::News, 0.5, "GD*").is_none());
    }
}
