//! CSV export of experiment results, for plotting.

use crate::{
    BetaSweep, ClassicBaselines, CoverageSweep, CrashRecovery, Fig3, Fig4, Fig5, Fig6, Fig7,
    LapBoundsSweep, PartitionSweep, Table2, Trace, TraceRow,
};

/// An experiment result that can be exported as one or more CSV files.
///
/// Each file is returned as `(basename, contents)`; the `repro` binary
/// writes them under the directory given with `--csv DIR`.
pub trait ToCsv {
    /// Renders the result as named CSV files.
    fn to_csv(&self) -> Vec<(String, String)>;
}

fn fmt_ratio(h: f64) -> String {
    format!("{:.4}", 100.0 * h)
}

/// Helper: a (trace, x, per-strategy) grid as one CSV per trace.
fn grid_csv(
    stem: &str,
    x_name: &str,
    rows: &[TraceRow],
    fmt_x: impl Fn(f64) -> String,
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for trace in [Trace::News, Trace::Alternative] {
        let mut lines = Vec::new();
        let names: Vec<String> = match rows.iter().find(|(t, _, _)| *t == trace) {
            Some((_, _, cells)) => cells.iter().map(|(n, _)| n.clone()).collect(),
            None => continue,
        };
        lines.push(format!("{x_name},{}", names.join(",")));
        for (t, x, cells) in rows {
            if t != &trace {
                continue;
            }
            let vals: Vec<String> = cells.iter().map(|&(_, h)| fmt_ratio(h)).collect();
            lines.push(format!("{},{}", fmt_x(*x), vals.join(",")));
        }
        out.push((
            format!("{stem}_{}.csv", trace.name().to_lowercase()),
            lines.join("\n") + "\n",
        ));
    }
    out
}

/// Helper: hourly series with one column per strategy.
fn hourly_csv(stem: &str, series: &[(String, Vec<Option<f64>>)]) -> (String, String) {
    let names: Vec<&str> = series.iter().map(|(n, _)| n.as_str()).collect();
    let hours = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut lines = vec![format!("hour,{}", names.join(","))];
    for h in 0..hours {
        let vals: Vec<String> = series
            .iter()
            .map(|(_, s)| {
                s.get(h)
                    .copied()
                    .flatten()
                    .map(|v| format!("{v:.4}"))
                    .unwrap_or_default()
            })
            .collect();
        lines.push(format!("{h},{}", vals.join(",")));
    }
    (format!("{stem}.csv"), lines.join("\n") + "\n")
}

impl ToCsv for Fig3 {
    fn to_csv(&self) -> Vec<(String, String)> {
        grid_csv("fig3", "capacity", &self.rows, |c| format!("{c}"))
    }
}

impl ToCsv for Fig4 {
    fn to_csv(&self) -> Vec<(String, String)> {
        grid_csv("fig4", "capacity", &self.rows, |c| format!("{c}"))
    }
}

impl ToCsv for Fig5 {
    fn to_csv(&self) -> Vec<(String, String)> {
        grid_csv("fig5", "sq", &self.rows, |q| format!("{q}"))
    }
}

impl ToCsv for Fig6 {
    fn to_csv(&self) -> Vec<(String, String)> {
        [Trace::News, Trace::Alternative]
            .into_iter()
            .map(|trace| {
                let series: Vec<(String, Vec<Option<f64>>)> = self
                    .series
                    .iter()
                    .filter(|(t, _, _)| *t == trace)
                    .map(|(_, n, s)| (n.clone(), s.clone()))
                    .collect();
                hourly_csv(&format!("fig6_{}", trace.name().to_lowercase()), &series)
            })
            .collect()
    }
}

impl ToCsv for Fig7 {
    fn to_csv(&self) -> Vec<(String, String)> {
        use pscd_broker::PushScheme;
        [
            (PushScheme::Always, "always"),
            (PushScheme::WhenNecessary, "when_necessary"),
        ]
        .into_iter()
        .map(|(scheme, label)| {
            let series: Vec<(String, Vec<Option<f64>>)> = self
                .series
                .iter()
                .filter(|(s, _, _)| *s == scheme)
                .map(|(_, n, pages)| (n.clone(), pages.iter().map(|&p| Some(p as f64)).collect()))
                .collect();
            hourly_csv(&format!("fig7_{label}"), &series)
        })
        .collect()
    }
}

impl ToCsv for Table2 {
    fn to_csv(&self) -> Vec<(String, String)> {
        let names: Vec<String> = self
            .rows
            .first()
            .map(|(_, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
            .unwrap_or_default();
        let mut lines = vec![format!("alpha,{}", names.join(","))];
        for (trace, cells) in &self.rows {
            let vals: Vec<String> = cells.iter().map(|&(_, v)| format!("{v:.2}")).collect();
            lines.push(format!("{},{}", trace.alpha(), vals.join(",")));
        }
        vec![("table2.csv".to_owned(), lines.join("\n") + "\n")]
    }
}

impl ToCsv for BetaSweep {
    fn to_csv(&self) -> Vec<(String, String)> {
        let mut lines = vec!["trace,algorithm,capacity,beta,hit_ratio_pct".to_owned()];
        for c in &self.cells {
            lines.push(format!(
                "{},{},{},{},{}",
                c.trace.name(),
                c.algorithm,
                c.capacity,
                c.beta,
                fmt_ratio(c.hit_ratio)
            ));
        }
        vec![("beta_sweep.csv".to_owned(), lines.join("\n") + "\n")]
    }
}

impl ToCsv for ClassicBaselines {
    fn to_csv(&self) -> Vec<(String, String)> {
        grid_csv("classic", "capacity", &self.rows, |c| format!("{c}"))
    }
}

impl ToCsv for CoverageSweep {
    fn to_csv(&self) -> Vec<(String, String)> {
        grid_csv("coverage", "coverage", &self.rows, |c| format!("{c}"))
    }
}

impl ToCsv for LapBoundsSweep {
    fn to_csv(&self) -> Vec<(String, String)> {
        let mut lines = vec!["trace,lo,hi,hit_ratio_pct".to_owned()];
        for (trace, (lo, hi), h) in &self.cells {
            lines.push(format!("{},{lo},{hi},{}", trace.name(), fmt_ratio(*h)));
        }
        vec![("lap_bounds.csv".to_owned(), lines.join("\n") + "\n")]
    }
}

impl ToCsv for PartitionSweep {
    fn to_csv(&self) -> Vec<(String, String)> {
        let mut lines = vec!["trace,pc_fraction,hit_ratio_pct".to_owned()];
        for (trace, p, h) in &self.cells {
            lines.push(format!("{},{p},{}", trace.name(), fmt_ratio(*h)));
        }
        vec![("partition.csv".to_owned(), lines.join("\n") + "\n")]
    }
}

impl ToCsv for CrashRecovery {
    fn to_csv(&self) -> Vec<(String, String)> {
        vec![hourly_csv("crash_recovery", &self.series)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExperimentContext;

    #[test]
    fn grid_and_hourly_exports_are_well_formed() {
        let ctx = ExperimentContext::scaled(0.003).unwrap();
        let fig4 = Fig4::run(&ctx).unwrap();
        let files = fig4.to_csv();
        assert_eq!(files.len(), 2);
        assert!(files.iter().any(|(n, _)| n == "fig4_news.csv"));
        for (_, content) in &files {
            let mut lines = content.lines();
            let header = lines.next().unwrap();
            assert!(header.starts_with("capacity,"));
            let cols = header.split(',').count();
            for line in lines {
                assert_eq!(line.split(',').count(), cols, "ragged row: {line}");
            }
        }

        let fig6 = Fig6::run(&ctx).unwrap();
        let files = fig6.to_csv();
        assert_eq!(files.len(), 2);
        let (_, content) = &files[0];
        assert!(content.starts_with("hour,"));
        // 168 hours + header.
        assert_eq!(content.lines().count(), 169);

        let t2 = Table2::run(&ctx).unwrap();
        let files = t2.to_csv();
        assert_eq!(files[0].0, "table2.csv");
        assert_eq!(files[0].1.lines().count(), 3);
    }

    #[test]
    fn sweep_exports_have_one_row_per_cell() {
        let ctx = ExperimentContext::scaled(0.003).unwrap();
        let lap = LapBoundsSweep::run(&ctx).unwrap();
        let (_, content) = &lap.to_csv()[0];
        assert_eq!(content.lines().count(), 1 + lap.cells.len());
        let part = PartitionSweep::run(&ctx).unwrap();
        let (_, content) = &part.to_csv()[0];
        assert_eq!(content.lines().count(), 1 + part.cells.len());
    }
}
