//! Figure 5: influence of subscription quality.

use std::fmt;

use pscd_core::StrategyKind;
use pscd_sim::SimOptions;

use crate::{
    pct, run_grid_threads, ExperimentContext, ExperimentError, TextTable, Trace, TraceRow,
    PAPER_BETA, QUALITIES,
};

/// Figure 5 of the paper: hit ratios of GD\*, SUB, SG1, SG2, SR and DC-LAP
/// as subscription quality SQ varies over {0.25, 0.5, 0.75, 1}, at 5%
/// capacity, on both traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// `(trace, SQ, [(strategy, hit ratio)])` rows.
    pub rows: Vec<TraceRow>,
}

impl Fig5 {
    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn run(ctx: &ExperimentContext) -> Result<Self, ExperimentError> {
        let lineup = StrategyKind::figure4_lineup(PAPER_BETA);
        let mut rows = Vec::new();
        for trace in [Trace::News, Trace::Alternative] {
            for &quality in &QUALITIES {
                let compiled = ctx.compiled(trace, quality)?;
                let jobs: Vec<_> = lineup
                    .iter()
                    .map(|&kind| (&*compiled, SimOptions::at_capacity(kind, 0.05)))
                    .collect();
                let results = run_grid_threads(ctx.costs(), &jobs, ctx.threads())?;
                rows.push((
                    trace,
                    quality,
                    results
                        .into_iter()
                        .map(|r| (r.strategy.clone(), r.hit_ratio()))
                        .collect(),
                ));
            }
        }
        Ok(Self { rows })
    }

    /// The hit ratio of one strategy at one quality; `None` if absent.
    pub fn hit_ratio(&self, trace: Trace, quality: f64, strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(t, q, _)| *t == trace && *q == quality)
            .and_then(|(_, _, cells)| {
                cells
                    .iter()
                    .find(|(name, _)| name == strategy)
                    .map(|&(_, h)| h)
            })
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "## Figure 5: hit ratio (%) vs subscription quality (capacity = 5%)\n"
        )?;
        for (label, trace) in [("(a)", Trace::News), ("(b)", Trace::Alternative)] {
            writeln!(f, "### {label} {} trace", trace.name())?;
            let names: Vec<String> = self
                .rows
                .iter()
                .find(|(t, _, _)| *t == trace)
                .map(|(_, _, cells)| cells.iter().map(|(n, _)| n.clone()).collect())
                .unwrap_or_default();
            let mut headers = vec!["SQ".to_owned()];
            headers.extend(names.iter().cloned());
            let mut table = TextTable::new(headers);
            for (t, quality, cells) in &self.rows {
                if t != &trace {
                    continue;
                }
                let mut row = vec![format!("{quality}")];
                row.extend(cells.iter().map(|&(_, h)| pct(h)));
                table.add_row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_sensitivity_shapes() {
        let ctx = ExperimentContext::scaled(0.004).unwrap();
        let fig = Fig5::run(&ctx).unwrap();
        assert_eq!(fig.rows.len(), 8);
        for trace in [Trace::News, Trace::Alternative] {
            // GD* ignores subscriptions entirely: identical across SQ.
            let gd_1 = fig.hit_ratio(trace, 1.0, "GD*").unwrap();
            let gd_25 = fig.hit_ratio(trace, 0.25, "GD*").unwrap();
            assert!((gd_1 - gd_25).abs() < 1e-12);
            // SR is the most SQ-sensitive: it loses more than SG1 does when
            // SQ drops from 1 to 0.25 (the paper's headline for fig. 5).
            let sr_drop = fig.hit_ratio(trace, 1.0, "SR").unwrap()
                - fig.hit_ratio(trace, 0.25, "SR").unwrap();
            let sg1_drop = fig.hit_ratio(trace, 1.0, "SG1").unwrap()
                - fig.hit_ratio(trace, 0.25, "SG1").unwrap();
            assert!(
                sr_drop > sg1_drop,
                "{}: SR drop {sr_drop} <= SG1 drop {sg1_drop}",
                trace.name()
            );
            // SG1 and DC-LAP stay useful at the lowest quality.
            let gd = fig.hit_ratio(trace, 0.25, "GD*").unwrap();
            assert!(fig.hit_ratio(trace, 0.25, "SG1").unwrap() > gd);
            assert!(fig.hit_ratio(trace, 0.25, "DC-LAP").unwrap() > gd);
        }
        assert!(fig.to_string().contains("Figure 5"));
    }
}
