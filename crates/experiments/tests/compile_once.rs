//! Asserts the tentpole guarantee of the compiled-trace layer: a grid
//! compiles each workload's trace exactly once, no matter how many cells,
//! exhibits, or repeat runs replay it.
//!
//! This lives in its own integration-test binary on purpose: the compile
//! counter is process-global, and a dedicated process is the only way to
//! observe exact deltas without racing other tests.

use std::sync::Arc;

use pscd_core::StrategyKind;
use pscd_experiments::{run_grid_threads, ExperimentContext, Fig3, Fig4, Trace, CAPACITIES};
use pscd_sim::{CompiledTrace, SimOptions};

fn compile_count() -> u64 {
    CompiledTrace::compile_count()
}

#[test]
fn grids_compile_each_workload_exactly_once() {
    let ctx = ExperimentContext::scaled(0.003).unwrap().with_threads(2);
    let before = compile_count();

    // A grid over one compiled trace: many cells, one compilation.
    let compiled = ctx.compiled(Trace::News, 1.0).unwrap();
    assert_eq!(compile_count() - before, 1, "first use compiles once");
    let lineup = [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta: 2.0 },
    ];
    let mut jobs = Vec::new();
    for &kind in &lineup {
        for &capacity in &CAPACITIES {
            jobs.push((&*compiled, SimOptions::at_capacity(kind, capacity)));
        }
    }
    let first = run_grid_threads(ctx.costs(), &jobs, ctx.threads()).unwrap();
    let second = run_grid_threads(ctx.costs(), &jobs, ctx.threads()).unwrap();
    assert_eq!(first, second, "replays of one compiled trace agree");
    assert_eq!(
        compile_count() - before,
        1,
        "grid cells and repeat grids replay, never recompile"
    );

    // The context cache returns the same compilation to later callers.
    let again = ctx.compiled(Trace::News, 1.0).unwrap();
    assert!(Arc::ptr_eq(&compiled, &again));
    assert_eq!(compile_count() - before, 1);

    // A full exhibit touches News and Alternative at SQ = 1: exactly one
    // *new* compilation (Alternative; News is already cached).
    let fig3 = Fig3::run(&ctx).unwrap();
    assert!(!fig3.rows.is_empty());
    assert_eq!(
        compile_count() - before,
        2,
        "Fig3 adds only the Alternative trace"
    );

    // A second exhibit over the same (trace, quality) pairs compiles
    // nothing at all.
    let fig4 = Fig4::run(&ctx).unwrap();
    assert!(!fig4.rows.is_empty());
    assert_eq!(
        compile_count() - before,
        2,
        "Fig4 replays the cached compilations"
    );
}
