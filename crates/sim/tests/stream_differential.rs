//! The streaming-replay differential suite: pulling compiled windows
//! lazily from the workload config ([`StreamingTrace`]) must be bit-for-
//! bit indistinguishable from compiling the whole timeline up front
//! ([`CompiledTrace`]) — same compiled events, same `SimResult` (totals,
//! hourly series, AND per-proxy accounting) — for every strategy the
//! paper evaluates, at every window size, at every thread count, with
//! crashes landing exactly on window seams and invalidation lineage
//! spanning them.

use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::sample::select;

use pscd_core::StrategyKind;
use pscd_sim::{
    simulate_compiled, simulate_streamed, simulate_streamed_prefetched, CompiledEventKind,
    CompiledTrace, CrashPlan, PrefetchOptions, ReplaySource, SimOptions, StreamingTrace,
};
use pscd_topology::FetchCosts;
use pscd_types::SimTime;
use pscd_workload::{Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines —
/// the same twelve-strategy lineup as the other differential suites.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

fn config() -> WorkloadConfig {
    WorkloadConfig::news_scaled(0.004)
}

/// The monolithic reference at subscription quality 0.8 (partial quality
/// exercises the non-trivial subscription seed derivation too).
fn reference() -> &'static (CompiledTrace, FetchCosts) {
    static FIX: OnceLock<(CompiledTrace, FetchCosts)> = OnceLock::new();
    FIX.get_or_init(|| {
        let w = Workload::generate(&config()).unwrap();
        let subs = w.subscriptions(0.8).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        (trace, costs)
    })
}

fn streaming(window: SimTime) -> StreamingTrace {
    StreamingTrace::new(&config(), 0.8, window, 1).unwrap()
}

fn streaming_lookahead(window: SimTime, depth: usize) -> StreamingTrace {
    StreamingTrace::with_lookahead(&config(), 0.8, window, 1, depth).unwrap()
}

/// The headline proof: for all 12 strategies and three window sizes, a
/// streamed replay equals the monolithic one in every `SimResult` field —
/// `per_server` included, so per-proxy accounting is covered, not just
/// the totals.
#[test]
fn streamed_replay_is_bit_identical_for_every_strategy_and_window() {
    let (trace, costs) = reference();
    let windows = [
        SimTime::from_hours(3),
        SimTime::from_hours(25),
        SimTime::from_days(2),
    ];
    for window in windows {
        let stream = streaming(window);
        assert!(stream.window_count() > 1, "window {window:?} must tile");
        for kind in all_strategies() {
            let options = SimOptions::at_capacity(kind, 0.05);
            let compiled = simulate_compiled(trace, costs, &options).unwrap();
            let streamed = simulate_streamed(&stream, costs, &options).unwrap();
            assert_eq!(
                compiled,
                streamed,
                "{} diverged at window {window:?}",
                kind.name()
            );
            assert_eq!(compiled.hourly, streamed.hourly);
            assert_eq!(compiled.per_server, streamed.per_server);
        }
    }
}

/// Sharded streaming (each worker opens its own window pass) merges to
/// the same result as the monolithic sharded replay.
#[test]
fn sharded_streaming_matches_at_every_thread_count() {
    let (trace, costs) = reference();
    let stream = streaming(SimTime::from_hours(13));
    for kind in [StrategyKind::Sg2 { beta: 2.0 }, StrategyKind::dc_lap(2.0)] {
        for threads in [2usize, 4, 7] {
            let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
            let compiled = simulate_compiled(trace, costs, &options).unwrap();
            let streamed = simulate_streamed(&stream, costs, &options).unwrap();
            assert_eq!(
                compiled,
                streamed,
                "{} diverged at threads={threads}",
                kind.name()
            );
        }
    }
}

/// The materialized concatenation of the streamed windows is `==` to the
/// monolithic compile — events, CSR fan-out tables, and meta.
#[test]
fn materialized_windows_equal_monolithic_compile() {
    let (trace, _) = reference();
    for window in [
        SimTime::from_hours(1),
        SimTime::from_hours(36),
        SimTime::from_days(5),
    ] {
        let stream = streaming(window);
        assert_eq!(&stream.materialize(), trace, "window = {window:?}");
    }
}

/// A crash scheduled exactly at a window seam fires identically in both
/// paths: the seam-adjacent windows agree on which events precede the
/// crash instant, so the crash consumes the same victims either way.
#[test]
fn crash_exactly_at_a_window_seam_is_seam_safe() {
    let (trace, costs) = reference();
    let window = SimTime::from_days(1);
    let stream = streaming(window);
    // Day 2 is exactly the seam between windows 1 and 2; also test a
    // mid-window crash and a crash in the final window.
    for crash_at in [
        SimTime::from_days(2),
        SimTime::from_hours(53),
        SimTime::from_days(6),
    ] {
        for fraction in [0.5, 1.0] {
            let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05)
                .with_crash(CrashPlan {
                    time: crash_at,
                    fraction,
                    seed: 42,
                });
            let compiled = simulate_compiled(trace, costs, &options).unwrap();
            let streamed = simulate_streamed(&stream, costs, &options).unwrap();
            assert_eq!(
                compiled, streamed,
                "crash at {crash_at:?} fraction {fraction} diverged"
            );
            // Sharded too: the crash logic runs per shard worker.
            let sharded = simulate_streamed(&stream, costs, &options.with_threads(3)).unwrap();
            assert_eq!(compiled, sharded);
        }
    }
}

/// Stale-version invalidation across window boundaries: with 1-hour
/// windows, modified versions of the same origin land in different
/// windows, so the carried [`VersionHeads`] must reproduce the exact
/// supersedence chain of the monolithic compile.
///
/// [`VersionHeads`]: pscd_sim::resolve::VersionHeads
#[test]
fn invalidation_lineage_spans_window_boundaries() {
    let (trace, costs) = reference();
    let stream = streaming(SimTime::from_hours(1));
    // Sanity: supersedence must actually cross windows in this fixture —
    // find a publish superseding a version published in an earlier window.
    let mut pass = stream.open();
    let mut window_of_publish = vec![u32::MAX; stream.meta().pages().len()];
    let mut crossings = 0usize;
    let mut k = 0u32;
    while let Some(w) = pass.next_window() {
        for ev in w.events() {
            if let CompiledEventKind::Publish { supersedes, .. } = ev.kind {
                if let Some(old) = supersedes {
                    if window_of_publish[old.as_usize()] != k {
                        crossings += 1;
                    }
                }
                window_of_publish[ev.page.as_usize()] = k;
            }
        }
        k += 1;
    }
    assert!(
        crossings > 0,
        "fixture has no cross-window supersedence; the test proves nothing"
    );
    for kind in [
        StrategyKind::Sub,
        StrategyKind::Sr,
        StrategyKind::dc_lap(2.0),
    ] {
        let options = SimOptions::at_capacity(kind, 0.05).with_invalidation();
        let compiled = simulate_compiled(trace, costs, &options).unwrap();
        let streamed = simulate_streamed(&stream, costs, &options).unwrap();
        assert_eq!(compiled, streamed, "{} diverged", kind.name());
    }
}

/// Tiny windows leave many interior windows empty; they must still tile
/// the timeline correctly (indices, ordinals) and replay identically.
#[test]
fn empty_windows_mid_stream_are_harmless() {
    let (trace, costs) = reference();
    let stream = streaming(SimTime::from_millis(10 * 60 * 1000));
    let mut pass = stream.open();
    let mut empty_interior = 0usize;
    let mut seen_nonempty = false;
    let mut total_events = 0usize;
    while let Some(w) = pass.next_window() {
        if w.is_empty() {
            if seen_nonempty {
                empty_interior += 1;
            }
        } else {
            seen_nonempty = true;
        }
        total_events += w.len();
    }
    assert!(
        empty_interior > 0,
        "fixture has no empty mid-stream windows; shrink the window"
    );
    assert_eq!(total_events, trace.len());
    let options = SimOptions::at_capacity(StrategyKind::Gds, 0.05);
    assert_eq!(
        simulate_compiled(trace, costs, &options).unwrap(),
        simulate_streamed(&stream, costs, &options).unwrap()
    );
}

/// The pipelined (compile-ahead) replay is bit-identical to the
/// monolithic reference — totals, hourly series, AND per-proxy byte
/// accounting — at every prefetch depth × consumer thread count. The
/// producer compiles windows ahead on its own thread while shard
/// consumers replay, so this is the proof that the overlap preserves
/// the serial window order's semantics exactly.
#[test]
fn pipelined_replay_is_bit_identical_at_every_depth_and_thread_count() {
    let (trace, costs) = reference();
    let window = SimTime::from_hours(13);
    for depth in [1usize, 2, 4] {
        let stream = streaming_lookahead(window, depth);
        let prefetch = PrefetchOptions::new(depth);
        for threads in [1usize, 2, 0] {
            for kind in [
                StrategyKind::GdStar { beta: 2.0 },
                StrategyKind::Sg2 { beta: 2.0 },
                StrategyKind::dc_lap(2.0),
            ] {
                let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
                let compiled = simulate_compiled(trace, costs, &options).unwrap();
                let pipelined =
                    simulate_streamed_prefetched(&stream, costs, &options, &prefetch).unwrap();
                assert_eq!(
                    compiled,
                    pipelined,
                    "{} diverged at depth={depth} threads={threads}",
                    kind.name()
                );
                assert_eq!(compiled.hourly, pipelined.hourly);
                assert_eq!(compiled.per_server, pipelined.per_server);
            }
        }
    }
}

/// A crash landing exactly on a window seam (day 2 with 1-day windows)
/// fires identically through the pipelined path at every depth — the
/// producer may already have compiled windows past the crash instant
/// when the consumer reaches it, and that lookahead must not change
/// which victims the crash consumes.
#[test]
fn pipelined_crash_exactly_at_a_window_seam_is_seam_safe() {
    let (trace, costs) = reference();
    let window = SimTime::from_days(1);
    for depth in [1usize, 2, 4] {
        let stream = streaming_lookahead(window, depth);
        let prefetch = PrefetchOptions::new(depth);
        for crash_at in [SimTime::from_days(2), SimTime::from_hours(53)] {
            let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05)
                .with_crash(CrashPlan {
                    time: crash_at,
                    fraction: 1.0,
                    seed: 42,
                });
            let compiled = simulate_compiled(trace, costs, &options).unwrap();
            let pipelined =
                simulate_streamed_prefetched(&stream, costs, &options, &prefetch).unwrap();
            assert_eq!(
                compiled, pipelined,
                "crash at {crash_at:?} depth {depth} diverged"
            );
            let sharded =
                simulate_streamed_prefetched(&stream, costs, &options.with_threads(3), &prefetch)
                    .unwrap();
            assert_eq!(compiled, sharded, "sharded crash at {crash_at:?} diverged");
        }
    }
}

/// The pipelined materialization (producer compiles ahead, consumer
/// concatenates) equals the monolithic compile — events, CSR fan-out
/// tables, and meta — including a depth larger than the window count.
#[test]
fn pipelined_materialization_equals_monolithic_compile() {
    let (trace, _) = reference();
    let window = SimTime::from_hours(36);
    for depth in [1usize, 3, 64] {
        let stream = streaming_lookahead(window, depth);
        assert_eq!(
            &stream.materialize_prefetched(&PrefetchOptions::new(depth)),
            trace,
            "depth = {depth}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Rotating differential: any (strategy, window size, thread count)
    /// triple replays bit-identically — through both the serial streaming
    /// pass and the pipelined prefetcher.
    #[test]
    fn any_strategy_window_thread_triple_matches(
        kind in select(all_strategies().to_vec()),
        window_hours in select(vec![2u64, 7, 24, 50, 100]),
        threads in select(vec![1usize, 2, 4]),
        depth in select(vec![1usize, 2, 3]),
    ) {
        let (trace, costs) = reference();
        let stream = streaming(SimTime::from_hours(window_hours));
        let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
        let compiled = simulate_compiled(trace, costs, &options).unwrap();
        let streamed = simulate_streamed(&stream, costs, &options).unwrap();
        prop_assert_eq!(&compiled, &streamed);
        let pipelined = simulate_streamed_prefetched(
            &stream, costs, &options, &PrefetchOptions::new(depth)).unwrap();
        prop_assert_eq!(&compiled, &pipelined);
    }
}
