//! End-to-end properties: global totals must equal the per-server sums,
//! and a [`StatsObserver`] riding along must agree with the [`SimResult`]
//! without perturbing the simulation — on the sequential path and the
//! sharded one alike.

use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::sample::select;

use pscd_core::StrategyKind;
use pscd_obs::{SharedObserver, StatsObserver};
use pscd_sim::{simulate, simulate_observed, simulate_observed_sharded, SimOptions};
use pscd_topology::FetchCosts;
use pscd_types::SubscriptionTable;
use pscd_workload::{Workload, WorkloadConfig};

fn fixture() -> &'static (Workload, SubscriptionTable, FetchCosts) {
    static FIX: OnceLock<(Workload, SubscriptionTable, FetchCosts)> = OnceLock::new();
    FIX.get_or_init(|| {
        let w = Workload::generate(&WorkloadConfig::news_scaled(0.003)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        (w, subs, costs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn per_server_accounting_and_observer_agree(
        kind in select(vec![
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Sr,
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_lap(2.0),
        ]),
        capacity in select(vec![0.01, 0.05, 0.10]),
    ) {
        let (w, subs, costs) = fixture();
        let options = SimOptions::at_capacity(kind, capacity);
        let plain = simulate(w, subs, costs, &options).unwrap();

        // Global totals are exactly the per-server sums.
        let hits: u64 = plain.per_server.iter().map(|&(h, _)| h).sum();
        let requests: u64 = plain.per_server.iter().map(|&(_, r)| r).sum();
        prop_assert_eq!(plain.hits, hits);
        prop_assert_eq!(plain.requests, requests);

        // An aggregating observer sees the same totals and leaves the
        // result bit-identical.
        let obs = SharedObserver::new(StatsObserver::new());
        let observed = simulate_observed(w, subs, costs, &options, obs.clone()).unwrap();
        prop_assert_eq!(&observed, &plain);

        let stats = obs.try_unwrap().expect("run kept an observer clone");
        prop_assert_eq!(stats.requests(), plain.requests);
        prop_assert_eq!(stats.hits(), plain.hits);
        prop_assert_eq!(stats.push_transfers(), plain.traffic.pushed_pages);
    }

    #[test]
    fn sharded_path_keeps_the_accounting_invariants(
        kind in select(vec![
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_lap(2.0),
        ]),
        capacity in select(vec![0.01, 0.05, 0.10]),
        threads in select(vec![2usize, 3, 4]),
    ) {
        let (w, subs, costs) = fixture();
        let options = SimOptions::at_capacity(kind, capacity);
        let sequential = simulate(w, subs, costs, &options).unwrap();
        let sharded = simulate(w, subs, costs, &options.with_threads(threads)).unwrap();
        // Bit-identical to the sequential run...
        prop_assert_eq!(&sharded, &sequential);

        // ...and internally consistent on its own terms: hits + misses
        // equal requests, per-server sums equal globals, and every miss
        // fetches exactly one page (bytes conservation).
        let hits: u64 = sharded.per_server.iter().map(|&(h, _)| h).sum();
        let requests: u64 = sharded.per_server.iter().map(|&(_, r)| r).sum();
        prop_assert_eq!(sharded.hits, hits);
        prop_assert_eq!(sharded.requests, requests);
        prop_assert_eq!(sharded.traffic.fetched_pages, sharded.requests - sharded.hits);
        prop_assert_eq!(
            sharded.hourly.fetched_bytes.iter().sum::<u64>(),
            sharded.traffic.fetched_bytes.as_u64()
        );
        prop_assert_eq!(
            sharded.hourly.pushed_bytes.iter().sum::<u64>(),
            sharded.traffic.pushed_bytes.as_u64()
        );
        prop_assert_eq!(sharded.hourly.requests.iter().sum::<u64>(), sharded.requests);
        prop_assert_eq!(sharded.hourly.hits.iter().sum::<u64>(), sharded.hits);

        // Merged shard observers agree with the result exactly.
        let (observed, stats): (_, StatsObserver) =
            simulate_observed_sharded(w, subs, costs, &options.with_threads(threads)).unwrap();
        prop_assert_eq!(&observed, &sequential);
        prop_assert_eq!(stats.requests(), observed.requests);
        prop_assert_eq!(stats.hits(), observed.hits);
        prop_assert_eq!(stats.push_transfers(), observed.traffic.pushed_pages);
        prop_assert_eq!(
            stats.registry().bytes("bytes.fetched"),
            observed.traffic.fetched_bytes.as_u64()
        );
    }
}
