//! Cold-path differential suite: every parallel cold-path stage —
//! workload generation, subscription synthesis, trace compilation, the
//! batched match kernel, and the per-source shortest-path fan-out — must
//! be **bit-identical** to its sequential form at every thread count.
//!
//! The RNG substream scheme makes workload generation order-independent
//! by construction (each entity draws only from its own stream, see
//! `pscd_workload::seeds`), and the compiler/topology fan-outs are pure
//! per-index functions reassembled in index order; this suite is where
//! those constructions are *proven*, not just argued. The anchors are
//! the `threads = 1` outputs — the same values the sequential paths
//! produced — compared structurally (`PartialEq` over every field)
//! against `threads ∈ {2, 4, auto}`.

use proptest::prelude::*;

use pscd_core::StrategyKind;
use pscd_matching::{MatchScratch, Predicate, Subscription, SubscriptionIndex, Value};
use pscd_sim::{simulate_compiled, CompiledTrace, SimOptions, SimResult};
use pscd_topology::{FetchCosts, TopologyBuilder};
use pscd_workload::{ContentModel, Workload, WorkloadConfig};

/// The two exhibit workloads at test scale, plus a reseeded variant of
/// each — bit-identity must hold for every seed, not one lucky one.
fn exhibit_configs() -> Vec<WorkloadConfig> {
    vec![
        WorkloadConfig::news_scaled(0.01),
        WorkloadConfig::news_scaled(0.01).with_seed(0xfeed),
        WorkloadConfig::alternative_scaled(0.01),
        WorkloadConfig::alternative_scaled(0.01).with_seed(7),
    ]
}

#[test]
fn workload_generation_is_bit_identical_at_every_thread_count() {
    for config in exhibit_configs() {
        let sequential = Workload::generate_threads(&config, 1).unwrap();
        for threads in [2, 4, 0] {
            let parallel = Workload::generate_threads(&config, threads).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        // The plain constructor is the sequential path.
        assert_eq!(sequential, Workload::generate(&config).unwrap());
    }
}

#[test]
fn subscription_synthesis_is_bit_identical_at_every_thread_count() {
    for config in exhibit_configs() {
        let w = Workload::generate(&config).unwrap();
        for quality in [0.25, 1.0] {
            let sequential = w.subscriptions_threads(quality, 1).unwrap();
            assert_eq!(sequential, w.subscriptions(quality).unwrap());
            for threads in [2, 4, 0] {
                let parallel = w.subscriptions_threads(quality, threads).unwrap();
                assert_eq!(
                    sequential, parallel,
                    "quality = {quality}, threads = {threads}"
                );
            }
        }
    }
}

#[test]
fn trace_compilation_is_bit_identical_at_every_thread_count() {
    for config in exhibit_configs() {
        let w = Workload::generate(&config).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let sequential = CompiledTrace::compile_threads(&w, &subs, 1).unwrap();
        assert_eq!(sequential, CompiledTrace::compile(&w, &subs).unwrap());
        for threads in [2, 4, 0] {
            let parallel = CompiledTrace::compile_threads(&w, &subs, threads).unwrap();
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
    }
}

/// The end-to-end guarantee the CLI relies on (`repro all --threads 0`
/// vs `--threads 1`): a workload generated, synthesized, and compiled
/// entirely on the pool replays to the same `SimResult` as one built
/// entirely sequentially.
#[test]
fn end_to_end_cold_path_yields_identical_sim_results() {
    let config = WorkloadConfig::news_scaled(0.01);
    let build = |threads: usize| -> (CompiledTrace, u16) {
        let w = Workload::generate_threads(&config, threads).unwrap();
        let subs = w.subscriptions_threads(1.0, threads).unwrap();
        let trace = CompiledTrace::compile_threads(&w, &subs, threads).unwrap();
        let servers = w.server_count();
        (trace, servers)
    };
    let (seq_trace, servers) = build(1);
    let (par_trace, _) = build(0);
    assert_eq!(seq_trace, par_trace);
    let costs = FetchCosts::uniform(servers);
    for kind in [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
    ] {
        let options = SimOptions::at_capacity(kind, 0.05);
        let a: SimResult = simulate_compiled(&seq_trace, &costs, &options).unwrap();
        let b: SimResult = simulate_compiled(&par_trace, &costs, &options).unwrap();
        assert_eq!(a, b, "{}", kind.name());
    }
}

/// A deliberately heterogeneous index: equality, tag-containment, range
/// (scan path), and wildcard subscriptions, with enough of each that
/// every bucket type participates; removals force the swap-remove
/// ordinal renumbering the scratch kernel depends on.
fn heterogeneous_index() -> (
    SubscriptionIndex,
    Vec<(pscd_matching::SubscriptionId, Subscription)>,
) {
    let categories = ["sports", "politics", "tech", "music"];
    let tags = ["tennis", "elections", "ai", "jazz", "live"];
    let mut index = SubscriptionIndex::new();
    let mut kept = Vec::new();
    let mut doomed = Vec::new();
    for (i, &cat) in categories.iter().enumerate() {
        for (j, &tag) in tags.iter().enumerate() {
            let sub = Subscription::new(vec![
                Predicate::eq("category", Value::str(cat)),
                Predicate::contains("tags", tag),
            ]);
            let id = index.insert(sub.clone());
            if (i + j) % 3 == 0 {
                doomed.push(id);
            } else {
                kept.push((id, sub));
            }
        }
        let ranged = Subscription::new(vec![Predicate::ge("bytes", 2_048)]);
        kept.push((index.insert(ranged.clone()), ranged));
    }
    let wild = Subscription::wildcard();
    kept.push((index.insert(wild.clone()), wild));
    for id in doomed {
        assert!(index.remove(id).is_some());
    }
    (index, kept)
}

#[test]
fn batched_match_kernel_agrees_with_wrapper_and_brute_force() {
    let (index, reference) = heterogeneous_index();
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
    let model = ContentModel::new(w.config().seed);
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    for page in w.pages().iter().take(400) {
        let content = model.content_for(page);
        index.matches_into(&content, &mut scratch, &mut out);
        // The allocating wrapper is a thin shim over the same kernel.
        assert_eq!(out, index.matches(&content));
        assert_eq!(out.len(), index.match_count_scratch(&content, &mut scratch));
        assert_eq!(out.len(), index.match_count(&content));
        // Brute force: evaluate every live subscription directly.
        let mut expected: Vec<_> = reference
            .iter()
            .filter(|(_, sub)| sub.matches(&content))
            .map(|&(id, _)| id)
            .collect();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }
}

#[test]
fn scratch_survives_interleaved_indexes_of_different_sizes() {
    // One scratch serving two indexes whose ordinal ranges differ — the
    // epoch stamping must isolate every call from every previous one.
    let (big, _) = heterogeneous_index();
    let mut small = SubscriptionIndex::new();
    let id = small.insert(Subscription::new(vec![Predicate::eq(
        "category",
        Value::str("sports"),
    )]));
    let content = pscd_matching::Content::new()
        .with("category", Value::str("sports"))
        .with("tags", Value::tags(["tennis"]))
        .with("bytes", Value::int(4_096));
    let mut scratch = MatchScratch::new();
    let mut out = Vec::new();
    for _ in 0..3 {
        big.matches_into(&content, &mut scratch, &mut out);
        assert_eq!(out, big.matches(&content));
        small.matches_into(&content, &mut scratch, &mut out);
        assert_eq!(out, vec![id]);
    }
}

#[test]
fn shortest_path_fanout_matches_looped_singles() {
    let g = TopologyBuilder::new(101).seed(42).build().unwrap();
    let publishers: Vec<usize> = (0..8).collect();
    let looped: Vec<FetchCosts> = publishers
        .iter()
        .map(|&p| FetchCosts::from_topology(&g, p).unwrap())
        .collect();
    for threads in [1, 2, 0] {
        let many = FetchCosts::from_topology_many(&g, &publishers, threads).unwrap();
        assert_eq!(many, looped, "threads = {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rotating seed × scale × thread count: the bit-identity argument
    /// cannot depend on any particular workload shape.
    #[test]
    fn cold_path_is_bit_identical_for_arbitrary_seeds(
        seed in 0u64..u64::MAX,
        scale in proptest::sample::select(vec![0.002_f64, 0.005, 0.01]),
        threads in proptest::sample::select(vec![2_usize, 3, 4]),
        news in proptest::sample::select(vec![true, false]),
    ) {
        let base = if news {
            WorkloadConfig::news_scaled(scale)
        } else {
            WorkloadConfig::alternative_scaled(scale)
        };
        let config = base.with_seed(seed);
        let sequential = Workload::generate_threads(&config, 1).unwrap();
        let parallel = Workload::generate_threads(&config, threads).unwrap();
        prop_assert_eq!(&sequential, &parallel);
        let seq_subs = sequential.subscriptions_threads(0.75, 1).unwrap();
        let par_subs = parallel.subscriptions_threads(0.75, threads).unwrap();
        prop_assert_eq!(&seq_subs, &par_subs);
        let seq_trace = CompiledTrace::compile_threads(&sequential, &seq_subs, 1).unwrap();
        let par_trace = CompiledTrace::compile_threads(&parallel, &par_subs, threads).unwrap();
        prop_assert_eq!(seq_trace, par_trace);
    }
}
