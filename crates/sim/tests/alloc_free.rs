//! Proves the dense replay hot loop is allocation-free in steady state.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms each simulation past its one-time growth (everything is
//! preallocated at construction, so the warm-up is a safety margin, not a
//! requirement), then replays the rest of the timeline and asserts the
//! allocation counter did not move.
//!
//! Scope: all twelve engine-based strategies. DM and DC-AP/DC-LAP keep
//! lazy-deletion binary heaps, but under the dense layout those heaps are
//! preallocated to twice the page universe and compact stale items in
//! place when full (DESIGN.md §12) — so they too are *strictly*
//! allocation-free here, not merely amortized.
//!
//! Everything lives in ONE `#[test]` so no harness bookkeeping (test
//! threads, output capture) runs — and allocates — inside a measurement
//! window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use pscd_core::StrategyKind;
use pscd_obs::TraceSink;
use pscd_sim::{SimOptions, Simulation};
use pscd_topology::FetchCosts;
use pscd_workload::{Workload, WorkloadConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_replay_does_not_allocate() {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap();
    let subs = w.subscriptions(1.0).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    let trace = pscd_sim::CompiledTrace::compile(&w, &subs).unwrap();
    let total_events = trace.len();
    assert!(total_events > 1_000, "trace too small to be meaningful");
    let warm_up = total_events / 4;

    let strategies = [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ];
    for kind in strategies {
        // Invalidation on: the stale-drop path must be alloc-free too.
        let opt = SimOptions::at_capacity(kind, 0.05).with_invalidation();
        let mut sim = Simulation::from_compiled(&trace, &costs, &opt).unwrap();
        for _ in 0..warm_up {
            sim.step();
        }
        let before = allocations();
        while sim.step().is_some() {}
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{}: {} allocation(s) over {} steady-state events",
            kind.name(),
            after - before,
            total_events - warm_up,
        );
        let result = sim.finish();
        assert!(result.requests > 0);
    }

    // A *disabled* TraceRecorder in the hot loop must cost nothing: no
    // clock reads feed the allocator, begin() returns a None span, and
    // end_with() never builds its detail string. Replays the same loop
    // with per-chunk recorder calls and asserts the counter stays flat.
    let sink = TraceSink::disabled();
    let mut rec = sink.recorder("alloc-free");
    let opt = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05).with_invalidation();
    let mut sim = Simulation::from_compiled(&trace, &costs, &opt).unwrap();
    for _ in 0..warm_up {
        sim.step();
    }
    let before = allocations();
    let mut span = rec.begin();
    let mut n = 0usize;
    while sim.step().is_some() {
        n += 1;
        if n.is_multiple_of(1024) {
            rec.end_with(span, "replay.chunk", || format!("events ..{n}"));
            span = rec.begin();
        }
    }
    rec.end_with(span, "replay.chunk", || format!("events ..{n}"));
    rec.flush();
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled tracing allocated {} time(s) in the hot loop",
        after - before,
    );
    assert!(sim.finish().requests > 0);
}
