//! Frozen-kernel end-to-end differential: a trace compiled through the
//! frozen content-matching engine ([`CompiledTrace::compile_from_matcher`],
//! with the count table encoded as exact-match `page = <id>` content
//! subscriptions) must replay to the **same** `SimResult` bit for bit as
//! the table-compiled trace, for every strategy the paper evaluates and
//! at every thread count. This is the `SimResult` half of the kernel
//! differential; `crates/matching/tests/match_differential.rs` proves
//! the per-call half (frozen vs. mutable index on arbitrary content).

use pscd_core::StrategyKind;
use pscd_sim::{simulate_compiled, CompiledTrace, SimOptions};
use pscd_topology::FetchCosts;
use pscd_workload::{matcher_from_table, Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines —
/// the same twelve-strategy lineup as the replay differential suite.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

fn fixture() -> (FetchCosts, CompiledTrace, CompiledTrace) {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
    let subs = w.subscriptions(0.8).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    let table_trace = CompiledTrace::compile(&w, &subs).unwrap();
    let mut matcher = matcher_from_table(&subs, w.server_count());
    let frozen_trace = CompiledTrace::compile_from_matcher(&w, &mut matcher).unwrap();
    (costs, table_trace, frozen_trace)
}

/// The two compilation paths agree on the trace itself, so any replay
/// divergence below would be the replay's fault — and the fixture must
/// not be vacuous.
#[test]
fn compiled_traces_are_identical_and_substantial() {
    let (_costs, table_trace, frozen_trace) = fixture();
    assert_eq!(table_trace, frozen_trace);
    assert!(table_trace.events().len() > 500);
    assert!(table_trace.events().iter().any(|ev| {
        matches!(
            ev.kind,
            pscd_sim::CompiledEventKind::Publish { ordinal, .. }
                if !table_trace.matched(ordinal).is_empty()
        )
    }));
}

#[test]
fn frozen_compiled_replay_is_bit_identical_for_every_strategy() {
    let (costs, table_trace, frozen_trace) = fixture();
    for kind in all_strategies() {
        for threads in [1usize, 4] {
            let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
            let reference = simulate_compiled(&table_trace, &costs, &options).unwrap();
            let frozen = simulate_compiled(&frozen_trace, &costs, &options).unwrap();
            assert_eq!(
                reference,
                frozen,
                "{} diverged on the frozen-compiled trace at threads={threads}",
                kind.name()
            );
            assert_eq!(reference.hourly, frozen.hourly);
            assert!(reference.requests > 0, "vacuous run for {}", kind.name());
        }
    }
}
