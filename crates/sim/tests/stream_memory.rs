//! Proves the streaming claim that matters: peak memory is O(window),
//! not O(trace).
//!
//! A byte-counting `#[global_allocator]` wraps the system allocator and
//! tracks live bytes plus a high-water mark. The test measures the peak
//! growth of (a) the monolithic path — materialize the workload, derive
//! subscriptions, compile the full timeline — and (b) the streaming path
//! — build a [`StreamingTrace`] and drain a whole window pass — and
//! asserts the streaming peak is a small fraction of the monolithic one,
//! and that shrinking the window shrinks the window-buffer footprint.
//!
//! The `#[ignore]`d scale test runs the ≥1M-subscription configuration
//! end to end (`cargo test -p pscd-sim --test stream_memory --release --
//! --ignored`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use pscd_core::StrategyKind;
use pscd_sim::{
    simulate_streamed, simulate_streamed_prefetched, CompiledTrace, PrefetchOptions, ReplaySource,
    SimOptions, StreamingTrace,
};
use pscd_topology::FetchCosts;
use pscd_types::SimTime;
use pscd_workload::{Workload, WorkloadConfig};

struct ByteCountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for ByteCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count the grown size before the old block is released: briefly
        // holding both halves is exactly what a realloc peak looks like.
        note_alloc(new_size);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: ByteCountingAlloc = ByteCountingAlloc;

/// Runs `f` and returns how far the allocator's high-water mark rose
/// above the live bytes at entry — the peak memory `f` added.
fn peak_growth<T>(f: impl FnOnce() -> T) -> (usize, T) {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let value = f();
    let peak = PEAK.load(Ordering::Relaxed);
    (peak.saturating_sub(base), value)
}

/// Everything below runs single-threaded (`threads = 1`) so the peaks
/// measure the algorithms, not pool-worker stacks racing the counter.
#[test]
fn streaming_peak_is_a_fraction_of_the_monolithic_peak() {
    // Event-heavy fixture: the O(trace) term (events) must dwarf the
    // O(pages) state both paths keep resident, or the comparison would
    // measure page tables, not the streaming window bound.
    let mut config = WorkloadConfig::news_scaled(0.05);
    config.requests.total_requests *= 16;

    // Monolithic: materialize the full workload, then compile the whole
    // timeline. The trace (plus the workload's own event vectors) is the
    // O(trace) term this peak captures.
    let (mono_peak, len) = peak_growth(|| {
        let w = Workload::generate_threads(&config, 1).unwrap();
        let subs = w.subscriptions_threads(1.0, 1).unwrap();
        let trace = CompiledTrace::compile_threads(&w, &subs, 1).unwrap();
        trace.len()
    });
    assert!(len > 10_000, "fixture too small to be meaningful ({len})");

    // Streaming: same timeline, 1-hour windows, never materialized.
    let window = SimTime::from_hours(1);
    let (stream_peak, events) = peak_growth(|| {
        let stream = StreamingTrace::new(&config, 1.0, window, 1).unwrap();
        let mut pass = stream.open();
        let mut events = 0usize;
        while let Some(w) = pass.next_window() {
            events += w.len();
        }
        events
    });
    assert_eq!(events, len, "both paths must cover the same timeline");
    eprintln!(
        "16x fixture ({len} events): monolithic peak {:.2} MB, \
         streaming peak {:.2} MB",
        mono_peak as f64 / 1e6,
        stream_peak as f64 / 1e6
    );
    assert!(
        stream_peak * 3 < mono_peak,
        "streaming peak {stream_peak} B is not meaningfully below the \
         monolithic peak {mono_peak} B"
    );

    // O(window), concretely: the reusable window buffers shrink with the
    // window. Compare the high-water buffer bytes at two window sizes.
    let buffer_peak = |window: SimTime| {
        let stream = StreamingTrace::new(&config, 1.0, window, 1).unwrap();
        let mut pass = stream.open();
        let mut peak = 0usize;
        while pass.next_window().is_some() {
            peak = peak.max(pass.buffer_bytes());
        }
        peak
    };
    let small = buffer_peak(SimTime::from_hours(1));
    let large = buffer_peak(SimTime::from_days(7));
    eprintln!(
        "window buffers: 1 h = {:.2} MB, whole horizon = {:.2} MB",
        small as f64 / 1e6,
        large as f64 / 1e6
    );
    assert!(
        small * 4 < large,
        "1-hour window buffers ({small} B) should be far below \
         whole-horizon buffers ({large} B)"
    );

    // And the streamed replay itself stays bounded: replaying from the
    // streaming source peaks far below the monolithic compile alone.
    let stream = StreamingTrace::new(&config, 1.0, window, 1).unwrap();
    let costs = FetchCosts::uniform(stream.meta().server_count());
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let (replay_peak, result) =
        peak_growth(|| simulate_streamed(&stream, &costs, &options).unwrap());
    assert!(result.requests > 0);
    assert!(
        replay_peak < mono_peak,
        "streamed replay peak {replay_peak} B exceeds the monolithic \
         compile peak {mono_peak} B"
    );
}

/// The pipelined prefetcher keeps the O(window) claim: compiling up to
/// `depth` windows ahead of the replay holds at most `depth + 1` windows
/// alive (the in-flight one plus the queue), so its peak is proportional
/// to the prefetch depth times the window size — never O(trace).
#[test]
fn prefetch_peak_is_bounded_by_depth_windows_not_the_trace() {
    let mut config = WorkloadConfig::news_scaled(0.05);
    config.requests.total_requests *= 16;

    // The O(trace) yardstick this fixture must stay below.
    let (mono_peak, len) = peak_growth(|| {
        let w = Workload::generate_threads(&config, 1).unwrap();
        let subs = w.subscriptions_threads(1.0, 1).unwrap();
        CompiledTrace::compile_threads(&w, &subs, 1).unwrap().len()
    });

    // Pipelined replay at the default depth stays a fraction of the
    // monolithic peak — the whole point of streaming survives the
    // compile-ahead overlap. (Lookahead 0 keeps the constructor's
    // window cache out of the measurement; every window is produced by
    // the prefetcher itself.)
    let window = SimTime::from_hours(1);
    let stream = StreamingTrace::new(&config, 1.0, window, 1).unwrap();
    let costs = FetchCosts::uniform(stream.meta().server_count());
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let (serial_peak, serial) =
        peak_growth(|| simulate_streamed(&stream, &costs, &options).unwrap());
    let (pipelined_peak, result) = peak_growth(|| {
        simulate_streamed_prefetched(&stream, &costs, &options, &PrefetchOptions::new(2)).unwrap()
    });
    assert_eq!(result, serial);
    assert_eq!(result.requests as usize, stream.meta().request_count());
    eprintln!(
        "16x fixture ({len} events): monolithic peak {:.2} MB, serial \
         streamed replay {:.2} MB, pipelined replay {:.2} MB",
        mono_peak as f64 / 1e6,
        serial_peak as f64 / 1e6,
        pipelined_peak as f64 / 1e6
    );
    // Replay state (per-proxy caches, page table) dominates both replay
    // peaks; what the depth bound must guarantee is that compiling ahead
    // adds only O(depth) windows on top of the serial streamed replay —
    // nowhere near the O(trace) monolithic term.
    assert!(
        pipelined_peak < mono_peak,
        "pipelined replay peak {pipelined_peak} B exceeds the monolithic \
         compile peak {mono_peak} B"
    );
    assert!(
        pipelined_peak < serial_peak * 2,
        "pipelined replay peak {pipelined_peak} B is more than twice the \
         serial streamed replay peak {serial_peak} B — the prefetch queue \
         is not O(depth x window)"
    );

    // The queue's own high-water accounting agrees with the depth+1
    // bound, and the resident compiled bytes scale with the depth, not
    // the window count.
    let drained = stream.drain_prefetched(&PrefetchOptions::new(1));
    let deep = stream.drain_prefetched(&PrefetchOptions::new(4));
    assert_eq!(drained.windows, stream.window_count());
    assert_eq!(drained.events, len);
    assert_eq!(deep.events, len);
    assert!(
        drained.peak_windows <= 2 && deep.peak_windows <= 5,
        "queue held more than depth+1 windows (depth 1 -> {}, depth 4 -> {})",
        drained.peak_windows,
        deep.peak_windows
    );
    eprintln!(
        "queue high water: depth 1 = {} windows / {:.2} MB, \
         depth 4 = {} windows / {:.2} MB",
        drained.peak_windows,
        drained.peak_bytes as f64 / 1e6,
        deep.peak_windows,
        deep.peak_bytes as f64 / 1e6
    );
    // Deeper lookahead may hold proportionally more compiled bytes but
    // never an O(window_count) share of the trace: with 1-hour windows
    // the horizon has ~168 windows, so depth 4's resident set stays far
    // below half the timeline.
    let avg_window = (drained.peak_bytes / drained.peak_windows.max(1)).max(1);
    assert!(
        deep.peak_bytes / avg_window <= 16,
        "depth-4 resident compiled bytes ({} B) are not O(depth) windows \
         (single-window yardstick {} B)",
        deep.peak_bytes,
        avg_window
    );
}

/// The acceptance-scale run: a configuration carrying over a million
/// subscriptions streams end to end with the same O(window) bound.
/// Slow — run with `--release -- --ignored`.
#[test]
#[ignore = "minutes-long at 1M+ subscriptions; run with --release -- --ignored"]
fn million_subscription_run_streams_in_window_memory() {
    // ~6× the paper's NEWS trace: ~1.17M requests, and at quality 1 every
    // request's (page, server) draw contributes its count to the table,
    // so total subscriptions exceed a million.
    let config = WorkloadConfig::news_scaled(6.0);
    let window = SimTime::from_hours(6);

    // The monolithic yardstick: materialize everything, compile the
    // timeline. (Both paths keep the page table and the O(pairs)
    // subscription table resident — the term streaming removes is the
    // O(events) timeline.)
    let (mono_peak, events) = peak_growth(|| {
        let w = Workload::generate_threads(&config, 1).unwrap();
        let subs = w.subscriptions_threads(1.0, 1).unwrap();
        CompiledTrace::compile_threads(&w, &subs, 1).unwrap().len()
    });
    let compiled_floor = events * std::mem::size_of::<pscd_sim::CompiledEvent>();

    let (build_peak, stream) =
        peak_growth(|| StreamingTrace::new(&config, 1.0, window, 1).unwrap());
    let total_subs: u64 = stream
        .subscriptions()
        .iter()
        .map(|(_, _, count)| u64::from(count))
        .sum();
    assert!(
        total_subs >= 1_000_000,
        "fixture carries only {total_subs} subscriptions"
    );
    assert_eq!(stream.meta().len(), events);

    // O(window): draining a full pass on the built source grows memory by
    // window buffers (plus one page's regeneration scratch), far below
    // the compiled event array alone.
    let (pass_peak, windows) = peak_growth(|| {
        let mut pass = stream.open();
        let mut windows = 0usize;
        while pass.next_window().is_some() {
            windows += 1;
        }
        windows
    });
    assert_eq!(windows, stream.window_count());
    eprintln!(
        "1M-subscription run: {total_subs} subscriptions, {events} events, \
         {windows} windows; monolithic peak {:.2} MB, streaming build \
         {:.2} MB, window pass {:.2} MB (compiled events alone: {:.2} MB)",
        mono_peak as f64 / 1e6,
        build_peak as f64 / 1e6,
        pass_peak as f64 / 1e6,
        compiled_floor as f64 / 1e6
    );
    assert!(
        pass_peak < compiled_floor / 2,
        "window-pass peak {pass_peak} B is not O(window) against a \
         {events}-event timeline (compiled floor {compiled_floor} B)"
    );
    // End to end, streaming peaks below the monolithic pipeline.
    assert!(
        build_peak.max(pass_peak) < mono_peak,
        "streaming peaks (build {build_peak} B, pass {pass_peak} B) \
         do not undercut the monolithic peak {mono_peak} B"
    );
    let costs = FetchCosts::uniform(stream.meta().server_count());
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let result = simulate_streamed(&stream, &costs, &options).unwrap();
    assert_eq!(result.requests as usize, stream.meta().request_count());
}
