//! Differential equivalence suite: the sharded runner must be
//! **bit-identical** to the sequential one — same `SimResult`, same
//! `HourlySeries`, same per-proxy stats — for every strategy the paper
//! evaluates, with and without fault injection, under both pushing
//! schemes, at any shard count. Correctness of the parallel path is
//! established here, not by inspection.

use pscd_broker::PushScheme;
use pscd_core::StrategyKind;
use pscd_obs::SharedObserver;
use pscd_obs::StatsObserver;
use pscd_sim::{
    simulate, simulate_observed, simulate_observed_sharded, CrashPlan, SimOptions, Simulation,
};
use pscd_topology::FetchCosts;
use pscd_types::{SimTime, SubscriptionTable};
use pscd_workload::{Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

fn fixture() -> (Workload, SubscriptionTable, FetchCosts) {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
    let subs = w.subscriptions(0.8).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    (w, subs, costs)
}

/// Asserts `threads = 4` reproduces `threads = 1` bit for bit. The whole
/// `SimResult` is compared — hits, requests, traffic, the full
/// `HourlySeries`, and per-server stats.
fn assert_bit_identical(
    w: &Workload,
    subs: &SubscriptionTable,
    costs: &FetchCosts,
    options: SimOptions,
) {
    let sequential = simulate(w, subs, costs, &options.with_threads(1)).unwrap();
    let sharded = simulate(w, subs, costs, &options.with_threads(4)).unwrap();
    assert_eq!(
        sequential, sharded,
        "threads=4 diverged from threads=1 for {}",
        sequential.strategy
    );
    assert_eq!(sequential.hourly, sharded.hourly);
}

#[test]
fn every_strategy_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in all_strategies() {
        assert_bit_identical(&w, &subs, &costs, SimOptions::at_capacity(kind, 0.05));
    }
}

#[test]
fn every_strategy_is_bit_identical_sharded_with_crash() {
    let (w, subs, costs) = fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    for kind in all_strategies() {
        assert_bit_identical(
            &w,
            &subs,
            &costs,
            SimOptions::at_capacity(kind, 0.05).with_crash(crash),
        );
    }
}

#[test]
fn when_necessary_scheme_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in [
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        let mut options = SimOptions::at_capacity(kind, 0.05);
        options.scheme = PushScheme::WhenNecessary;
        assert_bit_identical(&w, &subs, &costs, options);
    }
}

#[test]
fn invalidation_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in [
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::GdStar { beta: 2.0 },
    ] {
        assert_bit_identical(
            &w,
            &subs,
            &costs,
            SimOptions::at_capacity(kind, 0.10).with_invalidation(),
        );
    }
}

#[test]
fn totals_are_independent_of_shard_count() {
    let (w, subs, costs) = fixture();
    let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let sequential = simulate(&w, &subs, &costs, &base).unwrap();
    // 0 = auto (machine parallelism); large counts clamp to the fleet.
    for threads in [0, 2, 3, 4, 7, 64] {
        let sharded = simulate(&w, &subs, &costs, &base.with_threads(threads)).unwrap();
        assert_eq!(sequential, sharded, "threads={threads}");
    }
}

#[test]
fn crash_with_full_fleet_and_edge_fractions_shards_cleanly() {
    let (w, subs, costs) = fixture();
    let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    for fraction in [0.0, 0.3, 1.0] {
        let crash = CrashPlan {
            time: SimTime::from_days(3),
            fraction,
            seed: 7,
        };
        assert_bit_identical(&w, &subs, &costs, base.with_crash(crash));
    }
    // A crash instant past the last event never fires anywhere.
    let late = CrashPlan::new(SimTime::from_days(100_000), 1.0);
    assert_bit_identical(&w, &subs, &costs, base.with_crash(late));
}

#[test]
fn sharded_observer_totals_match_simresult_and_sequential_observer() {
    let (w, subs, costs) = fixture();
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05).with_threads(4);
    let (result, merged): (_, StatsObserver) =
        simulate_observed_sharded(&w, &subs, &costs, &options).unwrap();
    // The merged shard registries must agree with the simulator's own
    // accounting exactly — this is what `repro --obs-dir` hard-checks.
    assert_eq!(merged.requests(), result.requests);
    assert_eq!(merged.hits(), result.hits);
    assert_eq!(merged.push_transfers(), result.traffic.pushed_pages);
    assert_eq!(
        merged.registry().bytes("bytes.pushed"),
        result.traffic.pushed_bytes.as_u64()
    );
    assert_eq!(
        merged.registry().bytes("bytes.fetched"),
        result.traffic.fetched_bytes.as_u64()
    );
    // And with a sequential observed run on every additive counter that
    // is not inherently per-run (crash/invalidate event occurrences may
    // split across shards; everything below must merge exactly).
    let shared = SharedObserver::new(StatsObserver::new());
    let seq_result =
        simulate_observed(&w, &subs, &costs, &options.with_threads(1), shared.clone()).unwrap();
    let seq = shared.try_unwrap().unwrap();
    assert_eq!(result, seq_result);
    for key in [
        "request.hits",
        "request.misses",
        "push.offers",
        "push.transfers",
        "push.stored",
        "publish.events",
        "notify.events",
        "notify.matches",
        "admit.push",
        "admit.access",
    ] {
        assert_eq!(
            merged.registry().counter(key),
            seq.registry().counter(key),
            "counter {key} diverged"
        );
    }
    for key in ["bytes.pushed", "bytes.fetched", "bytes.evicted"] {
        assert_eq!(
            merged.registry().bytes(key),
            seq.registry().bytes(key),
            "byte counter {key} diverged"
        );
    }
}

#[test]
fn sharded_observer_crash_totals_merge_exactly() {
    let (w, subs, costs) = fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05)
        .with_crash(crash)
        .with_threads(4);
    let (result, merged): (_, StatsObserver) =
        simulate_observed_sharded(&w, &subs, &costs, &options).unwrap();
    assert_eq!(merged.requests(), result.requests);
    assert_eq!(merged.hits(), result.hits);
    // Victim and restart totals are additive across shards.
    let victims = crash.victims(w.server_count()).len() as u64;
    assert_eq!(merged.registry().counter("crash.victims"), victims);
    assert_eq!(merged.registry().counter("restart.events"), victims);
}

#[test]
fn stepped_then_run_still_matches() {
    // A simulation that already stepped must keep draining sequentially
    // (the shards would otherwise replay consumed events) and still end
    // at the sequential answer.
    let (w, subs, costs) = fixture();
    let options = SimOptions::at_capacity(StrategyKind::Sub, 0.05).with_threads(4);
    let sequential = simulate(&w, &subs, &costs, &options.with_threads(1)).unwrap();
    let mut sim = Simulation::new(&w, &subs, &costs, &options).unwrap();
    for _ in 0..10 {
        sim.step();
    }
    assert_eq!(sim.run(), sequential);
}
