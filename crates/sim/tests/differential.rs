//! Differential equivalence suite: every replay path must be
//! **bit-identical** to every other — same `SimResult`, same
//! `HourlySeries`, same per-proxy stats — for every strategy the paper
//! evaluates, with and without fault injection, under both pushing
//! schemes, at any shard count. Correctness of the parallel path and of
//! the compiled-trace layer is established here, not by inspection.
//!
//! The anchor is [`reference_simulate`]: the pre-refactor per-event loop,
//! re-derived from the raw workload streams with no `CompiledTrace`
//! anywhere, kept alive as an executable specification. The sequential
//! compiled replay, the sharded replay at every thread count, and the
//! convenience wrappers are all proven against it.
//!
//! Since the dense-state refactor the two sides also differ in *state
//! representation*: the reference loop builds sparse `Box<dyn Strategy>`
//! proxies (`StrategyKind::build`, hash-map tables, virtual dispatch)
//! while the production replay builds dense enum-dispatched ones
//! (`build_impl_observed`, ordinal-indexed arenas, scratch buffers). Every
//! reference test is therefore simultaneously a dense-vs-sparse and an
//! enum-vs-dyn differential; `dense_enum_replay_matches_sparse_dyn_*`
//! below sweeps the remaining option axes, and the store-level churn
//! proptest pins the two `CacheStore` backings against each other
//! directly.

use std::collections::HashMap;
use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::sample::select;

use pscd_broker::{DeliveryEngine, PushScheme};
use pscd_cache::{CacheStore, Layout};
use pscd_core::StrategyKind;
use pscd_obs::SharedObserver;
use pscd_obs::StatsObserver;
use pscd_sim::{
    simulate, simulate_compiled, simulate_observed, simulate_observed_sharded, CompiledTrace,
    CrashPlan, HourlySeries, SimOptions, SimResult, Simulation,
};
use pscd_topology::FetchCosts;
use pscd_types::Bytes;
use pscd_types::{PageId, ServerId, SimTime, SubscriptionTable};
use pscd_workload::{Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

fn fixture() -> (Workload, SubscriptionTable, FetchCosts) {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
    let subs = w.subscriptions(0.8).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    (w, subs, costs)
}

/// Asserts `threads = 4` reproduces `threads = 1` bit for bit. The whole
/// `SimResult` is compared — hits, requests, traffic, the full
/// `HourlySeries`, and per-server stats.
fn assert_bit_identical(
    w: &Workload,
    subs: &SubscriptionTable,
    costs: &FetchCosts,
    options: SimOptions,
) {
    let sequential = simulate(w, subs, costs, &options.with_threads(1)).unwrap();
    let sharded = simulate(w, subs, costs, &options.with_threads(4)).unwrap();
    assert_eq!(
        sequential, sharded,
        "threads=4 diverged from threads=1 for {}",
        sequential.strategy
    );
    assert_eq!(sequential.hourly, sharded.hourly);
}

#[test]
fn every_strategy_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in all_strategies() {
        assert_bit_identical(&w, &subs, &costs, SimOptions::at_capacity(kind, 0.05));
    }
}

#[test]
fn every_strategy_is_bit_identical_sharded_with_crash() {
    let (w, subs, costs) = fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    for kind in all_strategies() {
        assert_bit_identical(
            &w,
            &subs,
            &costs,
            SimOptions::at_capacity(kind, 0.05).with_crash(crash),
        );
    }
}

#[test]
fn when_necessary_scheme_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in [
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        let mut options = SimOptions::at_capacity(kind, 0.05);
        options.scheme = PushScheme::WhenNecessary;
        assert_bit_identical(&w, &subs, &costs, options);
    }
}

#[test]
fn invalidation_is_bit_identical_sharded() {
    let (w, subs, costs) = fixture();
    for kind in [
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::GdStar { beta: 2.0 },
    ] {
        assert_bit_identical(
            &w,
            &subs,
            &costs,
            SimOptions::at_capacity(kind, 0.10).with_invalidation(),
        );
    }
}

#[test]
fn totals_are_independent_of_shard_count() {
    let (w, subs, costs) = fixture();
    let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    let sequential = simulate(&w, &subs, &costs, &base).unwrap();
    // 0 = auto (machine parallelism); large counts clamp to the fleet.
    for threads in [0, 2, 3, 4, 7, 64] {
        let sharded = simulate(&w, &subs, &costs, &base.with_threads(threads)).unwrap();
        assert_eq!(sequential, sharded, "threads={threads}");
    }
}

#[test]
fn crash_with_full_fleet_and_edge_fractions_shards_cleanly() {
    let (w, subs, costs) = fixture();
    let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    for fraction in [0.0, 0.3, 1.0] {
        let crash = CrashPlan {
            time: SimTime::from_days(3),
            fraction,
            seed: 7,
        };
        assert_bit_identical(&w, &subs, &costs, base.with_crash(crash));
    }
    // A crash instant past the last event never fires anywhere.
    let late = CrashPlan::new(SimTime::from_days(100_000), 1.0);
    assert_bit_identical(&w, &subs, &costs, base.with_crash(late));
}

#[test]
fn sharded_observer_totals_match_simresult_and_sequential_observer() {
    let (w, subs, costs) = fixture();
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05).with_threads(4);
    let (result, merged): (_, StatsObserver) =
        simulate_observed_sharded(&w, &subs, &costs, &options).unwrap();
    // The merged shard registries must agree with the simulator's own
    // accounting exactly — this is what `repro --obs-dir` hard-checks.
    assert_eq!(merged.requests(), result.requests);
    assert_eq!(merged.hits(), result.hits);
    assert_eq!(merged.push_transfers(), result.traffic.pushed_pages);
    assert_eq!(
        merged.registry().bytes("bytes.pushed"),
        result.traffic.pushed_bytes.as_u64()
    );
    assert_eq!(
        merged.registry().bytes("bytes.fetched"),
        result.traffic.fetched_bytes.as_u64()
    );
    // And with a sequential observed run on every additive counter that
    // is not inherently per-run (crash/invalidate event occurrences may
    // split across shards; everything below must merge exactly).
    let shared = SharedObserver::new(StatsObserver::new());
    let seq_result =
        simulate_observed(&w, &subs, &costs, &options.with_threads(1), shared.clone()).unwrap();
    let seq = shared.try_unwrap().unwrap();
    assert_eq!(result, seq_result);
    for key in [
        "request.hits",
        "request.misses",
        "push.offers",
        "push.transfers",
        "push.stored",
        "publish.events",
        "notify.events",
        "notify.matches",
        "admit.push",
        "admit.access",
    ] {
        assert_eq!(
            merged.registry().counter(key),
            seq.registry().counter(key),
            "counter {key} diverged"
        );
    }
    for key in ["bytes.pushed", "bytes.fetched", "bytes.evicted"] {
        assert_eq!(
            merged.registry().bytes(key),
            seq.registry().bytes(key),
            "byte counter {key} diverged"
        );
    }
}

#[test]
fn sharded_observer_crash_totals_merge_exactly() {
    let (w, subs, costs) = fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05)
        .with_crash(crash)
        .with_threads(4);
    let (result, merged): (_, StatsObserver) =
        simulate_observed_sharded(&w, &subs, &costs, &options).unwrap();
    assert_eq!(merged.requests(), result.requests);
    assert_eq!(merged.hits(), result.hits);
    // Victim and restart totals are additive across shards.
    let victims = crash.victims(w.server_count()).len() as u64;
    assert_eq!(merged.registry().counter("crash.victims"), victims);
    assert_eq!(merged.registry().counter("restart.events"), victims);
}

#[test]
fn stepped_then_run_still_matches() {
    // A simulation that already stepped must keep draining sequentially
    // (the shards would otherwise replay consumed events) and still end
    // at the sequential answer.
    let (w, subs, costs) = fixture();
    let options = SimOptions::at_capacity(StrategyKind::Sub, 0.05).with_threads(4);
    let sequential = simulate(&w, &subs, &costs, &options.with_threads(1)).unwrap();
    let mut sim = Simulation::new(&w, &subs, &costs, &options).unwrap();
    for _ in 0..10 {
        sim.step();
    }
    assert_eq!(sim.run(), sequential);
}

// ---------------------------------------------------------------------------
// The reference loop: an independent reimplementation of the simulator as
// it existed before the compiled-trace layer.
// ---------------------------------------------------------------------------

/// The pre-refactor per-event replay, rebuilt here from the raw workload
/// streams and the public broker/subscription APIs only — no
/// [`CompiledTrace`] anywhere. Timeline order is merged on the fly
/// (publishes first at equal timestamps), each publish re-resolves its
/// fan-out from the subscription table, each request re-looks-up its
/// subscription count, the invalidation lineage is tracked in a live map,
/// and the crash instant is re-compared per event. This is the executable
/// specification the compiled replay is proven bit-identical against.
fn reference_simulate(
    w: &Workload,
    subs: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
) -> SimResult {
    let servers = w.server_count();
    let capacities = w.cache_capacities(options.capacity_fraction);
    let strategies = capacities
        .iter()
        .map(|&c| options.strategy.build(c))
        .collect();
    let cost_vec = (0..servers).map(|s| costs.cost(ServerId::new(s))).collect();
    let mut engine = DeliveryEngine::new(strategies, cost_vec, options.scheme).unwrap();
    let mut hourly = HourlySeries::new((w.horizon().as_hours_f64().ceil() as usize).max(1));
    let mut latest_version: HashMap<PageId, PageId> = HashMap::new();
    let mut crash = options.crash;
    let victims = options
        .crash
        .map(|plan| plan.victims(servers))
        .unwrap_or_default();
    let publishes = w.publishing().events();
    let requests = w.requests().events();
    let pages = w.pages();
    let (mut pi, mut ri) = (0usize, 0usize);
    while pi < publishes.len() || ri < requests.len() {
        // Publishes before requests at equal timestamps: a notification
        // must precede the requests it triggers.
        let publish_next = match (publishes.get(pi), requests.get(ri)) {
            (Some(p), Some(r)) => p.time <= r.time,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let next_time = if publish_next {
            publishes[pi].time
        } else {
            requests[ri].time
        };
        // Fault injection fires before the first event at/after its
        // instant and consumes no event.
        if let Some(plan) = crash {
            if next_time >= plan.time {
                crash = None;
                for &server in &victims {
                    engine
                        .replace_strategy(
                            server,
                            options.strategy.build(capacities[server.as_usize()]),
                        )
                        .unwrap();
                }
            }
        }
        if publish_next {
            let ev = publishes[pi];
            pi += 1;
            let meta = &pages[ev.page.as_usize()];
            let origin = meta.kind().origin().unwrap_or(ev.page);
            let stale = latest_version.insert(origin, ev.page);
            if options.invalidate_stale {
                if let Some(stale) = stale {
                    engine.invalidate_everywhere(stale);
                }
            }
            for record in engine.publish(meta, subs.matched_servers(ev.page)) {
                if record.transferred {
                    hourly.record_push(ev.time, meta.size());
                }
            }
        } else {
            let ev = requests[ri];
            ri += 1;
            let meta = &pages[ev.page.as_usize()];
            let record = engine
                .request_with_subs(ev.server, meta, subs.count(ev.page, ev.server))
                .unwrap();
            hourly.record_request(ev.time, record.hit, meta.size());
        }
    }
    let per_server: Vec<(u64, u64)> = (0..servers)
        .map(|s| engine.hit_stats(ServerId::new(s)))
        .collect();
    SimResult {
        strategy: options.strategy.name().to_owned(),
        hits: per_server.iter().map(|&(h, _)| h).sum(),
        requests: per_server.iter().map(|&(_, r)| r).sum(),
        traffic: engine.total_traffic(),
        hourly,
        per_server,
    }
}

/// One shared fixture (with its compilation) for the reference-loop
/// tests, built once per process — the reference loop is the slow path
/// here, so the inputs are reused across tests and proptest cases.
fn shared_fixture() -> &'static (Workload, SubscriptionTable, FetchCosts, CompiledTrace) {
    static FIX: OnceLock<(Workload, SubscriptionTable, FetchCosts, CompiledTrace)> =
        OnceLock::new();
    FIX.get_or_init(|| {
        let (w, subs, costs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        (w, subs, costs, trace)
    })
}

#[test]
fn compiled_replay_matches_the_reference_loop_for_every_strategy() {
    let (w, subs, costs, trace) = shared_fixture();
    for kind in all_strategies() {
        let options = SimOptions::at_capacity(kind, 0.05);
        let reference = reference_simulate(w, subs, costs, &options);
        // Sequential compiled replay, the convenience wrapper (which
        // compiles privately), and the sharded replay all land on the
        // reference answer bit for bit.
        let compiled = simulate_compiled(trace, costs, &options).unwrap();
        assert_eq!(reference, compiled, "compiled diverged for {}", kind.name());
        let raw = simulate(w, subs, costs, &options).unwrap();
        assert_eq!(reference, raw, "wrapper diverged for {}", kind.name());
        let sharded = simulate_compiled(trace, costs, &options.with_threads(4)).unwrap();
        assert_eq!(reference, sharded, "shards diverged for {}", kind.name());
    }
}

#[test]
fn reference_agrees_under_crash_invalidation_and_when_necessary() {
    let (w, subs, costs, trace) = shared_fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    for kind in [
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        // Pile every option on at once: crash + stale invalidation +
        // When-Necessary pushing.
        let mut options = SimOptions::at_capacity(kind, 0.05)
            .with_crash(crash)
            .with_invalidation();
        options.scheme = PushScheme::WhenNecessary;
        let reference = reference_simulate(w, subs, costs, &options);
        for threads in [1usize, 3, 4] {
            let got = simulate_compiled(trace, costs, &options.with_threads(threads)).unwrap();
            assert_eq!(
                reference,
                got,
                "{} diverged at threads={threads}",
                kind.name()
            );
        }
    }
}

/// Every strategy against the sparse/dyn reference, rotating through the
/// option axes so the twelve runs jointly cover both schemes, crash and
/// crash-free plans, invalidation on/off, and shard counts 1/2/4 without
/// paying the full cross product (the 16-case proptest below samples the
/// cross product itself).
#[test]
fn dense_enum_replay_matches_sparse_dyn_reference_rotating_axes() {
    let (w, subs, costs, trace) = shared_fixture();
    let crash = CrashPlan {
        time: SimTime::from_days(2),
        fraction: 0.5,
        seed: 42,
    };
    let schemes = [PushScheme::Always, PushScheme::WhenNecessary];
    let threads = [1usize, 2, 4];
    for (i, kind) in all_strategies().into_iter().enumerate() {
        let mut options = SimOptions::at_capacity(kind, 0.05);
        options.scheme = schemes[i % 2];
        options.crash = (i % 3 == 1).then_some(crash);
        options.invalidate_stale = i % 2 == 1;
        options.threads = threads[i % 3];
        let reference = reference_simulate(w, subs, costs, &options);
        let dense = simulate_compiled(trace, costs, &options).unwrap();
        assert_eq!(
            reference,
            dense,
            "dense replay diverged from sparse reference for {} (axes {i})",
            kind.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The satellite guarantee, sampled across the whole option space:
    /// strategy × capacity × scheme × crash plan × invalidation × shard
    /// count, every combination bit-identical to the reference loop.
    #[test]
    fn compiled_replay_is_bit_identical_to_the_reference_loop(
        kind in select(all_strategies().to_vec()),
        capacity in select(vec![0.01, 0.05, 0.10]),
        scheme in select(vec![PushScheme::Always, PushScheme::WhenNecessary]),
        crash in select(vec![
            None,
            Some(CrashPlan { time: SimTime::from_days(2), fraction: 0.5, seed: 42 }),
            Some(CrashPlan { time: SimTime::from_days(1), fraction: 1.0, seed: 7 }),
        ]),
        invalidate in select(vec![false, true]),
        threads in select(vec![1usize, 2, 4, 7]),
    ) {
        let (w, subs, costs, trace) = shared_fixture();
        let mut options = SimOptions::at_capacity(kind, capacity);
        options.scheme = scheme;
        options.crash = crash;
        options.invalidate_stale = invalidate;
        let reference = reference_simulate(w, subs, costs, &options);
        let compiled =
            simulate_compiled(trace, costs, &options.with_threads(threads)).unwrap();
        prop_assert_eq!(&reference, &compiled);
        let raw = simulate(w, subs, costs, &options.with_threads(threads)).unwrap();
        prop_assert_eq!(&reference, &raw);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store layer itself: a dense (arena-indexed, eager-heap) store
    /// and a sparse (hash-addressed) store replay the same churn script —
    /// inserts, value updates, removals, min-pops — and must agree on
    /// every observable at every step: eviction order, byte accounting,
    /// candidate prefix sums, membership.
    #[test]
    fn dense_and_sparse_stores_agree_under_churn(
        ops in proptest::collection::vec(
            (0u32..32, 1u64..64, 0.0f64..50.0, 0u8..5),
            1..300,
        ),
    ) {
        let capacity = Bytes::new(1 << 16);
        let mut sparse = CacheStore::new(capacity);
        let mut dense = CacheStore::with_layout(capacity, Layout::Dense { page_count: 32 });
        for &(page, size, value, op) in &ops {
            let page = PageId::new(page);
            match op {
                0 | 1 => {
                    sparse.insert(page, Bytes::new(size), value);
                    dense.insert(page, Bytes::new(size), value);
                }
                2 => {
                    prop_assert_eq!(
                        sparse.update_value(page, value),
                        dense.update_value(page, value)
                    );
                }
                3 => {
                    prop_assert_eq!(sparse.remove(page), dense.remove(page));
                }
                _ => {
                    prop_assert_eq!(sparse.peek_min(), dense.peek_min());
                    prop_assert_eq!(sparse.pop_min(), dense.pop_min());
                }
            }
            prop_assert_eq!(sparse.used(), dense.used());
            prop_assert_eq!(sparse.len(), dense.len());
            prop_assert_eq!(sparse.contains(page), dense.contains(page));
            prop_assert_eq!(
                sparse.candidate_size_below(value),
                dense.candidate_size_below(value)
            );
        }
        // Drain both: the full eviction orders must be identical.
        while let Some(min) = sparse.pop_min() {
            prop_assert_eq!(Some(min), dense.pop_min());
        }
        prop_assert!(dense.is_empty());
    }
}
