//! Merge-algebra properties: shard-local `SimResult`/`HourlySeries`/
//! stats-registry values form a commutative monoid under `absorb` —
//! associative, commutative, identity-preserving — so a sharded run's
//! totals are independent of both the shard count and the join order.

use proptest::collection::vec;
use proptest::prelude::*;

use pscd_broker::Traffic;
use pscd_obs::{AdmitOrigin, MergeableObserver, Observer, StatsObserver};
use pscd_sim::{HourlySeries, SimResult};
use pscd_types::{Bytes, PageId, ServerId, SimTime};

const HOURS: usize = 4;
const SERVERS: usize = 3;

/// A strategy for shard-shaped `SimResult`s: fixed hour/server geometry
/// (as real shards of one run have), arbitrary integer counters.
fn arb_result() -> impl Strategy<Value = SimResult> {
    vec(0u64..1_000, 6 * HOURS..(6 * HOURS + 1)).prop_map(|vals| {
        let chunk = |k: usize| vals[k * HOURS..(k + 1) * HOURS].to_vec();
        let hourly = HourlySeries {
            hits: chunk(0),
            requests: chunk(1),
            pushed_pages: chunk(2),
            pushed_bytes: chunk(3),
            fetched_pages: chunk(4),
            fetched_bytes: chunk(5),
        };
        let per_server: Vec<(u64, u64)> = (0..SERVERS)
            .map(|s| (vals[s], vals[s] + vals[SERVERS + s]))
            .collect();
        SimResult {
            strategy: "SG2".into(),
            hits: per_server.iter().map(|&(h, _)| h).sum(),
            requests: per_server.iter().map(|&(_, r)| r).sum(),
            traffic: Traffic {
                pushed_pages: vals[0],
                pushed_bytes: Bytes::new(vals[1]),
                fetched_pages: vals[2],
                fetched_bytes: Bytes::new(vals[3]),
            },
            hourly,
            per_server,
        }
    })
}

/// A strategy for shard-local stats observers, driven through the real
/// `Observer` hooks so every counter family (counters, bytes, histograms)
/// is exercised.
fn arb_stats() -> impl Strategy<Value = StatsObserver> {
    vec(0u64..64, 1..24).prop_map(|events| {
        let mut obs = StatsObserver::new();
        for (i, &e) in events.iter().enumerate() {
            let t = SimTime::from_secs(i as u64);
            let page = PageId::new((e % 7) as u32);
            let server = ServerId::new((e % SERVERS as u64) as u16);
            let size = Bytes::new(e * 100 + 1);
            match e % 4 {
                0 => obs.on_request(t, server, page, size, e % 2 == 0),
                1 => obs.on_push(server, page, size, e % 2 == 0, e % 3 == 0),
                2 => obs.on_publish(t, page, size, (e % 5) as usize, (e % 3) as usize),
                _ => obs.on_admit(server, page, size, e as f64 / 8.0, AdmitOrigin::Push),
            }
        }
        obs
    })
}

fn absorbed(mut a: SimResult, b: &SimResult) -> SimResult {
    a.absorb(b);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simresult_absorb_is_commutative(a in arb_result(), b in arb_result()) {
        prop_assert_eq!(absorbed(a.clone(), &b), absorbed(b, &a));
    }

    #[test]
    fn simresult_absorb_is_associative(
        a in arb_result(),
        b in arb_result(),
        c in arb_result(),
    ) {
        let left = absorbed(absorbed(a.clone(), &b), &c);
        let right = absorbed(a, &absorbed(b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn simresult_identity_preserves(a in arb_result()) {
        let id = SimResult::identity("SG2", HOURS, SERVERS as u16);
        prop_assert_eq!(&absorbed(id.clone(), &a), &a);
        prop_assert_eq!(&absorbed(a.clone(), &id), &a);
    }

    #[test]
    fn shard_count_and_join_order_do_not_matter(
        shards in vec(arb_result(), 1..6),
    ) {
        // Fold left-to-right vs fold in reverse vs pairwise tree: all
        // equal, so any parallel reduction of shard results is safe.
        let id = || SimResult::identity("SG2", HOURS, SERVERS as u16);
        let forward = shards.iter().fold(id(), absorbed);
        let reverse = shards.iter().rev().fold(id(), absorbed);
        prop_assert_eq!(&forward, &reverse);
        let mut layer = shards.clone();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => absorbed(a.clone(), b),
                    [a] => a.clone(),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
        }
        prop_assert_eq!(&forward, &layer[0]);
    }

    #[test]
    fn hourly_absorb_is_commutative_and_associative(
        a in arb_result(),
        b in arb_result(),
        c in arb_result(),
    ) {
        let (a, b, c) = (a.hourly, b.hourly, c.hourly);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        prop_assert_eq!(&ab, &ba);
        let mut left = ab;
        left.absorb(&c);
        let mut bc = b.clone();
        bc.absorb(&c);
        let mut right = a.clone();
        right.absorb(&bc);
        prop_assert_eq!(&left, &right);
        // Identity: the empty series.
        let mut with_id = a.clone();
        with_id.absorb(&HourlySeries::new(0));
        prop_assert_eq!(&with_id, &a);
    }

    #[test]
    fn stats_registry_absorb_is_commutative_and_identity_preserving(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        let keys = [
            "request.hits",
            "request.misses",
            "push.offers",
            "push.transfers",
            "push.stored",
            "publish.events",
            "admit.push",
        ];
        let mut ab = a.clone();
        ab.absorb(b.clone());
        let mut ba = b.clone();
        ba.absorb(a.clone());
        let mut left = ab.clone();
        left.absorb(c.clone());
        let mut bc = b.clone();
        bc.absorb(c.clone());
        let mut right = a.clone();
        right.absorb(bc);
        let mut with_id = a.clone();
        with_id.absorb(StatsObserver::default());
        for key in keys {
            prop_assert_eq!(ab.registry().counter(key), ba.registry().counter(key));
            prop_assert_eq!(left.registry().counter(key), right.registry().counter(key));
            prop_assert_eq!(with_id.registry().counter(key), a.registry().counter(key));
        }
        for key in ["bytes.pushed", "bytes.fetched"] {
            prop_assert_eq!(ab.registry().bytes(key), ba.registry().bytes(key));
            prop_assert_eq!(left.registry().bytes(key), right.registry().bytes(key));
        }
        // Histogram counts (integer parts of the distributions) add too.
        if let (Some(h_ab), Some(h_ba)) = (
            ab.registry().histogram("page_size"),
            ba.registry().histogram("page_size"),
        ) {
            prop_assert_eq!(h_ab.count(), h_ba.count());
        }
        prop_assert_eq!(ab.requests(), a.requests() + b.requests());
    }
}
