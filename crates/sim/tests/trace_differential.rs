//! Tracing must be an observer, never a participant: replaying with an
//! enabled [`TraceSink`] has to produce the same `SimResult` bit for bit
//! as replaying with tracing compiled out of the path. The traced replay
//! chunks the hot loop to place span boundaries, so this differential
//! also proves the chunking itself is invisible — same event order, same
//! shard cuts, same totals — for every strategy the paper evaluates.

use pscd_core::StrategyKind;
use pscd_obs::{NullObserver, TraceSink};
use pscd_sim::{
    simulate_compiled, simulate_observed_sharded_compiled_traced, CompiledTrace, SimOptions,
};
use pscd_topology::FetchCosts;
use pscd_workload::{Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines —
/// the same twelve-strategy lineup as the replay differential suite.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

fn fixture() -> (Workload, FetchCosts, CompiledTrace) {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
    let subs = w.subscriptions(0.8).unwrap();
    let costs = FetchCosts::uniform(w.server_count());
    let trace = CompiledTrace::compile(&w, &subs).unwrap();
    (w, costs, trace)
}

#[test]
fn traced_replay_is_bit_identical_to_untraced_for_every_strategy() {
    let (_w, costs, trace) = fixture();
    for kind in all_strategies() {
        for threads in [1usize, 2, 4] {
            let options = SimOptions::at_capacity(kind, 0.05).with_threads(threads);
            let untraced = simulate_compiled(&trace, &costs, &options).unwrap();

            let sink = TraceSink::enabled();
            let (traced, _obs): (_, NullObserver) =
                simulate_observed_sharded_compiled_traced(&trace, &costs, &options, &sink).unwrap();
            assert_eq!(
                untraced,
                traced,
                "{} diverged with tracing on at threads={threads}",
                kind.name()
            );
            assert_eq!(untraced.hourly, traced.hourly);

            // The sink recorded the replay it observed: one track per
            // shard worker, chunked replay spans labelled by strategy.
            let log = sink.drain();
            let shard_tracks: Vec<&str> = log
                .tracks()
                .iter()
                .map(|t| t.name.as_str())
                .filter(|n| n.starts_with("shard "))
                .collect();
            assert_eq!(
                shard_tracks.len(),
                threads,
                "expected one replay track per shard, got {shard_tracks:?}"
            );
            let label = format!("replay.{}", kind.name());
            assert!(
                log.tracks()
                    .iter()
                    .flat_map(|t| &t.events)
                    .any(|e| e.label == label),
                "no {label} span recorded"
            );
        }
    }
}

#[test]
fn disabled_sink_records_nothing_and_changes_nothing() {
    let (_w, costs, trace) = fixture();
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05).with_threads(2);
    let untraced = simulate_compiled(&trace, &costs, &options).unwrap();
    let sink = TraceSink::disabled();
    let (result, _obs): (_, NullObserver) =
        simulate_observed_sharded_compiled_traced(&trace, &costs, &options, &sink).unwrap();
    assert_eq!(untraced, result);
    assert!(sink.drain().is_empty(), "disabled sink must stay empty");
}
