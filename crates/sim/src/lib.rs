//! Discrete-event simulator for publish/subscribe content distribution.
//!
//! Replays a [`Workload`](pscd_workload::Workload) (publishing stream +
//! request trace) through a fleet of proxy caches running one
//! [`StrategyKind`](pscd_core::StrategyKind), exactly as the paper's
//! simulator does (§4, figure 2): publish events flow through the
//! matching information into push-time placements; request events hit or
//! miss the local caches; the paper's two metrics — global hit ratio `H`
//! (eq. 8) and publisher→proxy traffic — are collected globally, per
//! proxy and per hour.
//!
//! # Examples
//!
//! ```
//! use pscd_core::StrategyKind;
//! use pscd_sim::{simulate, SimOptions};
//! use pscd_topology::FetchCosts;
//! use pscd_workload::{Workload, WorkloadConfig};
//!
//! let workload = Workload::generate(&WorkloadConfig::news_scaled(0.005))?;
//! let subs = workload.subscriptions(1.0)?;
//! let costs = FetchCosts::uniform(workload.server_count());
//! let gd = simulate(&workload, &subs, &costs,
//!     &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05))?;
//! println!("GD* hit ratio: {:.1}%", gd.hit_ratio_percent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod metrics;
mod runner;

pub use error::SimError;
pub use metrics::{HourlySeries, SimResult};
pub use runner::{simulate, simulate_observed, CrashPlan, SimOptions, Simulation, StepEvent};
