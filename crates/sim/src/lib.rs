//! Discrete-event simulator for publish/subscribe content distribution.
//!
//! Replays a [`Workload`](pscd_workload::Workload) (publishing stream +
//! request trace) through a fleet of proxy caches running one
//! [`StrategyKind`](pscd_core::StrategyKind), exactly as the paper's
//! simulator does (§4, figure 2): publish events flow through the
//! matching information into push-time placements; request events hit or
//! miss the local caches; the paper's two metrics — global hit ratio `H`
//! (eq. 8) and publisher→proxy traffic — are collected globally, per
//! proxy and per hour.
//!
//! The replay pipeline has two stages. First the strategy-independent
//! facts of a `(Workload, SubscriptionTable)` pair — timeline order,
//! per-publish fan-out, per-request subscription counts, invalidation
//! lineage — are compiled into [`TraceWindow`]s pulled from a
//! [`ReplaySource`]; then any number of strategy × capacity × scheme
//! cells replay those windows through one shared replay loop. The
//! materialized source compiles everything **once** into an immutable
//! [`CompiledTrace`] and replays it by reference
//! ([`simulate_compiled`]); the streaming source ([`StreamingTrace`])
//! generates and compiles each time-window lazily from the workload
//! config, so peak memory is bounded by the window, not the trace
//! ([`simulate_streamed`]), and the pipelined variant
//! ([`simulate_streamed_prefetched`]) overlaps that lazy compile with
//! replay through a bounded compile-ahead prefetcher. All three are
//! bit-identical (the `stream_differential` suite proves it).
//!
//! Because the proxies are independent caches, one run can also be
//! sharded across threads along the proxy axis ([`SimOptions::threads`]):
//! the fleet is partitioned into contiguous server ranges, each shard
//! replays its sub-timeline in parallel (the same replay loop restricted
//! to a server range), and the shard results merge into totals
//! bit-identical to the sequential replay (see the `differential` test
//! suite and DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use pscd_core::StrategyKind;
//! use pscd_sim::{simulate, SimOptions};
//! use pscd_topology::FetchCosts;
//! use pscd_workload::{Workload, WorkloadConfig};
//!
//! let workload = Workload::generate(&WorkloadConfig::news_scaled(0.005))?;
//! let subs = workload.subscriptions(1.0)?;
//! let costs = FetchCosts::uniform(workload.server_count());
//! let gd = simulate(&workload, &subs, &costs,
//!     &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05))?;
//! println!("GD* hit ratio: {:.1}%", gd.hit_ratio_percent());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod live;
mod merge;
mod metrics;
pub use pscd_pool as pool;
pub mod prefetch;
pub mod resolve;
mod runner;
mod shard;
pub mod stream;
pub mod trace;
pub mod window;

pub use error::SimError;
pub use metrics::{HourlySeries, SimResult};
pub use prefetch::{
    simulate_streamed_prefetched, simulate_streamed_prefetched_traced, PrefetchOptions,
    PrefetchStats, DEFAULT_PREFETCH_DEPTH,
};
pub use runner::{
    simulate, simulate_compiled, simulate_observed, simulate_observed_sharded,
    simulate_observed_sharded_compiled, simulate_observed_sharded_compiled_traced,
    simulate_windowed, CrashPlan, SimOptions, Simulation, StepEvent,
};
pub use shard::ShardPlan;
pub use stream::{simulate_streamed, StreamingTrace, StreamingWindows};
pub use trace::{CompiledEvent, CompiledEventKind, CompiledTrace};
pub use window::{CompiledWindows, ReplayMeta, ReplaySource, TraceWindow};
