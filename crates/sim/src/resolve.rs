//! Strategy-independent event resolution, shared by trace compilation
//! and the live service supervisor.
//!
//! Resolving an event stream means turning raw publish/subscribe/request
//! events into their replayable facts: a publish's matched-proxy fan-out
//! frozen at publish time, the per-origin version head it supersedes
//! (invalidation lineage), and a request's subscription count at request
//! time. Batch compilation ([`CompiledTrace`](crate::CompiledTrace)),
//! the streaming source ([`StreamingTrace`](crate::StreamingTrace)) and
//! the live service (`pscd-service`) all perform exactly this resolution
//! — the service's differential suite proves they end bit-identical — so
//! the state machines live here, once, and every resolver calls them.

use pscd_types::{PageId, PageMeta, ServerId};

/// The invalidation lineage: the latest published version per *origin*
/// page. A publish of page `p` with origin `o` (itself for originals)
/// supersedes whatever version was previously the head of `o`.
///
/// Dense over the page universe — origins are page ids — so lineage
/// lookups are flat indexing and carrying the heads across streaming
/// window boundaries is an explicit, inspectable value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionHeads {
    heads: Vec<Option<PageId>>,
}

impl VersionHeads {
    /// Empty lineage over a `page_count`-page universe (no version
    /// published yet).
    pub fn new(page_count: usize) -> Self {
        Self {
            heads: vec![None; page_count],
        }
    }

    /// Rebuilds carried lineage state (service snapshot recovery).
    pub fn from_heads(heads: Vec<Option<PageId>>) -> Self {
        Self { heads }
    }

    /// Records the publish of `page` (described by `meta`) and returns
    /// the version it supersedes: the previous head of `page`'s origin,
    /// or `None` for a first version.
    ///
    /// # Panics
    ///
    /// Panics if the page's origin is outside the page universe.
    #[inline]
    pub fn publish(&mut self, page: PageId, meta: &PageMeta) -> Option<PageId> {
        let origin = meta.kind().origin().unwrap_or(page);
        self.heads[origin.as_usize()].replace(page)
    }

    /// The raw heads, indexed by origin page (snapshot encoding).
    pub fn heads(&self) -> &[Option<PageId>] {
        &self.heads
    }

    /// Size of the page universe the lineage covers.
    pub fn page_count(&self) -> usize {
        self.heads.len()
    }
}

/// Live per-(page, server) subscription counts: page-major rows, each
/// sorted by server id — the mutable twin of
/// [`SubscriptionTable`](pscd_types::SubscriptionTable).
///
/// A publish freezes its fan-out by copying the page's current row; a
/// request reads its subscription count from the row as of request time.
/// Both are order-sensitive against subscribes, which is why every
/// resolver must share this one implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubscriptionRows {
    rows: Vec<Vec<(ServerId, u32)>>,
}

impl SubscriptionRows {
    /// Empty rows over a `page_count`-page universe.
    pub fn new(page_count: usize) -> Self {
        Self {
            rows: vec![Vec::new(); page_count],
        }
    }

    /// Rebuilds carried rows (service snapshot recovery).
    pub fn from_rows(rows: Vec<Vec<(ServerId, u32)>>) -> Self {
        Self { rows }
    }

    /// Applies a subscribe: sets `(page, server)` to `count`, inserting,
    /// updating or (at `count == 0`) removing the pair while keeping the
    /// row sorted by server.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the page universe.
    #[inline]
    pub fn set(&mut self, page: PageId, server: ServerId, count: u32) {
        let row = &mut self.rows[page.as_usize()];
        match row.binary_search_by_key(&server, |&(s, _)| s) {
            Ok(i) if count == 0 => {
                row.remove(i);
            }
            Ok(i) => row[i].1 = count,
            Err(_) if count == 0 => {}
            Err(i) => row.insert(i, (server, count)),
        }
    }

    /// The current `(server, count)` row of `page`, sorted by server —
    /// what a publish freezes into its fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the page universe.
    #[inline]
    pub fn row(&self, page: PageId) -> &[(ServerId, u32)] {
        &self.rows[page.as_usize()]
    }

    /// The subscription count of `(page, server)` right now — what a
    /// request resolves against.
    ///
    /// # Panics
    ///
    /// Panics if `page` is outside the page universe.
    #[inline]
    pub fn subs(&self, page: PageId, server: ServerId) -> u32 {
        let row = &self.rows[page.as_usize()];
        row.binary_search_by_key(&server, |&(s, _)| s)
            .map(|i| row[i].1)
            .unwrap_or(0)
    }

    /// All rows, page-major (snapshot encoding).
    pub fn rows(&self) -> &[Vec<(ServerId, u32)>] {
        &self.rows
    }

    /// Size of the page universe the rows cover.
    pub fn page_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{Bytes, PageKind, SimTime};

    fn meta(id: u32, kind: PageKind) -> PageMeta {
        PageMeta::new(PageId::new(id), Bytes::new(100), SimTime::ZERO, kind)
    }

    #[test]
    fn version_heads_track_origin_lineage() {
        let mut heads = VersionHeads::new(4);
        // Original page 0, then two modified versions with origin 0.
        assert_eq!(
            heads.publish(PageId::new(0), &meta(0, PageKind::Original)),
            None
        );
        assert_eq!(
            heads.publish(
                PageId::new(2),
                &meta(
                    2,
                    PageKind::Modified {
                        origin: PageId::new(0),
                        version: 1
                    }
                )
            ),
            Some(PageId::new(0))
        );
        assert_eq!(
            heads.publish(
                PageId::new(3),
                &meta(
                    3,
                    PageKind::Modified {
                        origin: PageId::new(0),
                        version: 1
                    }
                )
            ),
            Some(PageId::new(2))
        );
        // An unrelated original has its own lineage.
        assert_eq!(
            heads.publish(PageId::new(1), &meta(1, PageKind::Original)),
            None
        );
        assert_eq!(heads.heads()[0], Some(PageId::new(3)));
        assert_eq!(heads.heads()[1], Some(PageId::new(1)));
        // Round-trips through raw heads.
        let rebuilt = VersionHeads::from_heads(heads.heads().to_vec());
        assert_eq!(rebuilt, heads);
    }

    #[test]
    fn subscription_rows_insert_update_remove_keep_order() {
        let mut rows = SubscriptionRows::new(2);
        let page = PageId::new(1);
        rows.set(page, ServerId::new(5), 3);
        rows.set(page, ServerId::new(1), 7);
        rows.set(page, ServerId::new(9), 2);
        assert_eq!(
            rows.row(page),
            &[
                (ServerId::new(1), 7),
                (ServerId::new(5), 3),
                (ServerId::new(9), 2)
            ]
        );
        // Update in place.
        rows.set(page, ServerId::new(5), 4);
        assert_eq!(rows.subs(page, ServerId::new(5)), 4);
        // Zero removes; zero on an absent pair is a no-op.
        rows.set(page, ServerId::new(1), 0);
        rows.set(page, ServerId::new(3), 0);
        assert_eq!(
            rows.row(page),
            &[(ServerId::new(5), 4), (ServerId::new(9), 2)]
        );
        assert_eq!(rows.subs(page, ServerId::new(1)), 0);
        assert!(rows.row(PageId::new(0)).is_empty());
        // Round-trips through raw rows.
        let rebuilt = SubscriptionRows::from_rows(rows.rows().to_vec());
        assert_eq!(rebuilt, rows);
    }
}
