//! Windowed replay: bounded chunks of a compiled timeline, pulled from a
//! [`ReplaySource`].
//!
//! The replay loop never needs the whole timeline at once — it consumes
//! events strictly in order. A [`ReplaySource`] hands it one compiled
//! [`TraceWindow`] at a time plus the trace-wide facts ([`ReplayMeta`]:
//! page table, fleet size, capacity basis) that must exist up front.
//! [`CompiledTrace`](crate::CompiledTrace) is the materialized source
//! (one window, or pre-chunked via
//! [`windows`](crate::CompiledTrace::windows));
//! [`StreamingTrace`](crate::StreamingTrace) generates and compiles each
//! window on demand so peak memory is O(window), not O(trace). The
//! `stream_differential` suite proves both sources replay bit-identically.

use pscd_types::{Bytes, PageId, PageMeta, ServerId, SimTime};

use crate::trace::CompiledEvent;

/// Trace-wide facts every replay needs before the first window: the page
/// universe, the fleet, the hour-bucket span, and the capacity/load basis.
/// Immutable and cheap to share; the per-event bulk lives in the windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayMeta {
    /// Page metadata, indexed by page id.
    pub(crate) pages: Vec<PageMeta>,
    pub(crate) servers: u16,
    pub(crate) hours: usize,
    pub(crate) horizon: SimTime,
    pub(crate) publish_count: usize,
    pub(crate) request_count: usize,
    /// Requests per server — the shard-plan load vector.
    pub(crate) load: Vec<u64>,
    /// Per-server unique requested bytes — the capacity basis.
    pub(crate) unique_bytes: Vec<Bytes>,
    /// One-page minimum capacity for servers that requested nothing.
    pub(crate) min_capacity: Bytes,
}

impl ReplayMeta {
    /// The page table, indexed by page id.
    pub fn pages(&self) -> &[PageMeta] {
        &self.pages
    }

    /// Metadata of one page.
    #[inline]
    pub fn page(&self, page: PageId) -> &PageMeta {
        &self.pages[page.as_usize()]
    }

    /// Number of proxy servers.
    pub fn server_count(&self) -> u16 {
        self.servers
    }

    /// Hour buckets covering the horizon (≥ 1).
    pub fn hours(&self) -> usize {
        self.hours
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of publish events across the whole timeline.
    pub fn publish_count(&self) -> usize {
        self.publish_count
    }

    /// Number of request events across the whole timeline.
    pub fn request_count(&self) -> usize {
        self.request_count
    }

    /// Total timeline events (publishes + requests).
    pub fn len(&self) -> usize {
        self.publish_count + self.request_count
    }

    /// `true` if the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests per server over the whole trace — the load vector shard
    /// plans balance on.
    pub fn request_load(&self) -> &[u64] {
        &self.load
    }

    /// Per-server cache capacities at a fraction of unique requested
    /// bytes; identical to `Workload::cache_capacities` (servers that
    /// requested nothing get a one-page minimum).
    pub fn capacities(&self, fraction: f64) -> Vec<Bytes> {
        self.unique_bytes
            .iter()
            .map(|&b| {
                let c = b.scaled(fraction);
                if c.is_zero() {
                    self.min_capacity
                } else {
                    c
                }
            })
            .collect()
    }
}

/// One bounded, fully compiled chunk of the timeline: a contiguous event
/// range with its publish fan-outs resolved into a CSR slice.
///
/// The representation is shared by both sources. `offsets` has one entry
/// per publish in the window plus one; publish ordinal `o` (global) maps
/// to local index `o - ordinal_base`, and `offsets` values index `pairs`
/// directly — for a materialized trace they are global indices into the
/// trace-wide pair table, for a streaming window local indices into the
/// window's own buffer. The arithmetic is identical either way.
#[derive(Debug, Clone, Copy)]
pub struct TraceWindow<'a> {
    /// The full page table (pages outlive any window).
    pub(crate) pages: &'a [PageMeta],
    /// This window's contiguous slice of the merged timeline.
    pub(crate) events: &'a [CompiledEvent],
    /// CSR offsets into `pairs`, one per publish in the window plus one.
    pub(crate) offsets: &'a [u32],
    /// Matched `(server, count)` pairs referenced by `offsets`.
    pub(crate) pairs: &'a [(ServerId, u32)],
    /// Global publish ordinal of the window's first publish.
    pub(crate) ordinal_base: u32,
    /// Global timeline index of `events[0]`.
    pub(crate) start_index: usize,
}

impl<'a> TraceWindow<'a> {
    /// The window's events, in timeline order.
    #[inline]
    pub fn events(&self) -> &'a [CompiledEvent] {
        self.events
    }

    /// Global timeline index of the window's first event.
    #[inline]
    pub fn start_index(&self) -> usize {
        self.start_index
    }

    /// Global timeline index one past the window's last event.
    #[inline]
    pub fn end_index(&self) -> usize {
        self.start_index + self.events.len()
    }

    /// Number of events in the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` for a window with no events (legal mid-stream).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Metadata of one page.
    #[inline]
    pub fn page(&self, page: PageId) -> &'a PageMeta {
        &self.pages[page.as_usize()]
    }

    /// The matched `(server, subscription count)` list of publish ordinal
    /// `ordinal` (global), sorted by server id.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal` does not belong to this window.
    #[inline]
    pub fn matched(&self, ordinal: u32) -> &'a [(ServerId, u32)] {
        let local = (ordinal - self.ordinal_base) as usize;
        let lo = self.offsets[local] as usize;
        let hi = self.offsets[local + 1] as usize;
        &self.pairs[lo..hi]
    }

    /// The part of `ordinal`'s matched list inside the half-open server
    /// range `[start, end)` — a binary-searched subslice, because each
    /// list is sorted by server id (how a shard reads its share of the
    /// push schedule without copying).
    ///
    /// # Panics
    ///
    /// Panics if `ordinal` does not belong to this window.
    #[inline]
    pub fn matched_in(&self, ordinal: u32, start: u16, end: u16) -> &'a [(ServerId, u32)] {
        let matched = self.matched(ordinal);
        let lo = matched.partition_point(|&(s, _)| s.index() < start);
        let hi = matched.partition_point(|&(s, _)| s.index() < end);
        &matched[lo..hi]
    }
}

/// A producer of compiled [`TraceWindow`]s, consumed strictly in timeline
/// order. The two implementations are the materialized
/// [`CompiledWindows`] (slices of a [`CompiledTrace`](crate::CompiledTrace))
/// and the lazily generating
/// [`StreamingWindows`](crate::stream::StreamingWindows); the replay loop
/// cannot tell them apart — the `stream_differential` suite proves the
/// results bit-identical.
pub trait ReplaySource {
    /// Trace-wide facts, available before (and independent of) any window.
    fn meta(&self) -> &ReplayMeta;

    /// Compiles and returns the next window, or `None` after the last.
    /// Windows tile the timeline: `start_index` of each equals the
    /// previous window's `end_index` (empty windows are legal).
    fn next_window(&mut self) -> Option<TraceWindow<'_>>;
}

/// [`ReplaySource`] over a materialized [`CompiledTrace`]: yields the
/// timeline in `per_window`-event slices (the final slice may be
/// shorter). Created by [`CompiledTrace::windows`].
///
/// [`CompiledTrace`]: crate::CompiledTrace
/// [`CompiledTrace::windows`]: crate::CompiledTrace::windows
#[derive(Debug, Clone)]
pub struct CompiledWindows<'a> {
    pub(crate) trace: &'a crate::CompiledTrace,
    pub(crate) per_window: usize,
    /// Next timeline index to serve.
    pub(crate) cursor: usize,
    /// Publishes before `cursor` (the next window's `ordinal_base`).
    pub(crate) publishes_before: usize,
    /// `true` once the final window has been served (so an empty trace
    /// still yields exactly one empty window, then ends).
    pub(crate) done: bool,
}

impl ReplaySource for CompiledWindows<'_> {
    fn meta(&self) -> &ReplayMeta {
        self.trace.meta()
    }

    fn next_window(&mut self) -> Option<TraceWindow<'_>> {
        if self.done {
            return None;
        }
        let events = self.trace.events();
        let start = self.cursor;
        let end = (start + self.per_window).min(events.len());
        self.cursor = end;
        if end == events.len() {
            self.done = true;
        }
        let slice = &events[start..end];
        let publishes = slice
            .iter()
            .filter(|e| matches!(e.kind, crate::trace::CompiledEventKind::Publish { .. }))
            .count();
        let first_pub = self.publishes_before;
        self.publishes_before += publishes;
        Some(TraceWindow {
            pages: self.trace.pages(),
            events: slice,
            // Always a valid subslice, even for a publish-free window
            // (one offset entry delimits zero publishes).
            offsets: &self.trace.offsets()[first_pub..=first_pub + publishes],
            pairs: self.trace.pairs(),
            ordinal_base: first_pub as u32,
            start_index: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CompiledEventKind, CompiledTrace};
    use pscd_workload::{Workload, WorkloadConfig};

    fn fixture() -> CompiledTrace {
        let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        CompiledTrace::compile(&w, &subs).unwrap()
    }

    #[test]
    fn full_window_covers_the_whole_timeline() {
        let trace = fixture();
        let w = trace.full_window();
        assert_eq!(w.start_index(), 0);
        assert_eq!(w.len(), trace.len());
        assert_eq!(w.events(), trace.events());
        for ev in w.events() {
            if let CompiledEventKind::Publish { ordinal, .. } = ev.kind {
                assert_eq!(w.matched(ordinal), trace.matched(ordinal));
            }
        }
    }

    #[test]
    fn chunked_windows_tile_and_agree_with_the_trace() {
        let trace = fixture();
        for per_window in [1, 7, 128, trace.len(), trace.len() + 5] {
            let mut source = trace.windows(per_window);
            assert_eq!(source.meta(), trace.meta());
            let mut next_start = 0usize;
            let mut seen = 0usize;
            while let Some(w) = source.next_window() {
                assert_eq!(w.start_index(), next_start, "windows tile");
                next_start = w.end_index();
                for ev in w.events() {
                    assert_eq!(ev, &trace.events()[seen]);
                    if let CompiledEventKind::Publish { ordinal, .. } = ev.kind {
                        assert_eq!(w.matched(ordinal), trace.matched(ordinal));
                        assert_eq!(
                            w.matched_in(ordinal, 3, 40),
                            trace.matched_in(ordinal, 3, 40)
                        );
                    }
                    seen += 1;
                }
            }
            assert_eq!(seen, trace.len(), "per_window = {per_window}");
        }
    }

    #[test]
    fn capacities_and_meta_match_the_trace_accessors() {
        let trace = fixture();
        let meta = trace.meta();
        assert_eq!(meta.capacities(0.05), trace.capacities(0.05));
        assert_eq!(meta.server_count(), trace.server_count());
        assert_eq!(meta.hours(), trace.hours());
        assert_eq!(meta.horizon(), trace.horizon());
        assert_eq!(meta.request_load(), trace.request_load());
        assert_eq!(meta.len(), trace.len());
        assert_eq!(meta.publish_count(), trace.publish_count());
        assert!(!meta.is_empty());
    }
}
