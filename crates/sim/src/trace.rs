//! The compiled trace: one workload, resolved once, replayed everywhere.
//!
//! Every cell of the paper's evaluation grid (§5: strategy × capacity ×
//! scheme) replays the *same* fixed workload, and so does every shard of
//! a sharded run. The strategy-independent work of that replay — merging
//! the publish and request streams into one time-ordered timeline,
//! resolving each publish event's matched-proxy fan-out and each request
//! event's subscription count against the static matching information
//! (§4.3), and tracking the version lineage that drives stale-page
//! invalidation — is a pure function of `(Workload, SubscriptionTable)`.
//!
//! [`CompiledTrace`] performs that work exactly once. The result is an
//! immutable, `Sync` value: a flat event array with publish-before-request
//! ordering at equal timestamps baked in, a CSR-style fan-out table
//! (absorbing what used to be `pscd_broker::Fanout`), per-request
//! subscription counts, per-publish `supersedes` lineage, and the
//! capacity basis. The sequential runner, every shard worker, and every
//! grid cell replay the same compiled value by reference — which is both
//! the speed win (no per-cell re-derivation) and a determinism pillar
//! (no consumer can see a different timeline than any other).

use std::sync::atomic::{AtomicU64, Ordering};

use pscd_matching::{EngineMatcher, MatchScratch};
use pscd_types::{Bytes, PageId, PageMeta, ServerId, SimTime, SubscriptionTable};
use pscd_workload::Workload;

use crate::pool::parallel_chunked;
use crate::resolve::VersionHeads;
use crate::window::{CompiledWindows, ReplayMeta, TraceWindow};
use crate::SimError;

/// Process-wide count of [`CompiledTrace::compile`] invocations; lets
/// tests assert that a sweep compiles its workload exactly once.
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Publishes resolved per fan-out job. Pure scheduling granularity: the
/// fan-out of publish ordinal `i` depends only on `i`, so chunk
/// boundaries never affect the compiled output.
const PUBLISH_CHUNK: usize = 512;

/// Requests resolved per subscription-count job; scheduling granularity
/// only, like [`PUBLISH_CHUNK`].
const REQUEST_CHUNK: usize = 4096;

/// One event of the flattened timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledEvent {
    /// The event instant.
    pub time: SimTime,
    /// The page involved (index into [`CompiledTrace::pages`]).
    pub page: PageId,
    /// Publish- or request-specific payload.
    pub kind: CompiledEventKind,
}

/// The payload distinguishing publish events from request events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompiledEventKind {
    /// A page is published.
    Publish {
        /// Position in the publishing stream; indexes the fan-out table
        /// ([`CompiledTrace::matched`]).
        ordinal: u32,
        /// The previously-latest version of this article that this
        /// publish supersedes (the invalidation lineage, resolved at
        /// compile time; `None` for first versions).
        supersedes: Option<PageId>,
    },
    /// A subscriber requests a page at a proxy.
    Request {
        /// The proxy serving the request.
        server: ServerId,
        /// Pre-resolved subscription count of `(page, server)`.
        subs: u32,
    },
}

/// An immutable, thread-shareable compilation of one
/// `(Workload, SubscriptionTable)` pair — build it once, replay it from
/// as many cells, shards and threads as needed.
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_sim::{simulate_compiled, CompiledTrace, SimOptions};
/// use pscd_topology::FetchCosts;
/// use pscd_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig::news_scaled(0.004))?;
/// let subs = w.subscriptions(1.0)?;
/// let costs = FetchCosts::uniform(w.server_count());
/// let trace = CompiledTrace::compile(&w, &subs)?;
/// // Replay the same compiled trace under two strategies.
/// let gd = simulate_compiled(
///     &trace,
///     &costs,
///     &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
/// )?;
/// let sg2 = simulate_compiled(
///     &trace,
///     &costs,
///     &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
/// )?;
/// assert_eq!(gd.requests, sg2.requests);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledTrace {
    /// The merged timeline (publishes before requests at equal times).
    events: Vec<CompiledEvent>,
    /// `offsets[i]..offsets[i + 1]` indexes `pairs` for publish ordinal
    /// `i` (CSR fan-out, absorbed from the old `pscd_broker::Fanout`).
    offsets: Vec<u32>,
    /// Matched `(server, count)` pairs in publish order; each publish's
    /// sublist is sorted by server id.
    pairs: Vec<(ServerId, u32)>,
    /// Trace-wide facts shared with every other [`ReplaySource`]
    /// implementation (page table, fleet, capacity/load basis).
    ///
    /// [`ReplaySource`]: crate::ReplaySource
    meta: ReplayMeta,
}

impl CompiledTrace {
    /// Compiles a workload against one subscription table; equivalent to
    /// [`compile_threads`](CompiledTrace::compile_threads) with one
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MismatchedSubscriptions`] if the table covers
    /// a different page universe than the workload.
    pub fn compile(
        workload: &Workload,
        subscriptions: &SubscriptionTable,
    ) -> Result<Self, SimError> {
        Self::compile_threads(workload, subscriptions, 1)
    }

    /// Compiles a workload on up to `threads` pool workers (`0` = auto).
    ///
    /// The stream merge (timeline order, `supersedes` lineage) is
    /// inherently sequential and stays on the caller's thread; the two
    /// expensive strategy-independent resolutions — the publish fan-out
    /// table and the per-request subscription counts — are each a pure
    /// per-event function of the static matching information, so they
    /// shard over the pool by event index and reassemble in index order.
    /// The compiled value is **bit-identical at every thread count**; the
    /// `cold_differential` suite enforces this.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MismatchedSubscriptions`] if the table covers
    /// a different page universe than the workload.
    pub fn compile_threads(
        workload: &Workload,
        subscriptions: &SubscriptionTable,
        threads: usize,
    ) -> Result<Self, SimError> {
        if subscriptions.page_count() != workload.pages().len() {
            return Err(SimError::MismatchedSubscriptions {
                pages: workload.pages().len(),
                table_pages: subscriptions.page_count(),
            });
        }
        let publishes = workload.publishing().events();
        let requests = workload.requests().events();
        let events = Self::merge_timeline(workload);

        // Phase 2: the publish fan-out, sharded by publish ordinal and
        // assembled into the CSR in ordinal order.
        let fanouts: Vec<&[(ServerId, u32)]> =
            parallel_chunked(publishes.len(), PUBLISH_CHUNK, threads, |range| {
                range
                    .map(|i| subscriptions.matched_servers(publishes[i].page))
                    .collect()
            });
        let (offsets, pairs) = Self::build_csr(&fanouts);

        // Phase 3: per-request subscription counts, sharded by request
        // index (request-stream order) and written back in that order.
        let subs_counts: Vec<u32> =
            parallel_chunked(requests.len(), REQUEST_CHUNK, threads, |range| {
                range
                    .map(|i| subscriptions.count(requests[i].page, requests[i].server))
                    .collect()
            });
        Ok(Self::finish(workload, events, offsets, pairs, &subs_counts))
    }

    /// Compiles a workload against a content-based [`EngineMatcher`];
    /// equivalent to
    /// [`compile_from_matcher_threads`](CompiledTrace::compile_from_matcher_threads)
    /// with one thread.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MismatchedMatcher`] if the matcher covers a
    /// different fleet or page universe than the workload.
    pub fn compile_from_matcher(
        workload: &Workload,
        matcher: &mut EngineMatcher,
    ) -> Result<Self, SimError> {
        Self::compile_from_matcher_threads(workload, matcher, 1)
    }

    /// [`compile_threads`](CompiledTrace::compile_threads) resolving
    /// through a content-based [`EngineMatcher`] instead of a precomputed
    /// [`SubscriptionTable`]: every publish fan-out and per-request count
    /// is evaluated live against the per-proxy subscription indexes.
    ///
    /// The matcher is frozen first (a no-op if already frozen), so the
    /// whole resolution runs on the frozen kernel — interned symbols, CSR
    /// buckets, epoch-bitset counting — with each pool worker carrying its
    /// own [`MatchScratch`]. When the matcher was synthesized to reproduce
    /// a table (see `pscd_workload::matcher_from_table`), the compiled
    /// value is `==` to the table-compiled one; the `frozen_differential`
    /// suite proves it end to end.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MismatchedMatcher`] if the matcher covers a
    /// different fleet or page universe than the workload (every workload
    /// page must have registered content).
    pub fn compile_from_matcher_threads(
        workload: &Workload,
        matcher: &mut EngineMatcher,
        threads: usize,
    ) -> Result<Self, SimError> {
        if matcher.server_count() != workload.server_count()
            || matcher.page_count() != workload.pages().len()
        {
            return Err(SimError::MismatchedMatcher {
                servers: workload.server_count(),
                matcher_servers: matcher.server_count(),
                pages: workload.pages().len(),
                matcher_pages: matcher.page_count(),
            });
        }
        matcher.freeze();
        let matcher = &*matcher;
        let publishes = workload.publishing().events();
        let requests = workload.requests().events();
        let events = Self::merge_timeline(workload);

        // Phase 2, engine-resolved: each pool worker owns one scratch and
        // one fan-out buffer; the matcher itself is shared immutably.
        let fanouts: Vec<Vec<(ServerId, u32)>> =
            parallel_chunked(publishes.len(), PUBLISH_CHUNK, threads, |range| {
                let mut scratch = MatchScratch::new();
                let mut buf = Vec::new();
                range
                    .map(|i| {
                        matcher.matched_servers_into(publishes[i].page, &mut scratch, &mut buf);
                        buf.clone()
                    })
                    .collect()
            });
        let (offsets, pairs) = Self::build_csr(&fanouts);

        // Phase 3, engine-resolved per-request counts.
        let subs_counts: Vec<u32> =
            parallel_chunked(requests.len(), REQUEST_CHUNK, threads, |range| {
                let mut scratch = MatchScratch::new();
                range
                    .map(|i| {
                        matcher.match_count_with(requests[i].page, requests[i].server, &mut scratch)
                    })
                    .collect()
            });
        Ok(Self::finish(workload, events, offsets, pairs, &subs_counts))
    }

    /// Phase 1 (sequential): merges the publish and request streams into
    /// the timeline skeleton. Publishes go before requests at equal
    /// timestamps — a notification must precede the requests it triggers —
    /// and the lineage map is driven by the publish stream alone, so it is
    /// resolved here, once, into per-event `supersedes` links. Request
    /// `subs` counts are left 0 and filled by [`finish`](Self::finish).
    fn merge_timeline(workload: &Workload) -> Vec<CompiledEvent> {
        let publishes = workload.publishing().events();
        let requests = workload.requests().events();
        let pages = workload.pages();
        let mut events = Vec::with_capacity(publishes.len() + requests.len());
        let mut latest_version = VersionHeads::new(pages.len());
        let (mut pi, mut ri) = (0usize, 0usize);
        while pi < publishes.len() || ri < requests.len() {
            let publish_next = match (publishes.get(pi), requests.get(ri)) {
                (Some(p), Some(r)) => p.time <= r.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if publish_next {
                let ev = publishes[pi];
                let ordinal = pi as u32;
                pi += 1;
                let meta = &pages[ev.page.as_usize()];
                let supersedes = latest_version.publish(ev.page, meta);
                events.push(CompiledEvent {
                    time: ev.time,
                    page: ev.page,
                    kind: CompiledEventKind::Publish {
                        ordinal,
                        supersedes,
                    },
                });
            } else {
                let ev = requests[ri];
                ri += 1;
                events.push(CompiledEvent {
                    time: ev.time,
                    page: ev.page,
                    kind: CompiledEventKind::Request {
                        server: ev.server,
                        subs: 0,
                    },
                });
            }
        }
        events
    }

    /// Assembles per-publish fan-out lists into the CSR tables.
    fn build_csr<M: AsRef<[(ServerId, u32)]>>(fanouts: &[M]) -> (Vec<u32>, Vec<(ServerId, u32)>) {
        let mut offsets = Vec::with_capacity(fanouts.len() + 1);
        offsets.push(0u32);
        let total: usize = fanouts.iter().map(|m| m.as_ref().len()).sum();
        let mut pairs = Vec::with_capacity(total);
        for matched in fanouts {
            pairs.extend_from_slice(matched.as_ref());
            offsets.push(pairs.len() as u32);
        }
        (offsets, pairs)
    }

    /// Writes the resolved request counts back into the timeline and
    /// assembles the compiled value with its [`ReplayMeta`].
    fn finish(
        workload: &Workload,
        mut events: Vec<CompiledEvent>,
        offsets: Vec<u32>,
        pairs: Vec<(ServerId, u32)>,
        subs_counts: &[u32],
    ) -> Self {
        let mut next_request = 0usize;
        for ev in &mut events {
            if let CompiledEventKind::Request { subs, .. } = &mut ev.kind {
                *subs = subs_counts[next_request];
                next_request += 1;
            }
        }
        let servers = workload.server_count();
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        Self {
            events,
            offsets,
            pairs,
            meta: ReplayMeta {
                pages: workload.pages().to_vec(),
                servers,
                hours: (workload.horizon().as_hours_f64().ceil() as usize).max(1),
                horizon: workload.horizon(),
                publish_count: workload.publishing().len(),
                request_count: workload.requests().len(),
                load: workload.requests().requests_per_server(servers),
                unique_bytes: workload.unique_bytes_per_server(),
                min_capacity: workload.min_cache_capacity(),
            },
        }
    }

    /// Assembles a compiled trace from already-resolved parts — how
    /// [`StreamingTrace::materialize`](crate::StreamingTrace::materialize)
    /// produces a value comparable (with `==`) against [`compile`]'s.
    /// Counts as a compilation for [`compile_count`].
    ///
    /// [`compile`]: CompiledTrace::compile
    /// [`compile_count`]: CompiledTrace::compile_count
    pub(crate) fn from_parts(
        meta: ReplayMeta,
        events: Vec<CompiledEvent>,
        offsets: Vec<u32>,
        pairs: Vec<(ServerId, u32)>,
    ) -> Self {
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        Self {
            events,
            offsets,
            pairs,
            meta,
        }
    }

    /// Process-wide number of [`compile`](CompiledTrace::compile) calls so
    /// far — the hook the compile-exactly-once tests assert on.
    pub fn compile_count() -> u64 {
        COMPILE_COUNT.load(Ordering::Relaxed)
    }

    /// The merged timeline.
    #[inline]
    pub fn events(&self) -> &[CompiledEvent] {
        &self.events
    }

    /// Total events (publishes + requests).
    #[inline]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the timeline is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of publish events.
    pub fn publish_count(&self) -> usize {
        self.meta.publish_count
    }

    /// Number of request events.
    pub fn request_count(&self) -> usize {
        self.meta.request_count
    }

    /// The page table, indexed by page id.
    pub fn pages(&self) -> &[PageMeta] {
        &self.meta.pages
    }

    /// Metadata of one page.
    #[inline]
    pub fn page(&self, page: PageId) -> &PageMeta {
        self.meta.page(page)
    }

    /// Number of proxy servers.
    pub fn server_count(&self) -> u16 {
        self.meta.servers
    }

    /// Hour buckets covering the horizon (≥ 1).
    pub fn hours(&self) -> usize {
        self.meta.hours
    }

    /// The simulation horizon.
    pub fn horizon(&self) -> SimTime {
        self.meta.horizon
    }

    /// The trace-wide replay facts, shared with every other
    /// [`ReplaySource`](crate::ReplaySource) implementation.
    pub fn meta(&self) -> &ReplayMeta {
        &self.meta
    }

    /// The whole timeline as a single [`TraceWindow`] — how the
    /// materialized trace plugs into the window-driven replay loop
    /// without chunking overhead.
    pub fn full_window(&self) -> TraceWindow<'_> {
        TraceWindow {
            pages: &self.meta.pages,
            events: &self.events,
            offsets: &self.offsets,
            pairs: &self.pairs,
            ordinal_base: 0,
            start_index: 0,
        }
    }

    /// A [`ReplaySource`](crate::ReplaySource) serving this trace in
    /// `per_window`-event slices (the final slice may be shorter; a
    /// `per_window` of 0 is treated as 1). Replaying the chunked source
    /// is bit-identical to replaying [`full_window`] — the
    /// `stream_differential` suite proves it.
    ///
    /// [`full_window`]: CompiledTrace::full_window
    pub fn windows(&self, per_window: usize) -> CompiledWindows<'_> {
        CompiledWindows {
            trace: self,
            per_window: per_window.max(1),
            cursor: 0,
            publishes_before: 0,
            done: false,
        }
    }

    /// The trace-wide CSR offsets (window sources slice these).
    pub(crate) fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The trace-wide matched-pair table.
    pub(crate) fn pairs(&self) -> &[(ServerId, u32)] {
        &self.pairs
    }

    /// The matched `(server, subscription count)` list of publish ordinal
    /// `ordinal`, sorted by server id.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal` is out of range.
    #[inline]
    pub fn matched(&self, ordinal: u32) -> &[(ServerId, u32)] {
        let lo = self.offsets[ordinal as usize] as usize;
        let hi = self.offsets[ordinal as usize + 1] as usize;
        &self.pairs[lo..hi]
    }

    /// The part of ordinal `ordinal`'s matched list inside the half-open
    /// server range `[start, end)` — a subslice found by binary search,
    /// because each list is sorted by server id. This is how a shard
    /// owning a contiguous server range reads its share of the push
    /// schedule without copying or filtering.
    ///
    /// # Panics
    ///
    /// Panics if `ordinal` is out of range.
    #[inline]
    pub fn matched_in(&self, ordinal: u32, start: u16, end: u16) -> &[(ServerId, u32)] {
        let matched = self.matched(ordinal);
        let lo = matched.partition_point(|&(s, _)| s.index() < start);
        let hi = matched.partition_point(|&(s, _)| s.index() < end);
        &matched[lo..hi]
    }

    /// Total matched `(event, server)` pairs across the whole push
    /// schedule — an upper bound on the pages any pushing scheme can
    /// transfer.
    pub fn total_matched_pairs(&self) -> u64 {
        self.pairs.len() as u64
    }

    /// Requests per server over the whole trace — the load vector shard
    /// plans balance on.
    pub fn request_load(&self) -> &[u64] {
        &self.meta.load
    }

    /// Per-server cache capacities at a fraction of unique requested
    /// bytes; identical to `Workload::cache_capacities` (servers that
    /// requested nothing get a one-page minimum).
    pub fn capacities(&self, fraction: f64) -> Vec<Bytes> {
        self.meta.capacities(fraction)
    }

    /// The precomputed crash-insertion point: the index of the first
    /// event at or after `time`. A replay's crash fires when its cursor
    /// reaches this index — equivalent to the time comparison the
    /// pre-compiled runner made per event, but resolved once.
    pub fn crash_index(&self, time: SimTime) -> usize {
        self.events.partition_point(|e| e.time < time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_workload::WorkloadConfig;
    use std::collections::HashMap;

    fn fixture() -> (Workload, SubscriptionTable) {
        let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        (w, subs)
    }

    #[test]
    fn timeline_is_merged_in_order_with_publishes_first() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        assert_eq!(trace.len(), w.publishing().len() + w.requests().len());
        assert_eq!(trace.publish_count(), w.publishing().len());
        assert_eq!(trace.request_count(), w.requests().len());
        for pair in trace.events().windows(2) {
            assert!(pair[0].time <= pair[1].time, "timeline out of order");
            if pair[0].time == pair[1].time {
                // At equal timestamps no request may precede a publish.
                assert!(
                    !(matches!(pair[0].kind, CompiledEventKind::Request { .. })
                        && matches!(pair[1].kind, CompiledEventKind::Publish { .. })),
                    "request before publish at equal time"
                );
            }
        }
    }

    #[test]
    fn fanout_matches_table_lookups() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        let mut publishes = 0u32;
        let mut pairs = 0u64;
        for ev in trace.events() {
            match ev.kind {
                CompiledEventKind::Publish { ordinal, .. } => {
                    assert_eq!(trace.matched(ordinal), subs.matched_servers(ev.page));
                    pairs += trace.matched(ordinal).len() as u64;
                    publishes += 1;
                }
                CompiledEventKind::Request { server, subs: n } => {
                    assert_eq!(n, subs.count(ev.page, server));
                }
            }
        }
        assert_eq!(publishes as usize, trace.publish_count());
        assert_eq!(pairs, trace.total_matched_pairs());
    }

    #[test]
    fn matched_in_slices_are_exact_partitions() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        let servers = trace.server_count();
        for ordinal in 0..trace.publish_count().min(40) as u32 {
            for split in [0, 1, servers / 2, servers] {
                let left = trace.matched_in(ordinal, 0, split);
                let right = trace.matched_in(ordinal, split, servers);
                let whole: Vec<_> = left.iter().chain(right).copied().collect();
                assert_eq!(whole.as_slice(), trace.matched(ordinal));
            }
        }
    }

    #[test]
    fn supersedes_links_follow_the_lineage() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        let mut latest: HashMap<PageId, PageId> = HashMap::new();
        let mut links = 0usize;
        for ev in trace.events() {
            if let CompiledEventKind::Publish { supersedes, .. } = ev.kind {
                let origin = trace.page(ev.page).kind().origin().unwrap_or(ev.page);
                assert_eq!(supersedes, latest.insert(origin, ev.page));
                if supersedes.is_some() {
                    links += 1;
                }
            }
        }
        assert!(links > 0, "the NEWS trace republishes modified versions");
    }

    #[test]
    fn capacity_basis_matches_workload() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        for fraction in [0.01, 0.05, 0.10] {
            assert_eq!(trace.capacities(fraction), w.cache_capacities(fraction));
        }
        assert_eq!(
            trace.request_load(),
            w.requests()
                .requests_per_server(w.server_count())
                .as_slice()
        );
        assert_eq!(trace.server_count(), w.server_count());
        assert_eq!(trace.horizon(), w.horizon());
    }

    #[test]
    fn crash_index_is_the_first_event_at_or_after() {
        let (w, subs) = fixture();
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        assert_eq!(trace.crash_index(SimTime::ZERO), 0);
        assert_eq!(trace.crash_index(SimTime::from_days(100_000)), trace.len());
        let mid = trace.events()[trace.len() / 2].time;
        let at = trace.crash_index(mid);
        assert!(trace.events()[at].time >= mid);
        assert!(at == 0 || trace.events()[at - 1].time < mid);
    }

    #[test]
    fn compile_is_bit_identical_at_every_thread_count() {
        let (w, subs) = fixture();
        let seq = CompiledTrace::compile_threads(&w, &subs, 1).unwrap();
        for threads in [2, 4, 0] {
            let par = CompiledTrace::compile_threads(&w, &subs, threads).unwrap();
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn matcher_compile_equals_table_compile_at_every_thread_count() {
        let (w, subs) = fixture();
        let reference = CompiledTrace::compile(&w, &subs).unwrap();
        let mut matcher = pscd_workload::matcher_from_table(&subs, w.server_count());
        let seq = CompiledTrace::compile_from_matcher(&w, &mut matcher).unwrap();
        assert_eq!(seq, reference);
        assert!(matcher.is_frozen(), "compile leaves the matcher frozen");
        for threads in [2, 0] {
            let par =
                CompiledTrace::compile_from_matcher_threads(&w, &mut matcher, threads).unwrap();
            assert_eq!(par, reference, "threads = {threads}");
        }
        // A matcher covering the wrong universe is rejected up front.
        let mut empty = EngineMatcher::new(w.server_count());
        assert!(matches!(
            CompiledTrace::compile_from_matcher(&w, &mut empty),
            Err(SimError::MismatchedMatcher { .. })
        ));
    }

    #[test]
    fn mismatched_subscriptions_rejected_and_counter_advances() {
        let (w, subs) = fixture();
        let before = CompiledTrace::compile_count();
        assert!(matches!(
            CompiledTrace::compile(&w, &SubscriptionTable::empty(1)),
            Err(SimError::MismatchedSubscriptions { .. })
        ));
        let _ = CompiledTrace::compile(&w, &subs).unwrap();
        assert!(CompiledTrace::compile_count() > before);
    }
}
