//! Streaming trace compilation: bounded-memory replay straight from the
//! workload config.
//!
//! [`CompiledTrace`] materializes the whole timeline — millions of events
//! for paper-scale traces — before the first replay step. But every
//! random draw in `pscd-workload` already comes from a per-entity
//! substream ([`pscd_workload::seeds`]), so any page's request events can
//! be regenerated on demand, bit for bit, without the rest of the trace.
//! [`StreamingTrace`] exploits that: it keeps only the O(pages) artifacts
//! resident (page table, publish stream, the [`RequestStream`] draws, the
//! subscription table, per-page time spans) and compiles each time-window
//! of the timeline lazily as the replay loop pulls it, carrying the
//! cross-window state — per-origin version heads, the global publish
//! ordinal, the global event index — explicitly in [`WindowState`].
//! Peak memory is O(window), not O(trace); the `stream_memory` suite
//! proves it with a counting allocator.
//!
//! Bit-identity with the monolithic path rests on three facts:
//!
//! 1. **Stable time-sort commutes with time-windowing.** The monolithic
//!    request trace is the stable time-sort of the page-major
//!    concatenation of per-page events; filtering that order to `[t0, t1)`
//!    equals regenerating the pages overlapping the window, filtering
//!    per event, and stable-sorting — equal-time ties resolve page-major
//!    either way. A scenario [`TimeWarp`] is applied per event *before*
//!    the sort in both paths, so warping cannot reorder ties.
//! 2. **Publish/request merging is windowable.** Windows cut the timeline
//!    at instants, so the `publish.time <= request.time` tie-break only
//!    ever compares events landing in the same window.
//! 3. **Resolution is per-event or carried.** Fan-outs and subscription
//!    counts are static table lookups; the only cross-event state,
//!    the per-origin version heads driving `supersedes`, is carried in
//!    [`VersionHeads`] across window seams.
//!
//! Two pulls on the same machinery exist. The serial pass
//! ([`StreamingTrace::open`]) regenerates one window at a time on the
//! replay thread. The pipelined pass (`crate::prefetch`,
//! [`simulate_streamed_prefetched`](crate::simulate_streamed_prefetched))
//! moves generation + compilation to a producer thread that works
//! `prefetch_depth` windows ahead, batching regeneration across the
//! lookahead so pages whose spans straddle seams regenerate once per
//! batch instead of once per window. Both drive the same
//! [`compile_window_into`](StreamingTrace::compile_window_into) core over
//! the same [`WindowState`], so the per-window merge/resolve logic cannot
//! diverge; what the differential suite additionally proves is that the
//! batched *generation* scatters the same events. A constructor-fused
//! lookahead cache ([`StreamingTrace::with_lookahead`]) goes one step
//! further: the counting scan regenerates every page anyway, so it
//! scatters the first `depth` windows' requests as a side product and the
//! first batch replays without regenerating at all.
//!
//! The `stream_differential` suite asserts [`StreamingTrace::materialize`]
//! `==` [`CompiledTrace::compile`] and replay-result equality for every
//! strategy across window sizes, thread counts, and prefetch depths.

use pscd_matching::{EngineMatcher, MatchScratch};
use pscd_obs::NullObserver;
use pscd_topology::FetchCosts;
use pscd_types::{Bytes, PublishEvent, RequestEvent, ServerId, SimTime, SubscriptionTable};
use pscd_workload::{
    generate_publishing_threads, generate_subscriptions_from_counts, RequestStream, ScenarioConfig,
    TimeWarp, WorkloadConfig, WorkloadError,
};

use crate::pool::parallel_chunked;
use crate::resolve::VersionHeads;
use crate::runner::{simulate_windowed, validate_meta, SimOptions};
use crate::trace::{CompiledEvent, CompiledEventKind, CompiledTrace};
use crate::window::{ReplayMeta, ReplaySource, TraceWindow};
use crate::{SimError, SimResult};

/// Pages per pool job in the counting scan. Scheduling granularity only —
/// every page has its own substream, so chunking never affects output.
const SCAN_CHUNK: usize = 256;

/// A replay source that regenerates and compiles the timeline one
/// time-window at a time, directly from the workload config.
///
/// Construction runs the trace-wide draws ([`RequestStream::prepare`]),
/// the publish stream, and one counting scan over the pages (request
/// counts per `(page, server)`, per-page time spans, the capacity/load
/// basis) — everything O(pages + servers), never the event bulk. The
/// subscription table is derived from the counted `P_{i,j}` exactly as
/// `Workload::subscriptions` derives it from the materialized trace, so
/// both paths resolve against the same table.
///
/// [`open`](StreamingTrace::open) starts a serial window pass;
/// [`simulate_streamed`] replays one (sharded if asked);
/// [`simulate_streamed_prefetched`](crate::simulate_streamed_prefetched)
/// replays through the pipelined prefetcher;
/// [`materialize`](StreamingTrace::materialize) rebuilds the full
/// [`CompiledTrace`] for differential proofs and memoizing consumers.
#[derive(Debug)]
pub struct StreamingTrace {
    meta: ReplayMeta,
    /// The full publish stream, time-sorted (O(pages), kept resident).
    publishes: Vec<PublishEvent>,
    /// The trace-wide request draws; per-page events regenerate from it.
    stream: RequestStream,
    /// Optional scenario intensity remap, applied per event before each
    /// window's stable sort (see the module docs on tie order).
    warp: Option<TimeWarp>,
    subscriptions: SubscriptionTable,
    /// Optional content-based matcher (frozen); when attached, window
    /// resolution evaluates it instead of the table lookups.
    matcher: Option<EngineMatcher>,
    /// Warped `[first, last]` request instants per page; `None` for pages
    /// that drew no requests. The window overlap filter.
    page_span: Vec<Option<(SimTime, SimTime)>>,
    /// Window length in milliseconds.
    window_ms: u64,
    /// Number of windows tiling `[0, horizon)`.
    window_count: usize,
    /// Constructor-fused request cache for the first
    /// [`lookahead_len`](Self::lookahead_len) windows: the counting scan's
    /// per-page regeneration scattered into per-window buckets (warped,
    /// page-major pre-sort order, unsorted). Empty unless built with
    /// [`with_lookahead`](Self::with_lookahead); O(lookahead × window).
    lookahead: Vec<Vec<RequestEvent>>,
}

/// One page's contribution to the counting scan.
struct PageScan {
    page: u32,
    /// `(server, requests)` in ascending server order.
    servers: Vec<(u16, u64)>,
    /// Warped `[first, last]` request instants.
    span: (SimTime, SimTime),
    /// The page's warped events landing in the lookahead prefix (empty
    /// when no lookahead was requested).
    cached: Vec<RequestEvent>,
}

impl StreamingTrace {
    /// Builds a streaming source for `config` with subscriptions at
    /// `quality` (coverage 1, like `Workload::subscriptions`), windows of
    /// length `window` (`0` = one whole-horizon window), on up to
    /// `threads` pool workers (`0` = auto, `1` = inline). Deterministic in
    /// the config seed at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid configs,
    /// mismatched horizons, or an out-of-range quality.
    pub fn new(
        config: &WorkloadConfig,
        quality: f64,
        window: SimTime,
        threads: usize,
    ) -> Result<Self, WorkloadError> {
        Self::with_warp(config, None, quality, window, threads, 0)
    }

    /// [`new`](StreamingTrace::new) plus a constructor-fused lookahead
    /// cache covering the first `lookahead` windows: the counting scan
    /// already regenerates every page once, so it scatters those windows'
    /// requests as a side product and the first prefetch batch (or the
    /// first `lookahead` serial windows) replays without regenerating.
    /// Output is bit-identical to [`new`](StreamingTrace::new); resident
    /// memory grows by O(`lookahead` × window).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] like
    /// [`new`](StreamingTrace::new).
    pub fn with_lookahead(
        config: &WorkloadConfig,
        quality: f64,
        window: SimTime,
        threads: usize,
        lookahead: usize,
    ) -> Result<Self, WorkloadError> {
        Self::with_warp(config, None, quality, window, threads, lookahead)
    }

    /// [`new`](StreamingTrace::new) for a scenario: derives the workload
    /// config and [`TimeWarp`] from `scenario` and streams the warped
    /// timeline — bit-identical to compiling `scenario.build_threads()`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid scenarios or
    /// an out-of-range quality.
    pub fn from_scenario(
        scenario: &ScenarioConfig,
        quality: f64,
        window: SimTime,
        threads: usize,
    ) -> Result<Self, WorkloadError> {
        Self::from_scenario_with_lookahead(scenario, quality, window, threads, 0)
    }

    /// [`from_scenario`](StreamingTrace::from_scenario) with a
    /// constructor-fused lookahead cache (see
    /// [`with_lookahead`](StreamingTrace::with_lookahead)).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConfig`] for invalid scenarios or
    /// an out-of-range quality.
    pub fn from_scenario_with_lookahead(
        scenario: &ScenarioConfig,
        quality: f64,
        window: SimTime,
        threads: usize,
        lookahead: usize,
    ) -> Result<Self, WorkloadError> {
        let config = scenario.workload_config()?;
        let warp = scenario.time_warp()?;
        Self::with_warp(&config, warp, quality, window, threads, lookahead)
    }

    fn with_warp(
        config: &WorkloadConfig,
        warp: Option<TimeWarp>,
        quality: f64,
        window: SimTime,
        threads: usize,
        lookahead: usize,
    ) -> Result<Self, WorkloadError> {
        if config.publishing.horizon != config.requests.horizon {
            return Err(WorkloadError::InvalidConfig {
                field: "horizon",
                constraint: "publishing.horizon == requests.horizon",
            });
        }
        let horizon = config.publishing.horizon;
        let window_ms = match window.as_millis() {
            0 => horizon.as_millis().max(1),
            ms => ms,
        };
        let window_count = (horizon.as_millis().max(1)).div_ceil(window_ms).max(1) as usize;
        // The cache prefix ends at a window boundary; when it covers every
        // window it must be open-ended like the final window itself.
        let cached_windows = lookahead.min(window_count);
        let cache_end = if cached_windows == 0 {
            SimTime::ZERO
        } else if cached_windows == window_count {
            SimTime::from_millis(u64::MAX)
        } else {
            SimTime::from_millis(window_ms * cached_windows as u64)
        };

        let publishing = generate_publishing_threads(&config.publishing, config.seed, threads)?;
        let pages = publishing.pages;
        let stream = RequestStream::prepare(pages.len(), &config.requests, config.seed, threads)?;

        // The counting scan: regenerate each page's events once, count
        // them per server, note the warped time span — and drop them
        // (except the lookahead prefix, scattered here for free since the
        // events are in hand anyway). This is the only full pass outside
        // replay; it holds one page's events at a time per worker.
        let scans: Vec<PageScan> = parallel_chunked(pages.len(), SCAN_CHUNK, threads, |range| {
            let mut out = Vec::new();
            let mut scratch: Vec<RequestEvent> = Vec::new();
            let mut servers: Vec<u16> = Vec::new();
            for page_idx in range {
                if stream.count(page_idx) == 0 {
                    continue;
                }
                scratch.clear();
                stream.append_page_requests(&pages, page_idx, &mut scratch);
                // Events are time-sorted within the page; a monotone warp
                // keeps first/last the span ends.
                let first = scratch.first().expect("count > 0").time;
                let last = scratch.last().expect("count > 0").time;
                let span = match &warp {
                    Some(w) => (w.apply(first), w.apply(last)),
                    None => (first, last),
                };
                servers.clear();
                servers.extend(scratch.iter().map(|e| e.server.index()));
                servers.sort_unstable();
                let mut counts: Vec<(u16, u64)> = Vec::new();
                for &s in servers.iter() {
                    match counts.last_mut() {
                        Some((prev, n)) if *prev == s => *n += 1,
                        _ => counts.push((s, 1)),
                    }
                }
                let mut cached: Vec<RequestEvent> = Vec::new();
                if span.0 < cache_end {
                    for ev in &scratch {
                        let time = match &warp {
                            Some(w) => w.apply(ev.time),
                            None => ev.time,
                        };
                        if time < cache_end {
                            cached.push(RequestEvent::new(time, ev.server, ev.page));
                        }
                    }
                }
                out.push(PageScan {
                    page: page_idx as u32,
                    servers: counts,
                    span,
                    cached,
                });
            }
            out
        });

        let servers = config.requests.servers;
        let mut load = vec![0u64; servers as usize];
        let mut unique_bytes = vec![Bytes::ZERO; servers as usize];
        let mut page_span = vec![None; pages.len()];
        let mut groups: Vec<(u32, Vec<(u16, u64)>)> = Vec::with_capacity(scans.len());
        let mut lookahead_buckets: Vec<Vec<RequestEvent>> = vec![Vec::new(); cached_windows];
        let mut request_count = 0usize;
        // Scans arrive in ascending page order (chunks concatenate in
        // order), so scattering here keeps each bucket page-major — the
        // exact pre-sort order `scatter_batch` produces at replay time.
        for scan in scans {
            let size = pages[scan.page as usize].size();
            for &(s, n) in &scan.servers {
                load[s as usize] += n;
                unique_bytes[s as usize] += size;
                request_count += n as usize;
            }
            page_span[scan.page as usize] = Some(scan.span);
            for ev in scan.cached {
                let w = ((ev.time.as_millis() / window_ms) as usize).min(cached_windows - 1);
                lookahead_buckets[w].push(ev);
            }
            groups.push((scan.page, scan.servers));
        }

        // Same counts, same per-page substreams, same seed derivation as
        // `Workload::subscriptions` — hence the same table.
        let subscriptions = generate_subscriptions_from_counts(
            &groups,
            pages.len(),
            quality,
            1.0,
            config.seed ^ quality.to_bits(),
            threads,
        )?;

        let publishes = publishing.stream.events().to_vec();
        Ok(Self {
            meta: ReplayMeta {
                publish_count: publishes.len(),
                request_count,
                pages,
                servers,
                hours: (horizon.as_hours_f64().ceil() as usize).max(1),
                horizon,
                load,
                unique_bytes,
                min_capacity: Bytes::new(config.publishing.max_page_bytes),
            },
            publishes,
            stream,
            warp,
            subscriptions,
            matcher: None,
            page_span,
            window_ms,
            window_count,
            lookahead: lookahead_buckets,
        })
    }

    /// Attaches a content-based matcher: every later window pass resolves
    /// publish fan-outs and request counts against its frozen kernel
    /// instead of the subscription table. The matcher is frozen here, once
    /// (a no-op if already frozen). When the matcher reproduces the table
    /// (see `pscd_workload::matcher_from_table`), streaming output stays
    /// bit-identical — the `frozen_differential` suite proves it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MismatchedMatcher`] if the matcher covers a
    /// different fleet or page universe than the trace.
    pub fn attach_matcher(&mut self, mut matcher: EngineMatcher) -> Result<(), SimError> {
        if matcher.server_count() != self.meta.servers
            || matcher.page_count() != self.meta.pages.len()
        {
            return Err(SimError::MismatchedMatcher {
                servers: self.meta.servers,
                matcher_servers: matcher.server_count(),
                pages: self.meta.pages.len(),
                matcher_pages: matcher.page_count(),
            });
        }
        matcher.freeze();
        self.matcher = Some(matcher);
        Ok(())
    }

    /// The trace-wide replay facts (page table, fleet, capacity basis).
    pub fn meta(&self) -> &ReplayMeta {
        &self.meta
    }

    /// The subscription table both paths resolve against.
    pub fn subscriptions(&self) -> &SubscriptionTable {
        &self.subscriptions
    }

    /// Window length.
    pub fn window_size(&self) -> SimTime {
        SimTime::from_millis(self.window_ms)
    }

    /// Number of windows tiling the horizon.
    pub fn window_count(&self) -> usize {
        self.window_count
    }

    /// How many leading windows the constructor-fused cache covers
    /// (`0` unless built with [`with_lookahead`](Self::with_lookahead)).
    pub fn lookahead_len(&self) -> usize {
        self.lookahead.len()
    }

    /// The cached, unsorted (page-major) requests of window `k`, if the
    /// lookahead prefix covers it.
    pub(crate) fn lookahead_window(&self, k: usize) -> Option<&[RequestEvent]> {
        self.lookahead.get(k).map(Vec::as_slice)
    }

    /// The half-open `[t0, t1)` bounds of window `k`. The final window is
    /// open-ended so clamped events at the horizon edge (and any publish
    /// at it) cannot fall between windows.
    fn window_bounds(&self, k: usize) -> (SimTime, SimTime) {
        let t0 = SimTime::from_millis(self.window_ms * k as u64);
        let t1 = if k + 1 >= self.window_count {
            SimTime::from_millis(u64::MAX)
        } else {
            SimTime::from_millis(self.window_ms * (k as u64 + 1))
        };
        (t0, t1)
    }

    /// Regenerates every page whose span overlaps windows
    /// `[first, first + count)` — once per page for the whole batch — and
    /// scatters the warped, filtered events into `buckets[0..count]`
    /// (ascending page order, so each bucket is page-major pre-sort, the
    /// same relative order the monolithic generator feeds its one stable
    /// sort). Batching is what the prefetcher's speedup is made of: a page
    /// straddling `count` seams regenerates once instead of `count` times.
    pub(crate) fn scatter_batch(
        &self,
        first: usize,
        count: usize,
        scratch: &mut Vec<RequestEvent>,
        buckets: &mut [Vec<RequestEvent>],
    ) {
        debug_assert!(count >= 1 && first + count <= self.window_count);
        debug_assert!(buckets.len() >= count);
        let (t0, _) = self.window_bounds(first);
        let (_, t_end) = self.window_bounds(first + count - 1);
        for (page_idx, span) in self.page_span.iter().enumerate() {
            let Some((p_first, p_last)) = span else {
                continue;
            };
            if *p_last < t0 || *p_first >= t_end {
                continue;
            }
            scratch.clear();
            self.stream
                .append_page_requests(&self.meta.pages, page_idx, scratch);
            for ev in scratch.iter() {
                let time = match &self.warp {
                    Some(w) => w.apply(ev.time),
                    None => ev.time,
                };
                if time >= t0 && time < t_end {
                    // The division maps into the batch; the clamp folds
                    // the open-ended final window back onto its bucket.
                    let w = ((time.as_millis() / self.window_ms) as usize - first).min(count - 1);
                    buckets[w].push(RequestEvent::new(time, ev.server, ev.page));
                }
            }
        }
    }

    /// Compiles the next window (per `state`) from its already-gathered,
    /// time-sorted `requests`: consumes the publish stream up to the
    /// window end, merges with the `publish.time <= request.time`
    /// tie-break, and resolves fan-outs/counts — the same static lookups
    /// as `CompiledTrace::compile`, with the lineage carried in
    /// `state.heads` instead of a trace-local map. Returns the window's
    /// `(ordinal_base, start_index)` and advances every piece of carried
    /// state. Both the serial pass and the pipelined producer funnel
    /// through here, so the merge/resolve logic cannot diverge.
    pub(crate) fn compile_window_into(
        &self,
        state: &mut WindowState,
        requests: &[RequestEvent],
        events: &mut Vec<CompiledEvent>,
        offsets: &mut Vec<u32>,
        pairs: &mut Vec<(ServerId, u32)>,
    ) -> (u32, usize) {
        let k = state.next_window;
        debug_assert!(k < self.window_count, "compile past the last window");
        state.next_window += 1;
        let (_t0, t1) = self.window_bounds(k);
        debug_assert!(requests.windows(2).all(|w| w[0].time <= w[1].time));

        // Publishes in [t0, t1): everything earlier was consumed by
        // previous windows (the stream is time-sorted).
        let pub_start = state.publish_cursor;
        while self
            .publishes
            .get(state.publish_cursor)
            .is_some_and(|p| p.time < t1)
        {
            state.publish_cursor += 1;
        }
        let window_pubs = &self.publishes[pub_start..state.publish_cursor];

        events.clear();
        offsets.clear();
        offsets.push(0);
        pairs.clear();
        let (mut pi, mut ri) = (0usize, 0usize);
        while pi < window_pubs.len() || ri < requests.len() {
            let publish_next = match (window_pubs.get(pi), requests.get(ri)) {
                (Some(p), Some(r)) => p.time <= r.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if publish_next {
                let ev = window_pubs[pi];
                let ordinal = (pub_start + pi) as u32;
                pi += 1;
                let meta = &self.meta.pages[ev.page.as_usize()];
                let supersedes = state.heads.publish(ev.page, meta);
                let matched: &[(ServerId, u32)] = match &self.matcher {
                    Some(m) => {
                        m.matched_servers_into(
                            ev.page,
                            &mut state.match_scratch,
                            &mut state.fanout_buf,
                        );
                        &state.fanout_buf
                    }
                    None => self.subscriptions.matched_servers(ev.page),
                };
                pairs.extend_from_slice(matched);
                offsets.push(pairs.len() as u32);
                events.push(CompiledEvent {
                    time: ev.time,
                    page: ev.page,
                    kind: CompiledEventKind::Publish {
                        ordinal,
                        supersedes,
                    },
                });
            } else {
                let ev = requests[ri];
                ri += 1;
                events.push(CompiledEvent {
                    time: ev.time,
                    page: ev.page,
                    kind: CompiledEventKind::Request {
                        server: ev.server,
                        subs: match &self.matcher {
                            Some(m) => {
                                m.match_count_with(ev.page, ev.server, &mut state.match_scratch)
                            }
                            None => self.subscriptions.count(ev.page, ev.server),
                        },
                    },
                });
            }
        }

        let start_index = state.start_index;
        state.start_index += events.len();
        (pub_start as u32, start_index)
    }

    /// Starts a serial window pass: a [`ReplaySource`] yielding the
    /// timeline in `window_size` slices. Each open pass regenerates the
    /// request events window by window (reusing its buffers), carrying
    /// version heads, publish ordinals and event indices across seams.
    /// Multiple passes can be open concurrently — the trace itself is
    /// immutable — which is what lets shard workers each pull their own
    /// sequence.
    pub fn open(&self) -> StreamingWindows<'_> {
        StreamingWindows {
            trace: self,
            state: WindowState::new(self),
            events: Vec::new(),
            offsets: Vec::new(),
            pairs: Vec::new(),
            scratch: Vec::new(),
            requests: Vec::new(),
        }
    }

    /// Rebuilds the monolithic [`CompiledTrace`] by draining one window
    /// pass and concatenating (rebasing each window's local CSR onto the
    /// global pair table). The result is `==` to
    /// [`CompiledTrace::compile`] on the materialized workload — the
    /// differential proof, and the bridge for consumers that want to
    /// stream the compile but memoize the result.
    pub fn materialize(&self) -> CompiledTrace {
        let mut events: Vec<CompiledEvent> = Vec::with_capacity(self.meta.len());
        let mut offsets: Vec<u32> = Vec::with_capacity(self.meta.publish_count() + 1);
        offsets.push(0);
        let mut pairs: Vec<(ServerId, u32)> = Vec::new();
        let mut pass = self.open();
        while let Some(w) = pass.next_window() {
            events.extend_from_slice(w.events());
            let base = pairs.len() as u32;
            for &off in &w.offsets[1..] {
                offsets.push(base + off);
            }
            pairs.extend_from_slice(w.pairs);
        }
        CompiledTrace::from_parts(self.meta.clone(), events, offsets, pairs)
    }
}

/// Every piece of replay state carried across window seams, in one place:
/// the window cursor, the publish cursor (== the next window's ordinal
/// base), the global event index, the per-origin version heads driving
/// `supersedes`, and the matcher scratch. One `WindowState` advances
/// strictly in window order — handing it to
/// [`StreamingTrace::compile_window_into`] is what makes a window pass a
/// pass, whether the serial source or the pipelined producer owns it.
#[derive(Debug)]
pub(crate) struct WindowState {
    next_window: usize,
    publish_cursor: usize,
    start_index: usize,
    heads: VersionHeads,
    /// Counting scratch for the attached matcher's frozen kernel.
    match_scratch: MatchScratch,
    /// Fan-out buffer for the attached matcher (reused per publish).
    fanout_buf: Vec<(ServerId, u32)>,
}

impl WindowState {
    pub(crate) fn new(trace: &StreamingTrace) -> Self {
        Self {
            next_window: 0,
            publish_cursor: 0,
            start_index: 0,
            heads: VersionHeads::new(trace.meta.pages.len()),
            match_scratch: MatchScratch::new(),
            fanout_buf: Vec::new(),
        }
    }

    /// The next window this state will compile.
    pub(crate) fn next_window(&self) -> usize {
        self.next_window
    }
}

/// One serial pass over a [`StreamingTrace`]'s windows: the lazily
/// generating [`ReplaySource`]. All cross-window replay state lives in the
/// owned [`WindowState`]; the window buffers are reused allocation-steady
/// from window to window.
#[derive(Debug)]
pub struct StreamingWindows<'a> {
    trace: &'a StreamingTrace,
    state: WindowState,
    events: Vec<CompiledEvent>,
    offsets: Vec<u32>,
    pairs: Vec<(ServerId, u32)>,
    /// Per-page regeneration buffer.
    scratch: Vec<RequestEvent>,
    /// The window's filtered, warped, stably sorted requests.
    requests: Vec<RequestEvent>,
}

impl StreamingWindows<'_> {
    /// Bytes currently held in the reusable window buffers — what "peak
    /// memory is O(window)" means concretely; the `stream_memory` suite
    /// checks the allocator against it.
    pub fn buffer_bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<CompiledEvent>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.pairs.capacity() * std::mem::size_of::<(ServerId, u32)>()
            + self.scratch.capacity() * std::mem::size_of::<RequestEvent>()
            + self.requests.capacity() * std::mem::size_of::<RequestEvent>()
    }
}

impl ReplaySource for StreamingWindows<'_> {
    fn meta(&self) -> &ReplayMeta {
        self.trace.meta()
    }

    fn next_window(&mut self) -> Option<TraceWindow<'_>> {
        let trace = self.trace;
        let k = self.state.next_window();
        if k >= trace.window_count {
            return None;
        }

        // Requests in [t0, t1): from the constructor-fused cache when it
        // covers this window, else regenerated as a batch of one. Either
        // way the pre-sort order is page-major (see the module docs), so
        // the stable sort lands ties identically to the monolithic path.
        self.requests.clear();
        match trace.lookahead_window(k) {
            Some(cached) => self.requests.extend_from_slice(cached),
            None => trace.scatter_batch(
                k,
                1,
                &mut self.scratch,
                std::slice::from_mut(&mut self.requests),
            ),
        }
        self.requests.sort_by_key(|e| e.time);

        let (ordinal_base, start_index) = trace.compile_window_into(
            &mut self.state,
            &self.requests,
            &mut self.events,
            &mut self.offsets,
            &mut self.pairs,
        );
        Some(TraceWindow {
            pages: &trace.meta.pages,
            events: &self.events,
            offsets: &self.offsets,
            pairs: &self.pairs,
            ordinal_base,
            start_index,
        })
    }
}

/// [`simulate_compiled`](crate::simulate_compiled) without the compiled
/// trace: replays a [`StreamingTrace`] window by window in O(window) peak
/// memory. With [`SimOptions::threads`] beyond one the run shards along
/// the proxy axis like the materialized path — each shard worker opens
/// its own window pass (regenerating the stream per shard, holding one
/// window each). Results are bit-identical to the materialized replay at
/// every window size and thread count; the `stream_differential` suite
/// proves it. This is the serial reference arm — see
/// [`simulate_streamed_prefetched`](crate::simulate_streamed_prefetched)
/// for the pipelined path that overlaps generation with replay and shares
/// one prefetcher across shards.
///
/// # Errors
///
/// Returns [`SimError`] if the fetch-cost vector does not cover the
/// trace's proxies or an option is out of range.
pub fn simulate_streamed(
    trace: &StreamingTrace,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    validate_meta(trace.meta(), costs, options)?;
    let shards =
        crate::pool::effective_threads(options.threads, trace.meta().server_count() as usize);
    if shards > 1 {
        let (result, _null) = crate::shard::run_sharded_source::<_, _, NullObserver>(
            trace.meta(),
            || trace.open(),
            costs,
            options,
            shards,
        );
        return Ok(result);
    }
    let mut pass = trace.open();
    simulate_windowed(&mut pass, costs, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;
    use pscd_workload::Workload;

    fn config() -> WorkloadConfig {
        WorkloadConfig::news_scaled(0.004)
    }

    fn monolithic(config: &WorkloadConfig, quality: f64) -> CompiledTrace {
        let w = Workload::generate(config).unwrap();
        let subs = w.subscriptions(quality).unwrap();
        CompiledTrace::compile(&w, &subs).unwrap()
    }

    #[test]
    fn materialized_stream_equals_monolithic_compile() {
        let reference = monolithic(&config(), 1.0);
        for window in [
            SimTime::ZERO,
            SimTime::from_hours(1),
            SimTime::from_hours(13),
            SimTime::from_days(2),
            SimTime::from_days(30),
        ] {
            let stream = StreamingTrace::new(&config(), 1.0, window, 1).unwrap();
            assert_eq!(stream.meta(), reference.meta(), "window = {window:?}");
            assert_eq!(
                stream.materialize(),
                reference,
                "window = {window:?} ({} windows)",
                stream.window_count()
            );
        }
    }

    #[test]
    fn lookahead_cache_is_bit_identical() {
        let reference = monolithic(&config(), 1.0);
        for depth in [1, 2, 4, 64] {
            let stream =
                StreamingTrace::with_lookahead(&config(), 1.0, SimTime::from_hours(13), 1, depth)
                    .unwrap();
            assert_eq!(stream.lookahead_len(), depth.min(stream.window_count()));
            assert_eq!(stream.materialize(), reference, "depth = {depth}");
        }
    }

    #[test]
    fn streaming_meta_and_table_match_the_workload() {
        let w = Workload::generate(&config()).unwrap();
        let stream = StreamingTrace::new(&config(), 0.8, SimTime::from_days(1), 2).unwrap();
        assert_eq!(stream.subscriptions(), &w.subscriptions(0.8).unwrap());
        assert_eq!(
            stream.meta().request_load(),
            &w.requests().requests_per_server(w.server_count())
        );
        assert_eq!(stream.meta().capacities(0.05), w.cache_capacities(0.05));
        assert_eq!(stream.window_count(), 7);
        assert_eq!(stream.window_size(), SimTime::from_days(1));
    }

    #[test]
    fn windows_tile_with_carried_state() {
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(11), 1).unwrap();
        let mut pass = stream.open();
        let mut next_start = 0usize;
        let mut next_ordinal = 0u32;
        let mut windows = 0usize;
        while let Some(w) = pass.next_window() {
            assert_eq!(w.start_index(), next_start);
            next_start = w.end_index();
            for ev in w.events() {
                if let CompiledEventKind::Publish { ordinal, .. } = ev.kind {
                    assert_eq!(ordinal, next_ordinal, "publish ordinals are global");
                    next_ordinal += 1;
                }
            }
            windows += 1;
        }
        assert_eq!(windows, stream.window_count());
        assert_eq!(next_start, stream.meta().len());
        assert_eq!(next_ordinal as usize, stream.meta().publish_count());
    }

    #[test]
    fn streamed_replay_matches_compiled_replay() {
        let reference = monolithic(&config(), 1.0);
        let costs = FetchCosts::uniform(reference.server_count());
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(9), 1).unwrap();
        for kind in [StrategyKind::Sg2 { beta: 2.0 }, StrategyKind::Lru] {
            let opt = SimOptions::at_capacity(kind, 0.05);
            let compiled = crate::simulate_compiled(&reference, &costs, &opt).unwrap();
            let streamed = simulate_streamed(&stream, &costs, &opt).unwrap();
            assert_eq!(streamed, compiled);
            // Sharded streaming merges to the same totals.
            let sharded = simulate_streamed(&stream, &costs, &opt.with_threads(4)).unwrap();
            assert_eq!(sharded, compiled);
        }
    }

    #[test]
    fn scenario_stream_matches_compiled_scenario_build() {
        let scenario = ScenarioConfig::flash_crowds();
        let w = scenario.build_threads(0).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let reference = CompiledTrace::compile(&w, &subs).unwrap();
        let stream =
            StreamingTrace::from_scenario(&scenario, 1.0, SimTime::from_hours(6), 0).unwrap();
        assert_eq!(stream.materialize(), reference);
        // The warped lookahead cache scatters the same events.
        let cached = StreamingTrace::from_scenario_with_lookahead(
            &scenario,
            1.0,
            SimTime::from_hours(6),
            0,
            3,
        )
        .unwrap();
        assert_eq!(cached.materialize(), reference);
    }

    #[test]
    fn attached_matcher_streams_bit_identically() {
        let reference = monolithic(&config(), 1.0);
        let mut stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(13), 1).unwrap();
        let matcher =
            pscd_workload::matcher_from_table(stream.subscriptions(), stream.meta().server_count());
        stream.attach_matcher(matcher).unwrap();
        assert_eq!(stream.materialize(), reference);
        // A matcher covering the wrong universe is rejected.
        let mut other = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(13), 1).unwrap();
        assert!(matches!(
            other.attach_matcher(EngineMatcher::new(1)),
            Err(SimError::MismatchedMatcher { .. })
        ));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut bad = config();
        bad.requests.horizon = SimTime::from_days(3);
        assert!(StreamingTrace::new(&bad, 1.0, SimTime::from_hours(1), 1).is_err());
        assert!(StreamingTrace::new(&config(), 0.0, SimTime::from_hours(1), 1).is_err());
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_days(1), 1).unwrap();
        let bad_costs = FetchCosts::uniform(3);
        assert!(matches!(
            simulate_streamed(
                &stream,
                &bad_costs,
                &SimOptions::at_capacity(StrategyKind::Sub, 0.05)
            ),
            Err(SimError::MismatchedCosts { .. })
        ));
    }
}
