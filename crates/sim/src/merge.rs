//! Deterministic merging of shard-local simulation results.
//!
//! Every quantity a shard produces — hit/request counters, [`Traffic`],
//! [`HourlySeries`] buckets, per-proxy stats — is an unsigned integer, so
//! merging is exact component-wise addition: associative, commutative and
//! identity-preserving. That algebra (checked by the `merge_props`
//! property suite) is why a sharded run's totals are *bit-identical* to
//! the sequential run's no matter how the proxies were partitioned.

use pscd_broker::Traffic;

use crate::{HourlySeries, SimResult};

impl HourlySeries {
    /// Adds `other`'s buckets into this series, component-wise. Series of
    /// different lengths are aligned at hour 0 and the shorter side is
    /// treated as zero-padded, so the all-zero empty series is the merge
    /// identity.
    pub fn absorb(&mut self, other: &HourlySeries) {
        fn add(into: &mut Vec<u64>, from: &[u64]) {
            if into.len() < from.len() {
                into.resize(from.len(), 0);
            }
            for (a, b) in into.iter_mut().zip(from) {
                *a += b;
            }
        }
        add(&mut self.hits, &other.hits);
        add(&mut self.requests, &other.requests);
        add(&mut self.pushed_pages, &other.pushed_pages);
        add(&mut self.pushed_bytes, &other.pushed_bytes);
        add(&mut self.fetched_pages, &other.fetched_pages);
        add(&mut self.fetched_bytes, &other.fetched_bytes);
    }
}

impl SimResult {
    /// The merge identity: a zero-traffic, zero-request result for
    /// `strategy` with `hours` hourly buckets and `servers` proxies.
    /// Absorbing any shard result into it yields that result unchanged,
    /// and absorbing every shard of a run yields the run's totals.
    pub fn identity(strategy: &str, hours: usize, servers: u16) -> Self {
        Self {
            strategy: strategy.to_owned(),
            hits: 0,
            requests: 0,
            traffic: Traffic::ZERO,
            hourly: HourlySeries::new(hours),
            per_server: vec![(0, 0); servers as usize],
        }
    }

    /// Adds `other`'s counters into this result, component-wise: hits,
    /// requests, traffic, hourly buckets, and per-proxy stats (aligned at
    /// server 0, shorter side zero-padded). The `strategy` label is kept
    /// from `self`; merging runs of different strategies is meaningless.
    pub fn absorb(&mut self, other: &SimResult) {
        self.hits += other.hits;
        self.requests += other.requests;
        self.traffic = self.traffic.merged(other.traffic);
        self.hourly.absorb(&other.hourly);
        if self.per_server.len() < other.per_server.len() {
            self.per_server.resize(other.per_server.len(), (0, 0));
        }
        for ((h, r), &(oh, or)) in self.per_server.iter_mut().zip(&other.per_server) {
            *h += oh;
            *r += or;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{Bytes, SimTime};

    fn sample(seed: u64) -> SimResult {
        let mut hourly = HourlySeries::new(3);
        hourly.record_request(
            SimTime::from_hours(0),
            seed.is_multiple_of(2),
            Bytes::new(seed * 10),
        );
        hourly.record_push(SimTime::from_hours(2), Bytes::new(seed));
        let mut traffic = Traffic::ZERO;
        traffic.record_push(Bytes::new(seed));
        SimResult {
            strategy: "SG2".into(),
            hits: seed,
            requests: seed * 2,
            traffic,
            hourly,
            per_server: vec![(seed, seed * 2), (0, 0)],
        }
    }

    #[test]
    fn identity_absorb_is_a_no_op() {
        let shard = sample(7);
        let mut acc = SimResult::identity("SG2", 3, 2);
        acc.absorb(&shard);
        assert_eq!(acc, shard);
        let mut again = shard.clone();
        again.absorb(&SimResult::identity("SG2", 0, 0));
        assert_eq!(again, shard);
    }

    #[test]
    fn absorb_adds_componentwise() {
        let mut acc = sample(3);
        acc.absorb(&sample(5));
        assert_eq!(acc.hits, 8);
        assert_eq!(acc.requests, 16);
        assert_eq!(acc.traffic.pushed_pages, 2);
        assert_eq!(acc.traffic.pushed_bytes, Bytes::new(8));
        assert_eq!(acc.per_server, vec![(8, 16), (0, 0)]);
        assert_eq!(acc.hourly.requests, [2, 0, 0]);
        assert_eq!(acc.hourly.pushed_bytes, [0, 0, 8]);
    }

    #[test]
    fn mismatched_lengths_zero_pad() {
        let mut short = HourlySeries::new(1);
        short.record_request(SimTime::from_hours(0), true, Bytes::new(1));
        let mut long = HourlySeries::new(3);
        long.record_request(SimTime::from_hours(2), false, Bytes::new(2));
        let mut a = short.clone();
        a.absorb(&long);
        let mut b = long.clone();
        b.absorb(&short);
        assert_eq!(a, b, "zero-padding keeps absorb commutative");
        assert_eq!(a.requests, [1, 0, 1]);
    }
}
