//! Single-event apply steps shared by batch replay and the live service.
//!
//! Batch replay ([`crate::Simulation`]) and the live broker service
//! (`pscd-service`) must process an identical event through identical
//! engine and accounting mutations — the service's differential test
//! asserts the two modes end bit-identical. These free functions are that
//! shared step: the replay loop calls them per timeline event, the service
//! workers per ingested [`LiveEvent`](pscd_types::LiveEvent), so the
//! semantics cannot drift apart.

use pscd_broker::{BrokerError, DeliveryEngine, PushRecord, RequestRecord};
use pscd_obs::Observer;
use pscd_types::{PageMeta, ServerId, SimTime};

use crate::HourlySeries;

/// Delivers one published page to its matched proxies and records the
/// resulting push traffic into `hourly`. `matched` lists `(server,
/// subscription count)` pairs restricted to the engine's server range;
/// `push_scratch` is the caller's reused record buffer (cleared by the
/// engine on entry). Returns the number of proxies the page's content was
/// actually transferred to.
///
/// Stale-version invalidation is *not* part of this step: callers decide
/// whether to [`invalidate_everywhere`](DeliveryEngine::invalidate_everywhere)
/// first, because only they know the invalidation option and the
/// superseded page.
///
/// # Panics
///
/// Panics if a matched server is outside the engine's range.
pub fn apply_publish<O: Observer>(
    engine: &mut DeliveryEngine<O>,
    hourly: &mut HourlySeries,
    meta: &PageMeta,
    time: SimTime,
    matched: &[(ServerId, u32)],
    push_scratch: &mut Vec<PushRecord>,
) -> usize {
    engine.publish_into(meta, matched, push_scratch);
    let mut pushed = 0;
    for record in push_scratch.iter() {
        if record.transferred {
            hourly.record_push(time, meta.size());
            pushed += 1;
        }
    }
    pushed
}

/// Serves one subscriber request at `server` and records the outcome into
/// `hourly` (a miss also records the publisher fetch).
///
/// # Errors
///
/// Returns [`BrokerError::UnknownServer`] if `server` is outside the
/// engine's range.
pub fn apply_request<O: Observer>(
    engine: &mut DeliveryEngine<O>,
    hourly: &mut HourlySeries,
    server: ServerId,
    meta: &PageMeta,
    time: SimTime,
    subs: u32,
) -> Result<RequestRecord, BrokerError> {
    let record = engine.request_with_subs(server, meta, subs)?;
    hourly.record_request(time, record.hit, meta.size());
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_broker::PushScheme;
    use pscd_core::StrategyKind;
    use pscd_types::{Bytes, PageId, PageKind, PageMeta, SimTime};

    fn page(i: u32, size: u64) -> PageMeta {
        PageMeta::new(
            PageId::new(i),
            Bytes::new(size),
            SimTime::ZERO,
            PageKind::Original,
        )
    }

    #[test]
    fn apply_publish_counts_transfers_and_hourly_pushes() {
        let mut engine = DeliveryEngine::new(
            vec![
                StrategyKind::Sub.build(Bytes::new(1_000)),
                StrategyKind::Sub.build(Bytes::new(1_000)),
            ],
            vec![1.0, 1.0],
            PushScheme::Always,
        )
        .unwrap();
        let mut hourly = HourlySeries::new(2);
        let mut scratch = Vec::new();
        let p = page(0, 100);
        let pushed = apply_publish(
            &mut engine,
            &mut hourly,
            &p,
            SimTime::from_secs(10),
            &[(ServerId::new(0), 3), (ServerId::new(1), 1)],
            &mut scratch,
        );
        assert_eq!(pushed, 2);
        assert_eq!(hourly.pushed_pages[0], 2);
        assert_eq!(engine.total_traffic().pushed_pages, 2);
    }

    #[test]
    fn apply_request_records_hits_misses_and_fetches() {
        let mut engine = DeliveryEngine::new(
            vec![StrategyKind::GdStar { beta: 2.0 }.build(Bytes::new(1_000))],
            vec![1.0],
            PushScheme::Always,
        )
        .unwrap();
        let mut hourly = HourlySeries::new(2);
        let p = page(0, 100);
        let t = SimTime::from_secs(5);
        let miss = apply_request(&mut engine, &mut hourly, ServerId::new(0), &p, t, 0).unwrap();
        assert!(!miss.hit);
        let hit = apply_request(&mut engine, &mut hourly, ServerId::new(0), &p, t, 0).unwrap();
        assert!(hit.hit);
        assert_eq!(hourly.requests[0], 2);
        assert_eq!(hourly.hits[0], 1);
        assert_eq!(hourly.fetched_pages[0], 1);
        assert!(apply_request(&mut engine, &mut hourly, ServerId::new(7), &p, t, 0).is_err());
    }
}
