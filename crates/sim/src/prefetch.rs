//! Pipelined streaming replay: a compile-ahead prefetcher that overlaps
//! window generation + compilation with replay.
//!
//! The serial pass ([`StreamingTrace::open`]) interleaves two very
//! different workloads on one thread: regenerating and compiling window
//! `N` (cold-path work — RNG substreams, sorting, fan-out resolution) and
//! replaying it (hot-loop work — cache decisions per event). This module
//! splits them: a **producer** runs on a dedicated `pscd-pool` pipeline
//! thread ([`pool::producer_consumers`](crate::pool::producer_consumers)),
//! generating and compiling up to `prefetch_depth` windows ahead, while
//! one or more **consumers** (the replay shards) pull finished windows as
//! [`Arc<OwnedWindow>`] handles through a bounded [`WindowQueue`].
//!
//! Two structural decisions carry the determinism proof:
//!
//! * **One producer owns all carried state.** The [`WindowState`] —
//!   version heads, publish cursor/ordinal, event index — advances
//!   strictly in window order on the producer thread, through the same
//!   [`StreamingTrace::compile_window_into`] core the serial pass uses.
//!   Consumers never touch it; overlap changes *when* a window is
//!   compiled, never *from what*.
//! * **Batched generation scatters, it does not reorder.**
//!   [`StreamingTrace::scatter_batch`] regenerates each page once per
//!   `prefetch_depth`-window batch (the amortization the speedup is made
//!   of: a page straddling `d` seams regenerates once instead of `d`
//!   times) and buckets events per window in page-major order — the same
//!   pre-sort order the serial pass and the monolithic compiler feed
//!   their stable sorts, so ties land identically.
//!
//! The memory bound stays explicit: the producer may run at most
//! `prefetch_depth` windows ahead of the **slowest** consumer, so at most
//! `prefetch_depth + 1` windows are ever alive (queued + the one each
//! consumer is replaying) — O(depth × window), never O(trace). The queue
//! tracks its own high-water marks ([`PrefetchStats`]) and the
//! `stream_memory` suite checks a counting allocator against them.
//!
//! Sharded replay shares **one** prefetcher: each shard consumes the same
//! `Arc`ed windows through its own cursor, so the stream is generated
//! once per run instead of once per worker (the serial sharded path's
//! price). With a live [`TraceSink`] the producer records a
//! `prefetch producer` track (`prefetch.generate` / `prefetch.compile`
//! spans) and each consumer its `shard k` replay track, so the chrome
//! trace shows the overlap directly.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use pscd_obs::{MergeableObserver, NullObserver, SharedObserver, TraceSink};
use pscd_topology::FetchCosts;
use pscd_types::{RequestEvent, ServerId};

use crate::runner::{validate_meta, ReplayState, SimOptions};
use crate::shard::{replay_chunked, ShardPlan};
use crate::stream::{StreamingTrace, WindowState};
use crate::trace::{CompiledEvent, CompiledTrace};
use crate::window::TraceWindow;
use crate::{SimError, SimResult};

/// Default compile-ahead depth: one window in flight behind the one being
/// replayed covers the producer/consumer overlap without holding more
/// than a couple of windows alive.
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// Tuning for the pipelined streaming replay: how many windows the
/// prefetcher may generate and compile ahead of the slowest consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOptions {
    depth: usize,
}

impl Default for PrefetchOptions {
    fn default() -> Self {
        Self {
            depth: DEFAULT_PREFETCH_DEPTH,
        }
    }
}

impl PrefetchOptions {
    /// A prefetcher running at most `depth` windows ahead (clamped to at
    /// least 1 — depth 0 would deadlock a bounded pipeline by definition).
    pub fn new(depth: usize) -> Self {
        Self {
            depth: depth.max(1),
        }
    }

    /// The compile-ahead bound.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// High-water marks of one pipelined pass, from the queue's own
/// accounting: what "peak stays O(prefetch_depth × window)" means
/// concretely. The `stream_memory` suite asserts both these numbers and
/// the allocator agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Windows handed over.
    pub windows: usize,
    /// Timeline events across all windows.
    pub events: usize,
    /// Most windows ever alive at once (queued + still replayable by the
    /// slowest consumer). Bounded by `depth + 1`.
    pub peak_windows: usize,
    /// Byte high-water of the alive windows' buffers.
    pub peak_bytes: usize,
}

/// One compiled window with owned buffers, safe to hand across threads;
/// consumers borrow it back into a [`TraceWindow`] view for the replay
/// loop.
#[derive(Debug)]
pub(crate) struct OwnedWindow {
    events: Vec<CompiledEvent>,
    offsets: Vec<u32>,
    pairs: Vec<(ServerId, u32)>,
    ordinal_base: u32,
    start_index: usize,
}

impl OwnedWindow {
    fn bytes(&self) -> usize {
        self.events.capacity() * std::mem::size_of::<CompiledEvent>()
            + self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.pairs.capacity() * std::mem::size_of::<(ServerId, u32)>()
    }

    fn view<'a>(&'a self, trace: &'a StreamingTrace) -> TraceWindow<'a> {
        TraceWindow {
            pages: &trace.meta().pages,
            events: &self.events,
            offsets: &self.offsets,
            pairs: &self.pairs,
            ordinal_base: self.ordinal_base,
            start_index: self.start_index,
        }
    }
}

#[derive(Debug)]
struct QueueInner {
    /// Alive windows `(window, bytes)` for seqs `[base, base + len)`.
    /// A window is retired only once every consumer has taken its
    /// *successor* (a consumer may still be replaying the window it took
    /// last), which is exactly the alive set the memory bound talks about.
    buf: VecDeque<(Arc<OwnedWindow>, usize)>,
    /// Sequence number of `buf[0]`.
    base: usize,
    /// Sequence number the producer pushes next.
    pushed: usize,
    /// Per-consumer next-take sequence; `usize::MAX` = retired consumer.
    cursors: Vec<usize>,
    done: bool,
    live_bytes: usize,
    peak_bytes: usize,
    peak_windows: usize,
}

impl QueueInner {
    fn min_cursor(&self) -> usize {
        self.cursors
            .iter()
            .copied()
            .filter(|&c| c != usize::MAX)
            .min()
            .unwrap_or(self.pushed)
    }

    fn retire_passed(&mut self) {
        let min = self.min_cursor();
        while self.base + 1 < min {
            let Some((_, bytes)) = self.buf.pop_front() else {
                break;
            };
            self.live_bytes -= bytes;
            self.base += 1;
        }
    }
}

/// The bounded, multi-consumer handoff between the prefetch producer and
/// the replay shards. Every consumer sees every window (shards filter by
/// server range, not by window); the producer blocks while it is `depth`
/// windows ahead of the slowest cursor — that backpressure *is* the
/// memory bound.
pub(crate) struct WindowQueue {
    depth: usize,
    inner: Mutex<QueueInner>,
    /// Signaled on push and on finish.
    avail: Condvar,
    /// Signaled when a cursor advances or retires.
    space: Condvar,
}

impl WindowQueue {
    fn new(depth: usize, consumers: usize) -> Self {
        Self {
            depth: depth.max(1),
            inner: Mutex::new(QueueInner {
                buf: VecDeque::new(),
                base: 0,
                pushed: 0,
                cursors: vec![0; consumers.max(1)],
                done: false,
                live_bytes: 0,
                peak_bytes: 0,
                peak_windows: 0,
            }),
            avail: Condvar::new(),
            space: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().expect("prefetch queue poisoned")
    }

    fn push(&self, window: OwnedWindow) {
        let mut g = self.lock();
        while g.pushed - g.min_cursor() >= self.depth {
            g = self.space.wait(g).expect("prefetch queue poisoned");
        }
        let bytes = window.bytes();
        g.live_bytes += bytes;
        g.buf.push_back((Arc::new(window), bytes));
        g.pushed += 1;
        g.peak_bytes = g.peak_bytes.max(g.live_bytes);
        g.peak_windows = g.peak_windows.max(g.buf.len());
        drop(g);
        self.avail.notify_all();
    }

    fn finish(&self) {
        self.lock().done = true;
        self.avail.notify_all();
    }

    fn take(&self, consumer: usize) -> Option<Arc<OwnedWindow>> {
        let mut g = self.lock();
        loop {
            let seq = g.cursors[consumer];
            debug_assert_ne!(seq, usize::MAX, "take on a retired consumer");
            if seq < g.pushed {
                let window = g.buf[seq - g.base].0.clone();
                g.cursors[consumer] = seq + 1;
                g.retire_passed();
                drop(g);
                self.space.notify_all();
                return Some(window);
            }
            if g.done {
                return None;
            }
            g = self.avail.wait(g).expect("prefetch queue poisoned");
        }
    }

    /// Removes `consumer` from the backpressure set (normal completion or
    /// unwind), so a stuck cursor can never wedge the producer.
    fn retire_consumer(&self, consumer: usize) {
        let mut g = self.lock();
        g.cursors[consumer] = usize::MAX;
        g.retire_passed();
        drop(g);
        self.space.notify_all();
    }

    fn stats(&self) -> (usize, usize) {
        let g = self.lock();
        (g.peak_windows, g.peak_bytes)
    }
}

/// Marks the stream finished even if the producer unwinds, so consumers
/// drain what exists instead of waiting forever.
struct FinishGuard<'q>(&'q WindowQueue);

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        self.0.finish();
    }
}

/// Retires the consumer's cursor even on unwind, so the producer's
/// backpressure wait can always make progress.
struct CursorGuard<'q> {
    queue: &'q WindowQueue,
    consumer: usize,
}

impl Drop for CursorGuard<'_> {
    fn drop(&mut self) {
        self.queue.retire_consumer(self.consumer);
    }
}

/// The producer loop: generate request batches `depth` windows at a time
/// (cache-first), compile each window through the shared
/// [`StreamingTrace::compile_window_into`] core, and push. Runs on its
/// own pipeline thread; all carried state is local to this function.
fn produce(trace: &StreamingTrace, queue: &WindowQueue, depth: usize, sink: &TraceSink) {
    let _finish = FinishGuard(queue);
    let mut rec = sink.recorder("prefetch producer");
    let mut state = WindowState::new(trace);
    let mut scratch: Vec<RequestEvent> = Vec::new();
    let mut buckets: Vec<Vec<RequestEvent>> = (0..depth).map(|_| Vec::new()).collect();
    let total = trace.window_count();
    let mut k = 0usize;
    while k < total {
        let count = depth.min(total - k);
        for bucket in &mut buckets[..count] {
            bucket.clear();
        }
        // Windows the constructor-fused lookahead already scattered need
        // no regeneration; scatter only the uncached tail of the batch.
        let cached_end = trace.lookahead_len().clamp(k, k + count);
        for (i, w) in (k..cached_end).enumerate() {
            buckets[i].extend_from_slice(trace.lookahead_window(w).expect("cached prefix"));
        }
        if cached_end < k + count {
            let span = rec.begin();
            trace.scatter_batch(
                cached_end,
                k + count - cached_end,
                &mut scratch,
                &mut buckets[cached_end - k..count],
            );
            rec.end_with(span, "prefetch.generate", || {
                format!("windows [{cached_end}, {})", k + count)
            });
        }
        for (i, bucket) in buckets[..count].iter_mut().enumerate() {
            let span = rec.begin();
            bucket.sort_by_key(|e| e.time);
            let mut events = Vec::new();
            let mut offsets = Vec::new();
            let mut pairs = Vec::new();
            let (ordinal_base, start_index) = trace.compile_window_into(
                &mut state,
                bucket,
                &mut events,
                &mut offsets,
                &mut pairs,
            );
            let n = events.len();
            rec.end_with(span, "prefetch.compile", || {
                format!("window {} ({n} events)", k + i)
            });
            // Push outside the span: blocked-on-backpressure time shows
            // as a gap in the producer track, not as compile work.
            queue.push(OwnedWindow {
                events,
                offsets,
                pairs,
                ordinal_base,
                start_index,
            });
        }
        k += count;
    }
}

/// One replay shard pulling its cursor through the shared queue.
fn consume_shard<O: MergeableObserver>(
    trace: &StreamingTrace,
    queue: &WindowQueue,
    plan: &ShardPlan,
    shard: usize,
    costs: &FetchCosts,
    options: &SimOptions,
    sink: &TraceSink,
) -> (SimResult, O) {
    let _cursor = CursorGuard {
        queue,
        consumer: shard,
    };
    let (start, end) = plan.range(shard);
    let obs = SharedObserver::new(O::default());
    let mut state = ReplayState::new(trace.meta(), costs, options, obs.clone(), start, end);
    if sink.is_enabled() {
        let mut rec = sink.recorder(format!("shard {shard} [{start},{end})"));
        while let Some(window) = queue.take(shard) {
            let view = window.view(trace);
            replay_chunked(&mut state, &view, &mut rec);
        }
    } else {
        while let Some(window) = queue.take(shard) {
            let view = window.view(trace);
            while state.step(&view).is_some() {}
        }
    }
    let result = state.finish();
    let observer = obs
        .try_unwrap()
        .unwrap_or_else(|_| panic!("shard dropped every observer clone"));
    (result, observer)
}

/// Runs one pipelined pass: producer thread + one consumer per replay
/// shard, merged in shard order. Inputs must already be validated.
pub(crate) fn run_pipelined<O: MergeableObserver>(
    trace: &StreamingTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    prefetch: &PrefetchOptions,
    sink: &TraceSink,
) -> (SimResult, O, PrefetchStats) {
    let meta = trace.meta();
    let shards = crate::pool::effective_threads(options.threads, meta.server_count() as usize);
    let plan = ShardPlan::balanced(meta.request_load(), shards);
    let queue = WindowQueue::new(prefetch.depth(), plan.shards());
    let mut counted = (0usize, 0usize);
    let outputs = {
        let (queue, plan, counted) = (&queue, &plan, &mut counted);
        let depth = prefetch.depth();
        let shard_outputs = crate::pool::producer_consumers(
            move || produce(trace, queue, depth, sink),
            plan.shards(),
            |shard| consume_shard::<O>(trace, queue, plan, shard, costs, options, sink),
        );
        *counted = (trace.window_count(), meta.len());
        shard_outputs
    };
    let mut result =
        SimResult::identity(options.strategy.name(), meta.hours(), meta.server_count());
    let mut merged = O::default();
    for (shard_result, shard_obs) in outputs {
        result.absorb(&shard_result);
        merged.absorb(shard_obs);
    }
    let (peak_windows, peak_bytes) = queue.stats();
    (
        result,
        merged,
        PrefetchStats {
            windows: counted.0,
            events: counted.1,
            peak_windows,
            peak_bytes,
        },
    )
}

/// [`simulate_streamed`](crate::simulate_streamed) through the pipelined
/// prefetcher: generation + compilation overlap replay, sharded consumers
/// share one window stream, and the result is bit-identical to both the
/// serial streaming pass and the monolithic compile at every depth and
/// thread count (the `stream_differential` suite proves it).
///
/// # Errors
///
/// Returns [`SimError`] if the fetch-cost vector does not cover the
/// trace's proxies or an option is out of range.
pub fn simulate_streamed_prefetched(
    trace: &StreamingTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    prefetch: &PrefetchOptions,
) -> Result<SimResult, SimError> {
    simulate_streamed_prefetched_traced(trace, costs, options, prefetch, &TraceSink::disabled())
}

/// [`simulate_streamed_prefetched`] recording producer and per-shard
/// consumer tracks into `sink` — the chrome trace shows the overlap.
///
/// # Errors
///
/// Returns [`SimError`] like [`simulate_streamed_prefetched`].
pub fn simulate_streamed_prefetched_traced(
    trace: &StreamingTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    prefetch: &PrefetchOptions,
    sink: &TraceSink,
) -> Result<SimResult, SimError> {
    validate_meta(trace.meta(), costs, options)?;
    let (result, _null, _stats) =
        run_pipelined::<NullObserver>(trace, costs, options, prefetch, sink);
    Ok(result)
}

impl StreamingTrace {
    /// [`materialize`](StreamingTrace::materialize) through the pipelined
    /// prefetcher: the producer compiles ahead while this thread
    /// concatenates. Bit-identical to the serial materialization at every
    /// depth.
    pub fn materialize_prefetched(&self, prefetch: &PrefetchOptions) -> CompiledTrace {
        self.materialize_prefetched_traced(prefetch, &TraceSink::disabled())
    }

    /// [`materialize_prefetched`](StreamingTrace::materialize_prefetched)
    /// recording the producer track into `sink`.
    pub fn materialize_prefetched_traced(
        &self,
        prefetch: &PrefetchOptions,
        sink: &TraceSink,
    ) -> CompiledTrace {
        let queue = WindowQueue::new(prefetch.depth(), 1);
        let mut out = {
            let queue = &queue;
            let depth = prefetch.depth();
            crate::pool::producer_consumers(
                move || produce(self, queue, depth, sink),
                1,
                |consumer| {
                    let _cursor = CursorGuard { queue, consumer };
                    let mut events: Vec<CompiledEvent> = Vec::with_capacity(self.meta().len());
                    let mut offsets: Vec<u32> = Vec::with_capacity(self.meta().publish_count() + 1);
                    offsets.push(0);
                    let mut pairs: Vec<(ServerId, u32)> = Vec::new();
                    while let Some(w) = queue.take(consumer) {
                        events.extend_from_slice(&w.events);
                        let base = pairs.len() as u32;
                        for &off in &w.offsets[1..] {
                            offsets.push(base + off);
                        }
                        pairs.extend_from_slice(&w.pairs);
                    }
                    CompiledTrace::from_parts(self.meta().clone(), events, offsets, pairs)
                },
            )
        };
        out.pop().expect("one consumer")
    }

    /// Drives one full pipelined pass discarding the windows, returning
    /// the queue's high-water marks. This is the replay-free cost of the
    /// pipeline (what `cold.stream.pipelined` benchmarks against the
    /// serial drain) and the accounting the memory suite asserts on.
    pub fn drain_prefetched(&self, prefetch: &PrefetchOptions) -> PrefetchStats {
        let queue = WindowQueue::new(prefetch.depth(), 1);
        let counts = {
            let queue = &queue;
            let depth = prefetch.depth();
            crate::pool::producer_consumers(
                move || produce(self, queue, depth, &TraceSink::disabled()),
                1,
                |consumer| {
                    let _cursor = CursorGuard { queue, consumer };
                    let mut windows = 0usize;
                    let mut events = 0usize;
                    while let Some(w) = queue.take(consumer) {
                        windows += 1;
                        events += w.events.len();
                    }
                    (windows, events)
                },
            )
        };
        let (windows, events) = counts[0];
        let (peak_windows, peak_bytes) = queue.stats();
        PrefetchStats {
            windows,
            events,
            peak_windows,
            peak_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_core::StrategyKind;
    use pscd_types::SimTime;
    use pscd_workload::WorkloadConfig;

    fn config() -> WorkloadConfig {
        WorkloadConfig::news_scaled(0.004)
    }

    #[test]
    fn prefetched_materialize_matches_serial_at_every_depth() {
        let serial = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(9), 1)
            .unwrap()
            .materialize();
        for depth in [1, 2, 4, 9] {
            let stream =
                StreamingTrace::with_lookahead(&config(), 1.0, SimTime::from_hours(9), 1, depth)
                    .unwrap();
            let piped = stream.materialize_prefetched(&PrefetchOptions::new(depth));
            assert_eq!(piped, serial, "depth = {depth}");
        }
    }

    #[test]
    fn prefetched_replay_matches_serial_streamed() {
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(13), 1).unwrap();
        let costs = FetchCosts::uniform(stream.meta().server_count());
        let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
        let serial = crate::simulate_streamed(&stream, &costs, &options).unwrap();
        for depth in [1, 3] {
            let piped = simulate_streamed_prefetched(
                &stream,
                &costs,
                &options,
                &PrefetchOptions::new(depth),
            )
            .unwrap();
            assert_eq!(piped, serial, "depth = {depth}");
            let sharded = simulate_streamed_prefetched(
                &stream,
                &costs,
                &options.with_threads(3),
                &PrefetchOptions::new(depth),
            )
            .unwrap();
            assert_eq!(sharded, serial, "depth = {depth}, sharded");
        }
    }

    #[test]
    fn queue_bounds_alive_windows_by_depth_plus_one() {
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(6), 1).unwrap();
        assert!(stream.window_count() >= 8, "need enough windows to matter");
        for depth in [1, 2, 4] {
            let stats = stream.drain_prefetched(&PrefetchOptions::new(depth));
            assert_eq!(stats.windows, stream.window_count());
            assert_eq!(stats.events, stream.meta().len());
            assert!(
                stats.peak_windows <= depth + 1,
                "depth {depth}: {} windows alive",
                stats.peak_windows
            );
            assert!(stats.peak_bytes > 0);
        }
    }

    #[test]
    fn traced_run_records_producer_and_consumer_tracks() {
        let stream = StreamingTrace::new(&config(), 1.0, SimTime::from_hours(24), 1).unwrap();
        let costs = FetchCosts::uniform(stream.meta().server_count());
        let options = SimOptions::at_capacity(StrategyKind::Lru, 0.05).with_threads(2);
        let sink = TraceSink::enabled();
        let traced = simulate_streamed_prefetched_traced(
            &stream,
            &costs,
            &options,
            &PrefetchOptions::default(),
            &sink,
        )
        .unwrap();
        let plain =
            simulate_streamed_prefetched(&stream, &costs, &options, &PrefetchOptions::default())
                .unwrap();
        assert_eq!(traced, plain, "tracing must not perturb results");
        let log = sink.drain();
        let names: Vec<&str> = log.tracks().iter().map(|t| t.name.as_str()).collect();
        assert!(
            names.contains(&"prefetch producer"),
            "producer track missing from {names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("shard ")),
            "consumer tracks missing from {names:?}"
        );
        let producer = log
            .tracks()
            .iter()
            .find(|t| t.name == "prefetch producer")
            .expect("checked above");
        assert!(producer
            .events
            .iter()
            .any(|e| e.label == "prefetch.compile"));
    }

    #[test]
    fn depth_zero_is_clamped_and_options_default() {
        assert_eq!(PrefetchOptions::new(0).depth(), 1);
        assert_eq!(PrefetchOptions::default().depth(), DEFAULT_PREFETCH_DEPTH);
    }
}
