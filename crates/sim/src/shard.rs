//! Intra-run sharding: one simulation, many threads, bit-identical totals.
//!
//! The paper's proxies are independent caches — every request is served by
//! exactly one proxy and a publish fans out to each matched proxy
//! separately — so one run parallelizes along the proxy axis: partition
//! the servers into contiguous ranges ([`ShardPlan`]), replay each
//! shard's sub-timeline (all publishes + the shard's requests) on its own
//! thread against a shard-local [`DeliveryEngine`], and fold the
//! shard-local [`SimResult`]s together in shard order.
//!
//! Determinism rests on three facts, each enforced structurally:
//!
//! 1. **The push schedule is computed once.** [`Fanout::precompute`]
//!    resolves every publish event's matched-proxy list up front; shards
//!    slice their server range out of the same table, so no shard can see
//!    a different fan-out than the sequential run.
//! 2. **Crash victims are a pure function of the seed.**
//!    `CrashPlan::victims` is evaluated over the *full* server count on
//!    the coordinating thread and filtered per shard, so fault injection
//!    hits exactly the proxies it hits sequentially.
//! 3. **Merging is exact.** Every merged quantity is an unsigned integer
//!    and filtering preserves each proxy's event subsequence, so
//!    component-wise addition reproduces the sequential totals bit for
//!    bit (see `merge.rs` and the `differential` test suite).

use std::collections::HashMap;

use pscd_broker::{DeliveryEngine, Fanout};
use pscd_obs::{MergeableObserver, SharedObserver};
use pscd_topology::FetchCosts;
use pscd_types::{Bytes, RequestEvent, ServerId, SubscriptionTable};
use pscd_workload::Workload;

use crate::pool::parallel_indexed;
use crate::runner::SimOptions;
use crate::{HourlySeries, SimResult};

/// A partition of the proxy fleet into contiguous [`ServerId`] ranges,
/// one per shard, balanced by per-server request load so no thread drags
/// the others.
///
/// # Examples
///
/// ```
/// use pscd_sim::ShardPlan;
///
/// let plan = ShardPlan::balanced(&[10, 10, 10, 10], 2);
/// assert_eq!(plan.shards(), 2);
/// assert_eq!(plan.range(0), (0, 2));
/// assert_eq!(plan.range(1), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards + 1` cut points; shard `k` owns servers
    /// `bounds[k]..bounds[k + 1]`.
    bounds: Vec<u16>,
}

impl ShardPlan {
    /// Partitions `load.len()` servers into at most `shards` contiguous
    /// ranges, cutting so each range carries roughly `1/shards` of the
    /// total load (`load[s]` = request count of server `s`). Every shard
    /// owns at least one server, so the plan may have fewer shards than
    /// asked for when servers are scarce. Deterministic in its inputs.
    pub fn balanced(load: &[u64], shards: usize) -> Self {
        let servers = load.len();
        let shards = shards.clamp(1, servers.max(1));
        let total: u64 = load.iter().sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u16);
        let mut acc = 0u64;
        let mut s = 0usize;
        for k in 1..shards {
            // Advance to the first cut where this shard carries its share,
            // always past the previous cut (no empty shards) and leaving
            // at least one server for each remaining shard.
            let target = total * k as u64 / shards as u64;
            let last_allowed = servers - (shards - k);
            let prev = *bounds.last().expect("bounds starts non-empty") as usize;
            while s < last_allowed && (acc < target || s <= prev) {
                acc += load[s];
                s += 1;
            }
            bounds.push(s as u16);
        }
        bounds.push(servers as u16);
        Self { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The half-open server range `[start, end)` of shard `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn range(&self, k: usize) -> (u16, u16) {
        (self.bounds[k], self.bounds[k + 1])
    }
}

/// Everything a shard worker reads; shared immutably across threads.
struct ShardContext<'a> {
    workload: &'a Workload,
    subscriptions: &'a SubscriptionTable,
    costs: &'a FetchCosts,
    options: SimOptions,
    capacities: Vec<Bytes>,
    fanout: Fanout,
    /// Crash victims over the full fleet, resolved once from the seed.
    victims: Vec<ServerId>,
    hours: usize,
}

/// Runs the simulation sharded over `threads` threads (callers resolve
/// the thread count via [`pool::effective_threads`](crate::pool)) and
/// returns the merged result plus the per-shard observers folded in
/// shard order. Inputs must already be validated.
pub(crate) fn run_sharded<O: MergeableObserver>(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
    threads: usize,
) -> (SimResult, O) {
    let servers = workload.server_count();
    let load = workload.requests().stats(servers).requests_per_server;
    let plan = ShardPlan::balanced(&load, threads);
    let ctx = ShardContext {
        workload,
        subscriptions,
        costs,
        options: *options,
        capacities: workload.cache_capacities(options.capacity_fraction),
        fanout: Fanout::precompute(workload.publishing().events(), subscriptions),
        victims: options
            .crash
            .map(|plan| plan.victims(servers))
            .unwrap_or_default(),
        hours: (workload.horizon().as_hours_f64().ceil() as usize).max(1),
    };
    let shard_outputs = parallel_indexed(plan.shards(), threads, |k| {
        let (start, end) = plan.range(k);
        run_shard::<O>(&ctx, start, end)
    });
    let mut result = SimResult::identity(options.strategy.name(), ctx.hours, servers);
    let mut merged_obs = O::default();
    for (shard_result, shard_obs) in shard_outputs {
        result.absorb(&shard_result);
        merged_obs.absorb(shard_obs);
    }
    (result, merged_obs)
}

/// Replays one shard's sub-timeline: all publish events plus the requests
/// of servers `[start, end)`, in exactly the order the sequential runner
/// processes them (publishes before requests at equal timestamps).
///
/// Observer notes: timeline-wide events are reported once — shard 0
/// fires `on_notify`/`on_publish` with the *global* matched count (the
/// `pushed` argument is shard-local) — while per-proxy events (requests,
/// pushes, cache decisions, restarts, shard-local crash/invalidation
/// sets) fire on the owning shard, so additive totals such as
/// `crash.victims`, `invalidate.dropped` and every hit/byte counter merge
/// exactly; only the event-occurrence counters `crash.events` and
/// `invalidate.events` may split across shards.
fn run_shard<O: MergeableObserver>(ctx: &ShardContext<'_>, start: u16, end: u16) -> (SimResult, O) {
    let obs = SharedObserver::new(O::default());
    let options = &ctx.options;
    let publishes = ctx.workload.publishing().events();
    let pages = ctx.workload.pages();
    let requests: Vec<RequestEvent> = ctx
        .workload
        .requests()
        .events()
        .iter()
        .filter(|r| (start..end).contains(&r.server.index()))
        .copied()
        .collect();
    let strategies = (start..end)
        .map(|s| {
            let server = ServerId::new(s);
            options
                .strategy
                .build_observed(ctx.capacities[s as usize], obs.handle(server))
        })
        .collect();
    let local_costs = (start..end)
        .map(|s| ctx.costs.cost(ServerId::new(s)))
        .collect();
    let mut engine = DeliveryEngine::with_observer_offset(
        strategies,
        local_costs,
        options.scheme,
        obs.clone(),
        ServerId::new(start),
    )
    .expect("lengths match by construction");
    let local_victims: Vec<ServerId> = ctx
        .victims
        .iter()
        .filter(|v| (start..end).contains(&v.index()))
        .copied()
        .collect();
    let mut hourly = HourlySeries::new(ctx.hours);
    let mut pending_crash = options.crash;
    let mut latest_version: HashMap<pscd_types::PageId, pscd_types::PageId> = HashMap::new();
    let mut pi = 0usize;
    let mut ri = 0usize;
    loop {
        let next_time = match (publishes.get(pi), requests.get(ri)) {
            (Some(p), Some(r)) => p.time.min(r.time),
            (Some(p), None) => p.time,
            (None, Some(r)) => r.time,
            (None, None) => break,
        };
        obs.clock(next_time);
        // Fault injection fires before the first shard event at/after its
        // time; the affected proxies have seen no event since the instant
        // the sequential runner fires, so their state is identical.
        if let Some(plan) = pending_crash {
            if next_time >= plan.time {
                pending_crash = None;
                if !local_victims.is_empty() {
                    obs.crash(next_time, &local_victims);
                    for &server in &local_victims {
                        let capacity = ctx.capacities[server.as_usize()];
                        engine
                            .replace_strategy(
                                server,
                                options
                                    .strategy
                                    .build_observed(capacity, obs.handle(server)),
                            )
                            .expect("victims filtered to shard range");
                        obs.restart(next_time, server);
                    }
                }
            }
        }
        let publish_next = match (publishes.get(pi), requests.get(ri)) {
            (Some(p), Some(r)) => p.time <= r.time,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if publish_next {
            let ev = publishes[pi];
            pi += 1;
            let meta = &pages[ev.page.as_usize()];
            if options.invalidate_stale {
                // The lineage map is driven by the (global) publish stream
                // alone, so every shard tracks identical versions.
                let origin = meta.kind().origin().unwrap_or(ev.page);
                if let Some(previous) = latest_version.insert(origin, ev.page) {
                    let dropped = engine.invalidate_everywhere(previous);
                    if dropped > 0 {
                        obs.invalidate(ev.time, previous, dropped);
                    }
                }
            }
            let matched = ctx.fanout.matched_in(pi - 1, start, end);
            if start == 0 {
                let global = ctx.fanout.matched(pi - 1);
                obs.notify(ev.time, ev.page, global.len());
            }
            let mut pushed = 0usize;
            for record in engine.publish(meta, matched) {
                if record.transferred {
                    hourly.record_push(ev.time, meta.size());
                    pushed += 1;
                }
            }
            if start == 0 {
                let global = ctx.fanout.matched(pi - 1);
                obs.publish(ev.time, ev.page, meta.size(), global.len(), pushed);
            }
        } else {
            let ev = requests[ri];
            ri += 1;
            let meta = &pages[ev.page.as_usize()];
            let subs = ctx.subscriptions.count(ev.page, ev.server);
            let record = engine
                .request_with_subs(ev.server, meta, subs)
                .expect("requests filtered to shard range");
            obs.request(ev.time, ev.server, ev.page, meta.size(), record.hit);
            hourly.record_request(ev.time, record.hit, meta.size());
        }
    }
    // Full-length per-server vector (zeros outside the shard's range) so
    // merging shard results is uniform component-wise addition.
    let servers = ctx.workload.server_count();
    let mut per_server = vec![(0u64, 0u64); servers as usize];
    let mut hits = 0u64;
    let mut total_requests = 0u64;
    for s in start..end {
        let stats = engine.hit_stats(ServerId::new(s));
        per_server[s as usize] = stats;
        hits += stats.0;
        total_requests += stats.1;
    }
    let traffic = engine.total_traffic();
    drop(engine);
    let observer = obs
        .try_unwrap()
        .unwrap_or_else(|_| panic!("shard dropped every observer clone"));
    (
        SimResult {
            strategy: options.strategy.name().to_owned(),
            hits,
            requests: total_requests,
            traffic,
            hourly,
            per_server,
        },
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_plan_covers_all_servers_exactly_once() {
        for shards in 1..=6 {
            let load = [5u64, 0, 0, 20, 1, 1, 30, 2];
            let plan = ShardPlan::balanced(&load, shards);
            assert!(plan.shards() <= shards);
            assert_eq!(plan.range(0).0, 0);
            assert_eq!(plan.range(plan.shards() - 1).1, load.len() as u16);
            for k in 0..plan.shards() {
                let (s, e) = plan.range(k);
                assert!(s < e, "shard {k} is empty: [{s}, {e})");
                if k > 0 {
                    assert_eq!(plan.range(k - 1).1, s, "ranges tile contiguously");
                }
            }
        }
    }

    #[test]
    fn more_shards_than_servers_degrades_gracefully() {
        let plan = ShardPlan::balanced(&[1, 2], 8);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.range(0), (0, 1));
        assert_eq!(plan.range(1), (1, 2));
        let single = ShardPlan::balanced(&[7], 3);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.range(0), (0, 1));
    }

    #[test]
    fn skewed_load_never_produces_an_empty_shard() {
        // One hot server absorbing most of the load used to leave a
        // later cut equal to the previous one.
        for load in [
            vec![1u64, 100, 1, 1],
            vec![100, 1, 1, 1],
            vec![1, 1, 1, 100],
            vec![0, 0, 1_000, 0, 0],
        ] {
            for shards in 1..=load.len() {
                let plan = ShardPlan::balanced(&load, shards);
                for k in 0..plan.shards() {
                    let (s, e) = plan.range(k);
                    assert!(s < e, "load {load:?} shards {shards}: empty shard {k}");
                }
            }
        }
    }

    #[test]
    fn uniform_load_splits_evenly() {
        let plan = ShardPlan::balanced(&[10; 8], 4);
        assert_eq!(plan.shards(), 4);
        for k in 0..4 {
            let (s, e) = plan.range(k);
            assert_eq!(e - s, 2);
        }
    }

    #[test]
    fn zero_load_still_partitions() {
        let plan = ShardPlan::balanced(&[0; 5], 2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.range(1).1, 5);
    }
}
