//! Intra-run sharding: one simulation, many threads, bit-identical totals.
//!
//! The paper's proxies are independent caches — every request is served by
//! exactly one proxy and a publish fans out to each matched proxy
//! separately — so one run parallelizes along the proxy axis: partition
//! the servers into contiguous ranges ([`ShardPlan`]), replay each shard's
//! sub-timeline (all publishes + the shard's requests) on its own thread,
//! and fold the shard-local [`SimResult`]s together in shard order.
//!
//! A shard worker is not a second event loop: it is the same
//! [`ReplayState`](crate::runner) the sequential runner drives, restricted
//! to the shard's server range. Determinism rests on three facts, each
//! enforced structurally:
//!
//! 1. **The push schedule is computed once.** [`CompiledTrace`] resolves
//!    every publish event's matched-proxy list at compile time; shards
//!    slice their server range out of the same table
//!    ([`CompiledTrace::matched_in`]), so no shard can see a different
//!    fan-out than the sequential run.
//! 2. **Crash victims are a pure function of the seed.**
//!    `CrashPlan::victims` is evaluated over the *full* server count and
//!    filtered per shard, so fault injection hits exactly the proxies it
//!    hits sequentially.
//! 3. **Merging is exact.** Every merged quantity is an unsigned integer
//!    and filtering preserves each proxy's event subsequence, so
//!    component-wise addition reproduces the sequential totals bit for
//!    bit (see `merge.rs` and the `differential` test suite).
//!
//! Observer notes: timeline-wide events are reported once — the shard
//! owning server 0 fires `on_notify`/`on_publish` with the *global*
//! matched count (the `pushed` argument is shard-local) — while per-proxy
//! events (requests, pushes, cache decisions, restarts, shard-local
//! crash/invalidation sets) fire on the owning shard, so additive totals
//! such as `crash.victims`, `invalidate.dropped` and every hit/byte
//! counter merge exactly; only the event-occurrence counters
//! `crash.events` and `invalidate.events` may split across shards.

use pscd_obs::{MergeableObserver, Observer, SharedObserver, TraceRecorder, TraceSink};
use pscd_topology::FetchCosts;

use crate::pool::parallel_indexed;
use crate::runner::{ReplayState, SimOptions};
use crate::trace::CompiledTrace;
use crate::window::{ReplayMeta, ReplaySource, TraceWindow};
use crate::SimResult;

/// A partition of the proxy fleet into contiguous
/// [`ServerId`](pscd_types::ServerId) ranges, one per shard, balanced by
/// per-server request load so no thread drags the others.
///
/// # Examples
///
/// ```
/// use pscd_sim::ShardPlan;
///
/// let plan = ShardPlan::balanced(&[10, 10, 10, 10], 2);
/// assert_eq!(plan.shards(), 2);
/// assert_eq!(plan.range(0), (0, 2));
/// assert_eq!(plan.range(1), (2, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `shards + 1` cut points; shard `k` owns servers
    /// `bounds[k]..bounds[k + 1]`.
    bounds: Vec<u16>,
}

impl ShardPlan {
    /// Partitions `load.len()` servers into at most `shards` contiguous
    /// ranges, cutting so each range carries roughly `1/shards` of the
    /// total load (`load[s]` = request count of server `s`). Every shard
    /// owns at least one server, so the plan may have fewer shards than
    /// asked for when servers are scarce. Deterministic in its inputs.
    pub fn balanced(load: &[u64], shards: usize) -> Self {
        let servers = load.len();
        let shards = shards.clamp(1, servers.max(1));
        let total: u64 = load.iter().sum();
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u16);
        let mut acc = 0u64;
        let mut s = 0usize;
        for k in 1..shards {
            // Advance to the first cut where this shard carries its share,
            // always past the previous cut (no empty shards) and leaving
            // at least one server for each remaining shard.
            let target = total * k as u64 / shards as u64;
            let last_allowed = servers - (shards - k);
            let prev = *bounds.last().expect("bounds starts non-empty") as usize;
            while s < last_allowed && (acc < target || s <= prev) {
                acc += load[s];
                s += 1;
            }
            bounds.push(s as u16);
        }
        bounds.push(servers as u16);
        Self { bounds }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The half-open server range `[start, end)` of shard `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn range(&self, k: usize) -> (u16, u16) {
        (self.bounds[k], self.bounds[k + 1])
    }
}

/// Runs the replay sharded over `threads` threads (callers resolve the
/// thread count via [`pool::effective_threads`](crate::pool)) and returns
/// the merged result plus the per-shard observers folded in shard order.
/// Inputs must already be validated.
pub(crate) fn run_sharded<O: MergeableObserver>(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    threads: usize,
) -> (SimResult, O) {
    run_sharded_traced(trace, costs, options, threads, &TraceSink::disabled())
}

/// How many timeline events a shard replays between trace-span
/// boundaries. Coarse on purpose: per-chunk spans keep the instrumented
/// run within measurement noise (a clock read every ~8k events), and the
/// disabled path never enters the chunked loop at all.
const REPLAY_CHUNK: usize = 8192;

/// Drains one window of `state` in [`REPLAY_CHUNK`]-sized chunks,
/// recording one span per chunk (label `replay.<strategy>`, detail = the
/// cursor range).
pub(crate) fn replay_chunked<O: Observer>(
    state: &mut ReplayState<O>,
    window: &TraceWindow<'_>,
    rec: &mut TraceRecorder,
) {
    let label = format!("replay.{}", state.options().strategy.name());
    loop {
        let from = state.cursor();
        let span = rec.begin();
        let mut n = 0usize;
        while n < REPLAY_CHUNK && state.step(window).is_some() {
            n += 1;
        }
        let to = state.cursor();
        if n > 0 {
            rec.end_with(span, &label, || format!("events [{from}, {to})"));
        }
        if n < REPLAY_CHUNK {
            return;
        }
    }
}

/// [`run_sharded`] with trace spans: each shard worker records one track
/// (`shard <k> [<start>,<end>)`) of per-chunk replay spans into `sink`.
/// With a disabled sink the workers run the exact uninstrumented loop.
pub(crate) fn run_sharded_traced<O: MergeableObserver>(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    threads: usize,
    sink: &TraceSink,
) -> (SimResult, O) {
    if sink.is_enabled() {
        crate::pool::spans::set_phase("replay.shard");
    }
    let plan = ShardPlan::balanced(trace.request_load(), threads);
    let shard_outputs = parallel_indexed(plan.shards(), threads, |k| {
        let (start, end) = plan.range(k);
        let obs = SharedObserver::new(O::default());
        let mut state = ReplayState::new(trace.meta(), costs, options, obs.clone(), start, end);
        let window = trace.full_window();
        if sink.is_enabled() {
            let mut rec = sink.recorder(format!("shard {k} [{start},{end})"));
            replay_chunked(&mut state, &window, &mut rec);
        } else {
            while state.step(&window).is_some() {}
        }
        let result = state.finish();
        let observer = obs
            .try_unwrap()
            .unwrap_or_else(|_| panic!("shard dropped every observer clone"));
        (result, observer)
    });
    let mut result =
        SimResult::identity(options.strategy.name(), trace.hours(), trace.server_count());
    let mut merged_obs = O::default();
    for (shard_result, shard_obs) in shard_outputs {
        result.absorb(&shard_result);
        merged_obs.absorb(shard_obs);
    }
    (result, merged_obs)
}

/// [`run_sharded`] over any [`ReplaySource`], opened independently per
/// shard worker: each worker calls `make()` for its own source and pulls
/// its own window sequence. This is what makes a lazily generating source
/// shardable at all — a window borrows its source, a
/// [`SharedObserver`] is single-threaded, and the replay loop is
/// sequential per shard, so sharing one source across workers is neither
/// possible nor wanted. The price is that each shard regenerates the
/// full window stream (shards filter the same timeline to their server
/// range); the win is that no shard ever holds more than one window.
/// Inputs must already be validated against `meta`.
pub(crate) fn run_sharded_source<S, F, O>(
    meta: &ReplayMeta,
    make: F,
    costs: &FetchCosts,
    options: &SimOptions,
    threads: usize,
) -> (SimResult, O)
where
    S: ReplaySource,
    F: Fn() -> S + Sync,
    O: MergeableObserver,
{
    let plan = ShardPlan::balanced(meta.request_load(), threads);
    let shard_outputs = parallel_indexed(plan.shards(), threads, |k| {
        let (start, end) = plan.range(k);
        let obs = SharedObserver::new(O::default());
        let mut state = ReplayState::new(meta, costs, options, obs.clone(), start, end);
        let mut source = make();
        debug_assert_eq!(source.meta(), meta, "per-shard source disagrees on meta");
        while let Some(window) = source.next_window() {
            while state.step(&window).is_some() {}
        }
        let result = state.finish();
        let observer = obs
            .try_unwrap()
            .unwrap_or_else(|_| panic!("shard dropped every observer clone"));
        (result, observer)
    });
    let mut result =
        SimResult::identity(options.strategy.name(), meta.hours(), meta.server_count());
    let mut merged_obs = O::default();
    for (shard_result, shard_obs) in shard_outputs {
        result.absorb(&shard_result);
        merged_obs.absorb(shard_obs);
    }
    (result, merged_obs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_plan_covers_all_servers_exactly_once() {
        for shards in 1..=6 {
            let load = [5u64, 0, 0, 20, 1, 1, 30, 2];
            let plan = ShardPlan::balanced(&load, shards);
            assert!(plan.shards() <= shards);
            assert_eq!(plan.range(0).0, 0);
            assert_eq!(plan.range(plan.shards() - 1).1, load.len() as u16);
            for k in 0..plan.shards() {
                let (s, e) = plan.range(k);
                assert!(s < e, "shard {k} is empty: [{s}, {e})");
                if k > 0 {
                    assert_eq!(plan.range(k - 1).1, s, "ranges tile contiguously");
                }
            }
        }
    }

    #[test]
    fn more_shards_than_servers_degrades_gracefully() {
        let plan = ShardPlan::balanced(&[1, 2], 8);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.range(0), (0, 1));
        assert_eq!(plan.range(1), (1, 2));
        let single = ShardPlan::balanced(&[7], 3);
        assert_eq!(single.shards(), 1);
        assert_eq!(single.range(0), (0, 1));
    }

    #[test]
    fn skewed_load_never_produces_an_empty_shard() {
        // One hot server absorbing most of the load used to leave a
        // later cut equal to the previous one.
        for load in [
            vec![1u64, 100, 1, 1],
            vec![100, 1, 1, 1],
            vec![1, 1, 1, 100],
            vec![0, 0, 1_000, 0, 0],
        ] {
            for shards in 1..=load.len() {
                let plan = ShardPlan::balanced(&load, shards);
                for k in 0..plan.shards() {
                    let (s, e) = plan.range(k);
                    assert!(s < e, "load {load:?} shards {shards}: empty shard {k}");
                }
            }
        }
    }

    #[test]
    fn uniform_load_splits_evenly() {
        let plan = ShardPlan::balanced(&[10; 8], 4);
        assert_eq!(plan.shards(), 4);
        for k in 0..4 {
            let (s, e) = plan.range(k);
            assert_eq!(e - s, 2);
        }
    }

    #[test]
    fn zero_load_still_partitions() {
        let plan = ShardPlan::balanced(&[0; 5], 2);
        assert_eq!(plan.shards(), 2);
        assert_eq!(plan.range(1).1, 5);
    }
}
