//! The discrete-event simulation runner.
//!
//! Since the compiled-trace refactor there is exactly **one** replay loop
//! in the simulator: [`ReplayState::step`], driven over compiled
//! [`TraceWindow`]s. The sequential runner replays the full server range
//! over one whole-trace window; a shard worker is the same replay over
//! `[start, end)` (see `shard.rs`); a windowed run pulls bounded chunks
//! from any [`ReplaySource`] ([`simulate_windowed`]). Nothing re-derives
//! timeline order, fan-outs, subscription counts or invalidation lineage
//! per run.

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use pscd_broker::{DeliveryEngine, PushRecord, PushScheme};
use pscd_core::{Layout, StrategyKind};
use pscd_obs::{MergeableObserver, NullObserver, Observer, SharedObserver};
use pscd_topology::FetchCosts;
use pscd_types::{ServerId, SimTime, SubscriptionTable};
use pscd_workload::Workload;

use crate::trace::{CompiledEventKind, CompiledTrace};
use crate::window::{ReplayMeta, ReplaySource, TraceWindow};
use crate::{HourlySeries, SimError, SimResult};

/// A fault-injection plan: at `time`, a `fraction` of the proxies crash
/// and restart with empty caches (fresh strategy instances; hit/traffic
/// counters describe history and survive).
///
/// Failure recovery differentiates the strategies sharply: push-time
/// modules repopulate a restarted cache as soon as new pages are
/// published, while access-only caching must pay a miss per page again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashPlan {
    /// When the crash happens.
    pub time: SimTime,
    /// Fraction of proxies affected, in `[0, 1]`.
    pub fraction: f64,
    /// Seed selecting which proxies crash.
    pub seed: u64,
}

impl CrashPlan {
    /// A crash of `fraction` of the proxies at `time` (seed 0).
    pub fn new(time: SimTime, fraction: f64) -> Self {
        Self {
            time,
            fraction,
            seed: 0,
        }
    }

    /// The deterministic set of crashed servers: a pure function of the
    /// plan's seed and the fleet size, independent of simulation state —
    /// which is what lets fault injection shard cleanly (every shard
    /// filters the same victim set to its own server range).
    pub fn victims(&self, servers: u16) -> Vec<ServerId> {
        let n = ((servers as f64 * self.fraction).round() as usize).min(servers as usize);
        let mut all: Vec<u16> = (0..servers).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xc3a5_c85c_97cb_3127);
        all.shuffle(&mut rng);
        all.truncate(n);
        all.into_iter().map(ServerId::new).collect()
    }
}

/// Options for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// The content-distribution strategy under test.
    pub strategy: StrategyKind,
    /// Per-proxy cache capacity as a fraction of the unique bytes the
    /// proxy requests over the whole trace (paper: 0.01 / 0.05 / 0.10).
    pub capacity_fraction: f64,
    /// The pushing scheme (paper §5.6; irrelevant to access-only
    /// strategies).
    pub scheme: PushScheme,
    /// Optional fault injection (not part of the paper's evaluation).
    pub crash: Option<CrashPlan>,
    /// Consistency extension (not part of the paper's evaluation): when a
    /// *modified version* of an article is published, drop the article's
    /// previous version from every proxy cache. Requests to the stale
    /// version then miss — the freshness tax of news caching.
    pub invalidate_stale: bool,
    /// Worker threads for intra-run sharding: `1` (the default) replays
    /// the whole trace sequentially, `0` picks the machine's available
    /// parallelism, and any other count shards the proxy fleet across
    /// that many threads (oversubscription allowed). Sharded totals are
    /// bit-identical to sequential ones — the `differential` test suite
    /// proves it for every strategy — so this is purely a speed knob.
    pub threads: usize,
}

impl SimOptions {
    /// Options at the paper's headline setting: the given capacity,
    /// Always-Pushing, no fault injection.
    pub fn at_capacity(strategy: StrategyKind, capacity_fraction: f64) -> Self {
        Self {
            strategy,
            capacity_fraction,
            scheme: PushScheme::Always,
            crash: None,
            invalidate_stale: false,
            threads: 1,
        }
    }

    /// Adds a fault-injection plan.
    #[must_use]
    pub fn with_crash(mut self, crash: CrashPlan) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Sets the worker-thread count (see [`SimOptions::threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables stale-version invalidation.
    #[must_use]
    pub fn with_invalidation(mut self) -> Self {
        self.invalidate_stale = true;
        self
    }
}

/// Runs one full simulation: compiles the workload's merged
/// publishing/request timeline (see [`CompiledTrace`]) and replays it
/// through a [`DeliveryEngine`] configured with one strategy instance per
/// proxy.
///
/// Publish events and request events are processed in time order
/// (publishes first at equal timestamps, since a notification must precede
/// the requests it triggers).
///
/// Callers replaying the *same* `(workload, subscriptions)` pair more
/// than once should compile once with [`CompiledTrace::compile`] and use
/// [`simulate_compiled`]; this convenience wrapper compiles per call.
///
/// # Errors
///
/// Returns [`SimError`] if the fetch-cost vector does not cover the
/// workload's proxies or the capacity fraction is not positive.
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_sim::{simulate, SimOptions};
/// use pscd_topology::FetchCosts;
/// use pscd_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig::news_scaled(0.005))?;
/// let subs = w.subscriptions(1.0)?;
/// let costs = FetchCosts::uniform(w.server_count());
/// let result = simulate(
///     &w,
///     &subs,
///     &costs,
///     &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
/// )?;
/// assert!(result.requests > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    Ok(Simulation::new(workload, subscriptions, costs, options)?.run())
}

/// [`simulate`] over an already-compiled trace: the whole point of
/// [`CompiledTrace`] — compile once, replay N cells/shards against the
/// same immutable value by reference.
///
/// # Errors
///
/// Returns [`SimError`] if the fetch-cost vector does not cover the
/// trace's proxies or an option is out of range.
pub fn simulate_compiled(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    Ok(Simulation::from_compiled(trace, costs, options)?.run())
}

/// [`simulate`] with every simulator decision reported to `obs`: timeline
/// events (publish, request, crash, invalidation) fire from the runner,
/// push outcomes from the delivery engine, and cache decisions
/// (admissions, evictions, relabels) from the per-proxy strategies.
///
/// Keep a [`SharedObserver`] clone to read the observer back after the
/// run. With a [`NullObserver`] this compiles to exactly [`simulate`].
///
/// # Errors
///
/// Returns [`SimError`] for the same invalid inputs as [`simulate`].
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_obs::{SharedObserver, StatsObserver};
/// use pscd_sim::{simulate_observed, SimOptions};
/// use pscd_topology::FetchCosts;
/// use pscd_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig::news_scaled(0.003))?;
/// let subs = w.subscriptions(1.0)?;
/// let costs = FetchCosts::uniform(w.server_count());
/// let obs = SharedObserver::new(StatsObserver::new());
/// let result = simulate_observed(
///     &w,
///     &subs,
///     &costs,
///     &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
///     obs.clone(),
/// )?;
/// let stats = obs.try_unwrap().expect("run dropped its clones");
/// assert_eq!(stats.requests(), result.requests);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_observed<O: Observer>(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
    obs: SharedObserver<O>,
) -> Result<SimResult, SimError> {
    Ok(Simulation::with_observer(workload, subscriptions, costs, options, obs)?.run())
}

/// [`simulate_observed`] over the sharded path: each shard collects into
/// its own fresh `O` and the shard observers are folded together in shard
/// order via [`MergeableObserver::absorb`], so additive observer totals
/// (hits, misses, transfers, bytes) match the sequential run exactly.
/// Runs sharded even when [`SimOptions::threads`] resolves to one thread.
///
/// This exists because a [`SharedObserver`] is single-threaded by design
/// (`Rc<RefCell<_>>`): an arbitrary observer handed to
/// [`simulate_observed`] cannot cross shard boundaries, but an observer
/// type that knows how to merge can be built per shard and recombined.
///
/// # Errors
///
/// Returns [`SimError`] for the same invalid inputs as [`simulate`].
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_obs::StatsObserver;
/// use pscd_sim::{simulate_observed_sharded, SimOptions};
/// use pscd_topology::FetchCosts;
/// use pscd_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig::news_scaled(0.003))?;
/// let subs = w.subscriptions(1.0)?;
/// let costs = FetchCosts::uniform(w.server_count());
/// let opt = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05).with_threads(4);
/// let (result, stats): (_, StatsObserver) =
///     simulate_observed_sharded(&w, &subs, &costs, &opt)?;
/// assert_eq!(stats.requests(), result.requests);
/// assert_eq!(stats.hits(), result.hits);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_observed_sharded<O: MergeableObserver>(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<(SimResult, O), SimError> {
    validate(workload, subscriptions, costs, options)?;
    let trace = CompiledTrace::compile(workload, subscriptions)?;
    let shards = crate::pool::effective_threads(options.threads, workload.server_count() as usize);
    Ok(crate::shard::run_sharded(&trace, costs, options, shards))
}

/// [`simulate_observed_sharded`] over an already-compiled trace.
///
/// # Errors
///
/// Returns [`SimError`] for the same invalid inputs as
/// [`simulate_compiled`].
pub fn simulate_observed_sharded_compiled<O: MergeableObserver>(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<(SimResult, O), SimError> {
    validate_compiled(trace, costs, options)?;
    let shards = crate::pool::effective_threads(options.threads, trace.server_count() as usize);
    Ok(crate::shard::run_sharded(trace, costs, options, shards))
}

/// [`simulate_observed_sharded_compiled`] with timeline tracing: each
/// shard worker records one track of coarse per-chunk replay spans into
/// `sink` (export with
/// [`render_chrome_trace`](pscd_obs::render_chrome_trace)). A disabled
/// sink makes this exactly [`simulate_observed_sharded_compiled`] — the
/// workers run the uninstrumented loop, so totals are bit-identical with
/// tracing on or off (proved by the `trace_differential` suite).
///
/// # Errors
///
/// Returns [`SimError`] for the same invalid inputs as
/// [`simulate_compiled`].
pub fn simulate_observed_sharded_compiled_traced<O: MergeableObserver>(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
    sink: &pscd_obs::TraceSink,
) -> Result<(SimResult, O), SimError> {
    validate_compiled(trace, costs, options)?;
    let shards = crate::pool::effective_threads(options.threads, trace.server_count() as usize);
    Ok(crate::shard::run_sharded_traced(
        trace, costs, options, shards, sink,
    ))
}

/// [`simulate_compiled`] over any [`ReplaySource`]: pulls compiled
/// [`TraceWindow`]s one bounded chunk at a time and replays them through
/// the same [`ReplayState`] loop, sequentially on the calling thread
/// ([`SimOptions::threads`] is ignored here — sharding a source needs one
/// source per worker; see `simulate_streamed`). With a
/// [`CompiledTrace::windows`] source the result is bit-identical to
/// [`simulate_compiled`] at every window size; with a
/// [`StreamingTrace`](crate::StreamingTrace) source peak memory stays
/// O(window) instead of O(trace). Both claims are proved by the
/// `stream_differential` suite.
///
/// The source is consumed: windows are pulled until it returns `None`.
///
/// # Errors
///
/// Returns [`SimError`] if the fetch-cost vector does not cover the
/// source's proxies or an option is out of range.
pub fn simulate_windowed<S: ReplaySource>(
    source: &mut S,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<SimResult, SimError> {
    validate_meta(source.meta(), costs, options)?;
    let servers = source.meta().server_count();
    let mut state = ReplayState::new(
        source.meta(),
        costs,
        options,
        SharedObserver::disabled(),
        0,
        servers,
    );
    while let Some(window) = source.next_window() {
        while state.step(&window).is_some() {}
    }
    Ok(state.finish())
}

/// Rejects mismatched inputs and invalid options; shared by every entry
/// point that starts from a raw `(workload, subscriptions)` pair.
pub(crate) fn validate(
    workload: &Workload,
    subscriptions: &SubscriptionTable,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<(), SimError> {
    let servers = workload.server_count();
    if costs.server_count() != servers {
        return Err(SimError::MismatchedCosts {
            servers,
            costs: costs.server_count(),
        });
    }
    check_options(options)?;
    if subscriptions.page_count() != workload.pages().len() {
        return Err(SimError::MismatchedSubscriptions {
            pages: workload.pages().len(),
            table_pages: subscriptions.page_count(),
        });
    }
    Ok(())
}

/// [`validate`] for entry points starting from a [`CompiledTrace`] (the
/// subscription table is already baked in).
pub(crate) fn validate_compiled(
    trace: &CompiledTrace,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<(), SimError> {
    validate_meta(trace.meta(), costs, options)
}

/// [`validate`] for entry points starting from any [`ReplaySource`] — the
/// trace-wide facts in [`ReplayMeta`] are all validation needs.
pub(crate) fn validate_meta(
    meta: &ReplayMeta,
    costs: &FetchCosts,
    options: &SimOptions,
) -> Result<(), SimError> {
    if costs.server_count() != meta.server_count() {
        return Err(SimError::MismatchedCosts {
            servers: meta.server_count(),
            costs: costs.server_count(),
        });
    }
    check_options(options)
}

fn check_options(options: &SimOptions) -> Result<(), SimError> {
    if options.capacity_fraction.is_nan() || options.capacity_fraction <= 0.0 {
        return Err(SimError::InvalidOption {
            option: "capacity_fraction",
            constraint: "> 0",
        });
    }
    if let Some(plan) = options.crash {
        if !(0.0..=1.0).contains(&plan.fraction) {
            return Err(SimError::InvalidOption {
                option: "crash.fraction",
                constraint: "in [0, 1]",
            });
        }
    }
    Ok(())
}

/// One processed simulation event, as reported by [`Simulation::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// A newly published version superseded an older one, which was
    /// dropped from `proxies` caches (only with
    /// [`SimOptions::invalidate_stale`]).
    Invalidated {
        /// The stale (previous) version.
        stale: pscd_types::PageId,
        /// Number of proxies that held it.
        proxies: usize,
    },
    /// A fault-injection crash fired, restarting `servers` proxies.
    Crashed {
        /// Number of proxies restarted.
        servers: usize,
    },
    /// A page was published and offered to its matched proxies.
    Published {
        /// The published page.
        page: pscd_types::PageId,
        /// Publication instant.
        time: SimTime,
        /// Number of proxies the content was actually transferred to.
        pushed: usize,
    },
    /// A subscriber request was served.
    Requested {
        /// The requested page.
        page: pscd_types::PageId,
        /// The proxy that served it.
        server: ServerId,
        /// Request instant.
        time: SimTime,
        /// Whether the local cache had the page.
        hit: bool,
    },
}

/// THE replay loop: the single implementation of event processing, shared
/// by the sequential runner (full server range) and every shard worker
/// (its `[start, end)` range). Holds everything mutable about a replay —
/// the engine, the global cursor, pending crash/invalidation — while the
/// timeline arrives as [`TraceWindow`]s passed by reference into each
/// call: the whole trace at once ([`CompiledTrace::full_window`]), or one
/// bounded chunk at a time from any [`ReplaySource`]. The state carries
/// nothing window-local, so window boundaries are invisible to replay
/// semantics (the `stream_differential` suite proves it).
#[derive(Debug)]
pub(crate) struct ReplayState<O: Observer> {
    options: SimOptions,
    engine: DeliveryEngine<O>,
    obs: SharedObserver<O>,
    /// Full-fleet capacities (crash restarts index by global server id).
    capacities: Vec<pscd_types::Bytes>,
    hourly: HourlySeries,
    /// Next *global* timeline index to process.
    cursor: usize,
    /// Pending crash instant; `None` once fired (or no plan). Compared
    /// against each owned event's time — on the time-sorted timeline this
    /// is exactly the "first event at or after the crash instant" index
    /// the pre-window runner precomputed, but it needs no whole-trace
    /// search, so it carries across window seams for free.
    crash_at: Option<SimTime>,
    /// Crash victims inside `[start, end)`, resolved from the full fleet.
    victims: Vec<ServerId>,
    /// An invalidation to report before processing the next event.
    pending_invalidation: Option<(pscd_types::PageId, usize)>,
    /// Dense page-universe layout shared by every strategy this replay
    /// builds (including crash restarts).
    layout: Layout,
    /// Reused publish-record buffer: [`DeliveryEngine::publish_into`]
    /// writes into it, keeping the steady-state loop allocation-free.
    push_scratch: Vec<PushRecord>,
    start: u16,
    end: u16,
}

impl<O: Observer> ReplayState<O> {
    /// Builds the proxy fleet for servers `[start, end)`. Options must
    /// already be validated.
    pub(crate) fn new(
        meta: &ReplayMeta,
        costs: &FetchCosts,
        options: &SimOptions,
        obs: SharedObserver<O>,
        start: u16,
        end: u16,
    ) -> Self {
        let capacities = meta.capacities(options.capacity_fraction);
        // Page ids in a compiled trace are dense ordinals `0..pages()`, so
        // every per-page table can be a flat preallocated vector.
        let layout = Layout::Dense {
            page_count: meta.pages().len(),
        };
        let strategies = (start..end)
            .map(|s| {
                let server = ServerId::new(s);
                options.strategy.build_impl_observed(
                    capacities[s as usize],
                    layout,
                    obs.handle(server),
                )
            })
            .collect();
        let local_costs = (start..end).map(|s| costs.cost(ServerId::new(s))).collect();
        let mut engine = DeliveryEngine::from_impls(
            strategies,
            local_costs,
            options.scheme,
            obs.clone(),
            ServerId::new(start),
        )
        .expect("lengths match by construction");
        // One event can evict at most the page universe; size the eviction
        // scratch once so the hot loop never grows it.
        engine.reserve_evict_scratch(meta.pages().len());
        // Victims are resolved over the *full* fleet (a pure function of
        // the seed) and filtered to the range, so fault injection hits
        // exactly the proxies it hits sequentially.
        let victims = options
            .crash
            .map(|plan| plan.victims(meta.server_count()))
            .unwrap_or_default()
            .into_iter()
            .filter(|v| (start..end).contains(&v.index()))
            .collect();
        Self {
            options: *options,
            engine,
            obs,
            capacities,
            hourly: HourlySeries::new(meta.hours()),
            cursor: 0,
            crash_at: options.crash.map(|plan| plan.time),
            victims,
            pending_invalidation: None,
            layout,
            push_scratch: Vec::with_capacity((end - start) as usize),
            start,
            end,
        }
    }

    fn full_range(&self) -> bool {
        self.start == 0 && self.end as usize == self.capacities.len()
    }

    pub(crate) fn cursor(&self) -> usize {
        self.cursor
    }

    pub(crate) fn pending_invalidation(&self) -> bool {
        self.pending_invalidation.is_some()
    }

    pub(crate) fn options(&self) -> &SimOptions {
        &self.options
    }

    pub(crate) fn engine(&self) -> &DeliveryEngine<O> {
        &self.engine
    }

    /// Processes the next timeline event of `window` owned by this
    /// replay's server range. Returns `None` when the window is exhausted
    /// — the driver then pulls the next window from its source (a `None`
    /// on the final window ends the replay).
    pub(crate) fn step(&mut self, window: &TraceWindow<'_>) -> Option<StepEvent> {
        if let Some((stale, proxies)) = self.pending_invalidation.take() {
            return Some(StepEvent::Invalidated { stale, proxies });
        }
        let events = window.events();
        debug_assert!(
            self.cursor >= window.start_index(),
            "window behind the replay cursor"
        );
        // A partial-range replay (a shard worker) skips requests owned by
        // other shards — a cursor advance with no observer or engine
        // traffic. The full-range replay never enters this loop body.
        while let Some(ev) = events.get(self.cursor - window.start_index()) {
            match ev.kind {
                CompiledEventKind::Request { server, .. }
                    if !(self.start..self.end).contains(&server.index()) =>
                {
                    self.cursor += 1;
                }
                _ => break,
            }
        }
        let ev = *events.get(self.cursor - window.start_index())?;
        // Stamp the clock first so decision events fired by the engines
        // below carry this event's simulation time.
        self.obs.clock(ev.time);
        // Fault injection fires before the first owned event at/after its
        // instant — the time comparison on a time-sorted timeline is
        // exactly the precomputed crash-index check, window seams
        // included (a crash instant falling between windows fires before
        // the next window's first event). The crash consumes no event.
        if let Some(at) = self.crash_at {
            if ev.time >= at {
                self.crash_at = None;
                if !self.victims.is_empty() || self.full_range() {
                    self.obs.crash(ev.time, &self.victims);
                    for i in 0..self.victims.len() {
                        let server = self.victims[i];
                        let capacity = self.capacities[server.as_usize()];
                        self.engine
                            .replace_strategy(
                                server,
                                self.options.strategy.build_impl_observed(
                                    capacity,
                                    self.layout,
                                    self.obs.handle(server),
                                ),
                            )
                            .expect("victims filtered to the replay range");
                        self.obs.restart(ev.time, server);
                    }
                }
                return Some(StepEvent::Crashed {
                    servers: self.victims.len(),
                });
            }
        }
        self.cursor += 1;
        match ev.kind {
            CompiledEventKind::Publish {
                ordinal,
                supersedes,
            } => {
                let meta = window.page(ev.page);
                if self.options.invalidate_stale {
                    // The superseded version was resolved at compile time;
                    // drop it from every cache in range before notifying.
                    if let Some(stale) = supersedes {
                        let dropped = self.engine.invalidate_everywhere(stale);
                        if dropped > 0 {
                            self.obs.invalidate(ev.time, stale, dropped);
                            self.pending_invalidation = Some((stale, dropped));
                        }
                    }
                }
                let matched = window.matched_in(ordinal, self.start, self.end);
                // Timeline-wide events are reported once: the range owning
                // server 0 fires notify/publish with the *global* matched
                // count (`pushed` stays range-local).
                if self.start == 0 {
                    self.obs
                        .notify(ev.time, ev.page, window.matched(ordinal).len());
                }
                let pushed = crate::live::apply_publish(
                    &mut self.engine,
                    &mut self.hourly,
                    meta,
                    ev.time,
                    matched,
                    &mut self.push_scratch,
                );
                if self.start == 0 {
                    self.obs.publish(
                        ev.time,
                        ev.page,
                        meta.size(),
                        window.matched(ordinal).len(),
                        pushed,
                    );
                }
                Some(StepEvent::Published {
                    page: ev.page,
                    time: ev.time,
                    pushed,
                })
            }
            CompiledEventKind::Request { server, subs } => {
                let meta = window.page(ev.page);
                let record = crate::live::apply_request(
                    &mut self.engine,
                    &mut self.hourly,
                    server,
                    meta,
                    ev.time,
                    subs,
                )
                .expect("requests filtered to the replay range");
                self.obs
                    .request(ev.time, server, ev.page, meta.size(), record.hit);
                Some(StepEvent::Requested {
                    page: ev.page,
                    server,
                    time: ev.time,
                    hit: record.hit,
                })
            }
        }
    }

    /// Finalizes the result from the current state. The per-server vector
    /// spans the full fleet (zeros outside this replay's range) so shard
    /// results merge by uniform component-wise addition.
    pub(crate) fn finish(self) -> SimResult {
        let servers = self.capacities.len();
        let mut per_server = vec![(0u64, 0u64); servers];
        let mut hits = 0u64;
        let mut total_requests = 0u64;
        for s in self.start..self.end {
            let stats = self.engine.hit_stats(ServerId::new(s));
            per_server[s as usize] = stats;
            hits += stats.0;
            total_requests += stats.1;
        }
        SimResult {
            strategy: self.options.strategy.name().to_owned(),
            hits,
            requests: total_requests,
            traffic: self.engine.total_traffic(),
            hourly: self.hourly,
            per_server,
        }
    }
}

/// The trace a [`Simulation`] replays: compiled privately from raw inputs
/// or borrowed from the caller (compile once, simulate many).
#[derive(Debug)]
enum TraceSource<'a> {
    Owned(Box<CompiledTrace>),
    Shared(&'a CompiledTrace),
}

impl TraceSource<'_> {
    fn get(&self) -> &CompiledTrace {
        match self {
            TraceSource::Owned(t) => t,
            TraceSource::Shared(t) => t,
        }
    }
}

/// A stepping simulation: the same semantics as [`simulate`], exposed one
/// event at a time so callers can interleave their own logic — live
/// dashboards, additional fault injection, early stopping, custom
/// notification models.
///
/// # Examples
///
/// ```
/// use pscd_core::StrategyKind;
/// use pscd_sim::{SimOptions, Simulation, StepEvent};
/// use pscd_topology::FetchCosts;
/// use pscd_workload::{Workload, WorkloadConfig};
///
/// let w = Workload::generate(&WorkloadConfig::news_scaled(0.003))?;
/// let subs = w.subscriptions(1.0)?;
/// let costs = FetchCosts::uniform(w.server_count());
/// let mut sim = Simulation::new(
///     &w, &subs, &costs,
///     &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
/// )?;
/// let mut hits = 0;
/// while let Some(event) = sim.step() {
///     if matches!(event, StepEvent::Requested { hit: true, .. }) {
///         hits += 1;
///     }
/// }
/// assert_eq!(sim.finish().hits, hits);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Simulation<'a, O: Observer = NullObserver> {
    trace: TraceSource<'a>,
    costs: FetchCosts,
    state: ReplayState<O>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation (compiles the trace and builds the proxy
    /// fleet; consumes no events).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for mismatched inputs or invalid options, like
    /// [`simulate`].
    pub fn new(
        workload: &Workload,
        subscriptions: &SubscriptionTable,
        costs: &FetchCosts,
        options: &SimOptions,
    ) -> Result<Self, SimError> {
        Simulation::with_observer(
            workload,
            subscriptions,
            costs,
            options,
            SharedObserver::disabled(),
        )
    }

    /// Prepares a simulation over an already-compiled trace, borrowed for
    /// the simulation's lifetime (the trace is immutable and can feed any
    /// number of simulations, concurrently included).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for mismatched costs or invalid options.
    pub fn from_compiled(
        trace: &'a CompiledTrace,
        costs: &FetchCosts,
        options: &SimOptions,
    ) -> Result<Self, SimError> {
        Simulation::from_compiled_observed(trace, costs, options, SharedObserver::disabled())
    }
}

impl<'a, O: Observer> Simulation<'a, O> {
    /// [`new`](Simulation::new) with all simulator decisions reported to
    /// `obs` (see [`simulate_observed`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for mismatched inputs or invalid options, like
    /// [`simulate`].
    pub fn with_observer(
        workload: &Workload,
        subscriptions: &SubscriptionTable,
        costs: &FetchCosts,
        options: &SimOptions,
        obs: SharedObserver<O>,
    ) -> Result<Self, SimError> {
        validate(workload, subscriptions, costs, options)?;
        let trace = CompiledTrace::compile(workload, subscriptions)?;
        Ok(Self::build(
            TraceSource::Owned(Box::new(trace)),
            costs,
            options,
            obs,
        ))
    }

    /// [`from_compiled`](Simulation::from_compiled) with all simulator
    /// decisions reported to `obs`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for mismatched costs or invalid options.
    pub fn from_compiled_observed(
        trace: &'a CompiledTrace,
        costs: &FetchCosts,
        options: &SimOptions,
        obs: SharedObserver<O>,
    ) -> Result<Self, SimError> {
        validate_compiled(trace, costs, options)?;
        Ok(Self::build(TraceSource::Shared(trace), costs, options, obs))
    }

    fn build(
        trace: TraceSource<'a>,
        costs: &FetchCosts,
        options: &SimOptions,
        obs: SharedObserver<O>,
    ) -> Self {
        let servers = trace.get().server_count();
        let state = ReplayState::new(trace.get().meta(), costs, options, obs, 0, servers);
        Self {
            trace,
            costs: costs.clone(),
            state,
        }
    }

    /// The compiled trace this simulation replays.
    pub fn trace(&self) -> &CompiledTrace {
        self.trace.get()
    }

    /// Read access to the live delivery engine (per-proxy strategies,
    /// counters).
    pub fn engine(&self) -> &DeliveryEngine<O> {
        self.state.engine()
    }

    /// `(events processed, events total)` progress.
    pub fn progress(&self) -> (usize, usize) {
        (self.state.cursor(), self.trace.get().len())
    }

    /// Processes the next timeline event (publishes before requests at
    /// equal timestamps, since a notification must precede the requests it
    /// triggers). Returns `None` when the timeline is exhausted.
    pub fn step(&mut self) -> Option<StepEvent> {
        let Self { trace, state, .. } = self;
        let window = trace.get().full_window();
        state.step(&window)
    }

    /// Drains the remaining timeline and returns the result.
    ///
    /// With [`SimOptions::threads`] other than 1 an untouched simulation
    /// (no [`step`](Simulation::step) calls yet) runs sharded across the
    /// proxy fleet; the totals are bit-identical to the sequential replay
    /// (see the `differential` test suite). A simulation that has already
    /// stepped, or one with an enabled observer (whose event stream is
    /// inherently sequential), always drains on the calling thread.
    pub fn run(mut self) -> SimResult {
        if !O::ENABLED && self.state.cursor() == 0 && !self.state.pending_invalidation() {
            let options = *self.state.options();
            let shards = crate::pool::effective_threads(
                options.threads,
                self.trace.get().server_count() as usize,
            );
            if shards > 1 {
                let (result, _null) = crate::shard::run_sharded::<NullObserver>(
                    self.trace.get(),
                    &self.costs,
                    &options,
                    shards,
                );
                return result;
            }
        }
        while self.step().is_some() {}
        self.finish()
    }

    /// Finalizes the result from the current state (usable mid-timeline
    /// for early stopping).
    pub fn finish(self) -> SimResult {
        self.state.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_workload::WorkloadConfig;

    fn tiny_workload() -> Workload {
        Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap()
    }

    #[test]
    fn crash_victims_are_deterministic_and_pinned() {
        let plan = CrashPlan {
            time: SimTime::from_days(1),
            fraction: 0.5,
            seed: 42,
        };
        let victims = plan.victims(10);
        assert_eq!(victims, plan.victims(10), "same plan, same victims");
        assert_eq!(victims.len(), 5);
        let mut indices: Vec<u16> = victims.iter().map(|s| s.index()).collect();
        let pinned = indices.clone();
        indices.sort_unstable();
        indices.dedup();
        assert_eq!(indices.len(), 5, "victims are distinct");
        // Pin the exact selection: a change here means the seeded shuffle
        // changed, which silently alters every crash experiment.
        assert_eq!(pinned, CRASH_VICTIMS_SEED42_HALF_OF_10);
        // Edge fractions.
        assert!(plan_with(0.0, 7).victims(10).is_empty());
        assert_eq!(plan_with(1.0, 7).victims(10).len(), 10);
        // A different seed picks a different set.
        assert_ne!(plan_with(0.5, 43).victims(10), victims);
    }

    /// The exact victim set for `seed = 42`, `fraction = 0.5`, 10 servers.
    const CRASH_VICTIMS_SEED42_HALF_OF_10: [u16; 5] = [9, 4, 6, 2, 5];

    fn plan_with(fraction: f64, seed: u64) -> CrashPlan {
        CrashPlan {
            time: SimTime::from_days(1),
            fraction,
            seed,
        }
    }

    #[test]
    fn all_strategies_complete_and_account_consistently() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        for kind in [
            StrategyKind::GdStar { beta: 2.0 },
            StrategyKind::Sub,
            StrategyKind::Sg1 { beta: 2.0 },
            StrategyKind::Sg2 { beta: 2.0 },
            StrategyKind::Sr,
            StrategyKind::Dm { beta: 2.0 },
            StrategyKind::dc_fp(2.0),
            StrategyKind::DcAp { beta: 2.0 },
            StrategyKind::dc_lap(2.0),
        ] {
            let r = simulate(&w, &subs, &costs, &SimOptions::at_capacity(kind, 0.05)).unwrap();
            assert_eq!(r.requests, w.requests().len() as u64, "{}", r.strategy);
            assert!(r.hits <= r.requests);
            // Every miss fetches exactly one page.
            assert_eq!(r.traffic.fetched_pages, r.requests - r.hits);
            // Hourly series sums match totals.
            assert_eq!(r.hourly.requests.iter().sum::<u64>(), r.requests);
            assert_eq!(r.hourly.hits.iter().sum::<u64>(), r.hits);
            assert_eq!(
                r.hourly.pushed_pages.iter().sum::<u64>(),
                r.traffic.pushed_pages
            );
        }
    }

    #[test]
    fn compiled_entry_point_matches_convenience_wrapper() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        for kind in [StrategyKind::Sub, StrategyKind::Sg2 { beta: 2.0 }] {
            let opt = SimOptions::at_capacity(kind, 0.05);
            let compiled = simulate_compiled(&trace, &costs, &opt).unwrap();
            let raw = simulate(&w, &subs, &costs, &opt).unwrap();
            assert_eq!(compiled, raw);
        }
        // Compiled-path validation still rejects bad inputs.
        assert!(matches!(
            simulate_compiled(
                &trace,
                &FetchCosts::uniform(3),
                &SimOptions::at_capacity(StrategyKind::Sub, 0.05)
            ),
            Err(SimError::MismatchedCosts { .. })
        ));
        assert!(matches!(
            simulate_compiled(
                &trace,
                &costs,
                &SimOptions::at_capacity(StrategyKind::Sub, 0.0)
            ),
            Err(SimError::InvalidOption { .. })
        ));
    }

    #[test]
    fn subscription_strategies_beat_gdstar_on_perfect_subscriptions() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let gd = simulate(
            &w,
            &subs,
            &costs,
            &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
        )
        .unwrap();
        let sg2 = simulate(
            &w,
            &subs,
            &costs,
            &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
        )
        .unwrap();
        assert!(
            sg2.hit_ratio() > gd.hit_ratio(),
            "SG2 {} <= GD* {}",
            sg2.hit_ratio(),
            gd.hit_ratio()
        );
    }

    #[test]
    fn access_only_strategy_has_no_push_traffic() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let r = simulate(
            &w,
            &subs,
            &costs,
            &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05),
        )
        .unwrap();
        assert_eq!(r.traffic.pushed_pages, 0);
        assert!(r.traffic.fetched_pages > 0);
    }

    #[test]
    fn when_necessary_never_pushes_more_than_always() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let mk = |scheme| SimOptions {
            strategy: StrategyKind::Sub,
            capacity_fraction: 0.05,
            scheme,
            crash: None,
            invalidate_stale: false,
            threads: 1,
        };
        let always = simulate(&w, &subs, &costs, &mk(PushScheme::Always)).unwrap();
        let necessary = simulate(&w, &subs, &costs, &mk(PushScheme::WhenNecessary)).unwrap();
        assert!(necessary.traffic.pushed_pages <= always.traffic.pushed_pages);
        assert!(necessary.traffic.pushed_pages > 0);
    }

    #[test]
    fn deterministic_runs() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let opt = SimOptions::at_capacity(StrategyKind::dc_lap(2.0), 0.05);
        let a = simulate(&w, &subs, &costs, &opt).unwrap();
        let b = simulate(&w, &subs, &costs, &opt).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let bad_costs = FetchCosts::uniform(3);
        let opt = SimOptions::at_capacity(StrategyKind::Sub, 0.05);
        assert!(matches!(
            simulate(&w, &subs, &bad_costs, &opt),
            Err(SimError::MismatchedCosts { .. })
        ));
        let costs = FetchCosts::uniform(w.server_count());
        let bad_opt = SimOptions::at_capacity(StrategyKind::Sub, 0.0);
        assert!(matches!(
            simulate(&w, &subs, &costs, &bad_opt),
            Err(SimError::InvalidOption { .. })
        ));
        let bad_subs = SubscriptionTable::empty(1);
        assert!(matches!(
            simulate(&w, &bad_subs, &costs, &opt),
            Err(SimError::MismatchedSubscriptions { .. })
        ));
    }

    #[test]
    fn invalidation_costs_hits_and_reports_events() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.10);
        let clean = simulate(&w, &subs, &costs, &base).unwrap();
        let strict = simulate(&w, &subs, &costs, &base.with_invalidation()).unwrap();
        // Dropping superseded versions can only lose hits on this trace.
        assert!(
            strict.hits <= clean.hits,
            "{} > {}",
            strict.hits,
            clean.hits
        );
        assert_eq!(strict.requests, clean.requests);
        // The stepping API reports the invalidations.
        let mut sim = Simulation::new(&w, &subs, &costs, &base.with_invalidation()).unwrap();
        let mut invalidations = 0;
        while let Some(ev) = sim.step() {
            if let StepEvent::Invalidated { proxies, .. } = ev {
                assert!(proxies > 0);
                invalidations += 1;
            }
        }
        assert!(invalidations > 0, "expected some stale drops");
        assert_eq!(sim.finish(), strict);
        // Determinism.
        let again = simulate(&w, &subs, &costs, &base.with_invalidation()).unwrap();
        assert_eq!(strict, again);
    }

    #[test]
    fn stepping_api_matches_batch_run() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let opt = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
        let batch = simulate(&w, &subs, &costs, &opt).unwrap();
        let mut sim = Simulation::new(&w, &subs, &costs, &opt).unwrap();
        let mut published = 0u64;
        let mut requested = 0u64;
        let mut hits = 0u64;
        while let Some(ev) = sim.step() {
            match ev {
                StepEvent::Published { .. } => published += 1,
                StepEvent::Requested { hit, .. } => {
                    requested += 1;
                    if hit {
                        hits += 1;
                    }
                }
                StepEvent::Crashed { .. } => unreachable!("no crash planned"),
                StepEvent::Invalidated { .. } => {
                    unreachable!("invalidation not enabled")
                }
            }
        }
        assert_eq!(published, w.publishing().len() as u64);
        assert_eq!(requested, w.requests().len() as u64);
        let stepped = sim.finish();
        assert_eq!(stepped, batch);
        assert_eq!(hits, batch.hits);
    }

    #[test]
    fn stepping_api_reports_crash_event_and_progress() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let opt = SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.05)
            .with_crash(CrashPlan::new(pscd_types::SimTime::from_days(2), 1.0));
        let mut sim = Simulation::new(&w, &subs, &costs, &opt).unwrap();
        let (done0, total) = sim.progress();
        assert_eq!(done0, 0);
        assert_eq!(total, w.publishing().len() + w.requests().len());
        let mut crashes = 0;
        let mut steps = 0usize;
        while let Some(ev) = sim.step() {
            if let StepEvent::Crashed { servers } = ev {
                crashes += 1;
                assert_eq!(servers, w.server_count() as usize);
                // A crash consumes no timeline event.
                assert_eq!(sim.progress().0, steps);
            } else {
                steps += 1;
            }
        }
        assert_eq!(crashes, 1);
        assert_eq!(sim.progress(), (total, total));
        assert!(sim.engine().server_count() == w.server_count());
        // Early finish mid-run is usable too.
        let mut sim2 = Simulation::new(&w, &subs, &costs, &opt).unwrap();
        for _ in 0..50 {
            sim2.step();
        }
        let partial = sim2.finish();
        assert!(partial.requests <= w.requests().len() as u64);
    }

    #[test]
    fn crash_wipes_caches_and_dents_hit_ratio() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        // SG2 relies on cached pushed pages, so losing the caches at day 3
        // must cost hits.
        let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
        let clean = simulate(&w, &subs, &costs, &base).unwrap();
        let crashed = simulate(
            &w,
            &subs,
            &costs,
            &base.with_crash(CrashPlan::new(pscd_types::SimTime::from_days(3), 1.0)),
        )
        .unwrap();
        assert!(
            crashed.hits < clean.hits,
            "{} vs {}",
            crashed.hits,
            clean.hits
        );
        assert_eq!(crashed.requests, clean.requests);
        // Identical histories before the crash hour.
        let crash_hour = 72;
        assert_eq!(
            &clean.hourly.hits[..crash_hour],
            &crashed.hourly.hits[..crash_hour]
        );
        // Determinism with a crash plan.
        let again = simulate(
            &w,
            &subs,
            &costs,
            &base.with_crash(CrashPlan::new(pscd_types::SimTime::from_days(3), 1.0)),
        )
        .unwrap();
        assert_eq!(crashed, again);
    }

    #[test]
    fn partial_crash_affects_partial_fleet() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
        let clean = simulate(&w, &subs, &costs, &base).unwrap();
        let half = simulate(
            &w,
            &subs,
            &costs,
            &base.with_crash(CrashPlan::new(pscd_types::SimTime::from_days(3), 0.5)),
        )
        .unwrap();
        let full = simulate(
            &w,
            &subs,
            &costs,
            &base.with_crash(CrashPlan::new(pscd_types::SimTime::from_days(3), 1.0)),
        )
        .unwrap();
        assert!(clean.hits >= half.hits);
        assert!(half.hits >= full.hits);
        // Invalid fraction rejected.
        assert!(matches!(
            simulate(
                &w,
                &subs,
                &costs,
                &base.with_crash(CrashPlan::new(pscd_types::SimTime::ZERO, 1.5)),
            ),
            Err(SimError::InvalidOption { .. })
        ));
    }

    #[test]
    fn higher_capacity_does_not_hurt_gdstar() {
        let w = tiny_workload();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let lo = simulate(
            &w,
            &subs,
            &costs,
            &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.01),
        )
        .unwrap();
        let hi = simulate(
            &w,
            &subs,
            &costs,
            &SimOptions::at_capacity(StrategyKind::GdStar { beta: 2.0 }, 0.10),
        )
        .unwrap();
        assert!(hi.hit_ratio() >= lo.hit_ratio());
    }
}
