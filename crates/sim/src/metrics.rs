//! Simulation metrics: global/hourly hit ratios and traffic series.

use serde::{Deserialize, Serialize};

use pscd_broker::Traffic;
use pscd_types::{Bytes, ServerId, SimTime};

/// Per-hour counters over the simulation horizon (the paper's figures 6
/// and 7 are drawn from exactly these series).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HourlySeries {
    /// Cache hits per hour.
    pub hits: Vec<u64>,
    /// Requests per hour.
    pub requests: Vec<u64>,
    /// Pages pushed (publisher→proxy transfers) per hour.
    pub pushed_pages: Vec<u64>,
    /// Bytes pushed per hour.
    pub pushed_bytes: Vec<u64>,
    /// Pages fetched on misses per hour.
    pub fetched_pages: Vec<u64>,
    /// Bytes fetched on misses per hour.
    pub fetched_bytes: Vec<u64>,
}

impl HourlySeries {
    /// Creates zeroed series covering `hours` buckets.
    pub fn new(hours: usize) -> Self {
        Self {
            hits: vec![0; hours],
            requests: vec![0; hours],
            pushed_pages: vec![0; hours],
            pushed_bytes: vec![0; hours],
            fetched_pages: vec![0; hours],
            fetched_bytes: vec![0; hours],
        }
    }

    /// Number of hour buckets.
    pub fn hours(&self) -> usize {
        self.requests.len()
    }

    /// Records one request at `time` (`hit` says whether it was served
    /// locally; misses also record the fetched page). A no-op on a series
    /// with zero buckets.
    pub fn record_request(&mut self, time: SimTime, hit: bool, size: Bytes) {
        let Some(last) = self.hours().checked_sub(1) else {
            return;
        };
        let h = time.hour_index().min(last);
        self.requests[h] += 1;
        if hit {
            self.hits[h] += 1;
        } else {
            self.fetched_pages[h] += 1;
            self.fetched_bytes[h] += size.as_u64();
        }
    }

    /// Records one pushed page at `time`. A no-op on a series with zero
    /// buckets.
    pub fn record_push(&mut self, time: SimTime, size: Bytes) {
        let Some(last) = self.hours().checked_sub(1) else {
            return;
        };
        let h = time.hour_index().min(last);
        self.pushed_pages[h] += 1;
        self.pushed_bytes[h] += size.as_u64();
    }

    /// Hourly hit ratio in percent; `None` for hours with no requests.
    pub fn hit_ratio_percent(&self) -> Vec<Option<f64>> {
        self.hits
            .iter()
            .zip(&self.requests)
            .map(|(&h, &r)| (r > 0).then(|| 100.0 * h as f64 / r as f64))
            .collect()
    }

    /// Total publisher→proxy pages per hour (pushed + fetched), the series
    /// of figure 7.
    pub fn traffic_pages(&self) -> Vec<u64> {
        self.pushed_pages
            .iter()
            .zip(&self.fetched_pages)
            .map(|(&p, &f)| p + f)
            .collect()
    }

    /// Total publisher→proxy bytes per hour (pushed + fetched).
    pub fn traffic_bytes(&self) -> Vec<u64> {
        self.pushed_bytes
            .iter()
            .zip(&self.fetched_bytes)
            .map(|(&p, &f)| p + f)
            .collect()
    }
}

/// The outcome of one simulation run: one strategy, one capacity setting,
/// one subscription quality, one pushing scheme, over one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Display name of the strategy ("GD*", "SG2", …).
    pub strategy: String,
    /// Total cache hits across all proxies.
    pub hits: u64,
    /// Total requests across all proxies.
    pub requests: u64,
    /// Aggregate publisher→proxy traffic.
    pub traffic: Traffic,
    /// Per-hour series.
    pub hourly: HourlySeries,
    /// Per-proxy `(hits, requests)`.
    pub per_server: Vec<(u64, u64)>,
}

impl SimResult {
    /// Global hit ratio `H` (eq. 8) in `[0, 1]`; 0 with no requests.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Global hit ratio in percent, as the paper reports it.
    pub fn hit_ratio_percent(&self) -> f64 {
        100.0 * self.hit_ratio()
    }

    /// Hit ratio at a single proxy; 0 with no requests there.
    pub fn server_hit_ratio(&self, server: ServerId) -> f64 {
        let (h, r) = self.per_server[server.as_usize()];
        if r == 0 {
            0.0
        } else {
            h as f64 / r as f64
        }
    }

    /// Relative improvement of this run's hit ratio over a baseline run,
    /// in percent (Table 2's quantity: `100·(H − H_base)/H_base`).
    pub fn relative_improvement_percent(&self, baseline: &SimResult) -> f64 {
        let base = baseline.hit_ratio();
        if base == 0.0 {
            0.0
        } else {
            100.0 * (self.hit_ratio() - base) / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_records_bucket_correctly() {
        let mut s = HourlySeries::new(3);
        s.record_request(SimTime::from_hours(0), true, Bytes::new(10));
        s.record_request(SimTime::from_hours(1), false, Bytes::new(20));
        s.record_push(SimTime::from_hours(2), Bytes::new(30));
        // Out-of-range hour clamps to the last bucket.
        s.record_push(SimTime::from_hours(99), Bytes::new(5));
        assert_eq!(s.hits, [1, 0, 0]);
        assert_eq!(s.requests, [1, 1, 0]);
        assert_eq!(s.fetched_pages, [0, 1, 0]);
        assert_eq!(s.fetched_bytes, [0, 20, 0]);
        assert_eq!(s.pushed_pages, [0, 0, 2]);
        assert_eq!(s.pushed_bytes, [0, 0, 35]);
        assert_eq!(s.traffic_pages(), [0, 1, 2]);
        assert_eq!(s.traffic_bytes(), [0, 20, 35]);
    }

    #[test]
    fn zero_bucket_series_ignores_records() {
        // Regression: these used to panic on the empty bucket vectors.
        let mut s = HourlySeries::new(0);
        s.record_request(SimTime::from_hours(0), true, Bytes::new(10));
        s.record_push(SimTime::from_hours(5), Bytes::new(10));
        assert_eq!(s.hours(), 0);
        assert!(s.traffic_pages().is_empty());
        assert!(s.hit_ratio_percent().is_empty());
    }

    #[test]
    fn hourly_hit_ratio_handles_empty_hours() {
        let mut s = HourlySeries::new(2);
        s.record_request(SimTime::from_hours(0), true, Bytes::new(1));
        s.record_request(SimTime::from_hours(0), false, Bytes::new(1));
        let hr = s.hit_ratio_percent();
        assert_eq!(hr[0], Some(50.0));
        assert_eq!(hr[1], None);
    }

    #[test]
    fn result_ratios() {
        let base = SimResult {
            strategy: "GD*".into(),
            hits: 40,
            requests: 100,
            traffic: Traffic::ZERO,
            hourly: HourlySeries::new(1),
            per_server: vec![(40, 100), (0, 0)],
        };
        let better = SimResult {
            strategy: "SG2".into(),
            hits: 60,
            requests: 100,
            ..base.clone()
        };
        assert!((base.hit_ratio() - 0.4).abs() < 1e-12);
        assert!((better.hit_ratio_percent() - 60.0).abs() < 1e-12);
        assert!((better.relative_improvement_percent(&base) - 50.0).abs() < 1e-12);
        assert_eq!(base.server_hit_ratio(ServerId::new(0)), 0.4);
        assert_eq!(base.server_hit_ratio(ServerId::new(1)), 0.0);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = SimResult {
            strategy: "SUB".into(),
            hits: 0,
            requests: 0,
            traffic: Traffic::ZERO,
            hourly: HourlySeries::new(0),
            per_server: vec![],
        };
        assert_eq!(r.hit_ratio(), 0.0);
        assert_eq!(r.relative_improvement_percent(&r), 0.0);
    }
}
