//! Simulation errors.

use std::error::Error;
use std::fmt;

/// Error produced when configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The fetch-cost vector does not cover the workload's proxies.
    MismatchedCosts {
        /// Proxies in the workload.
        servers: u16,
        /// Proxies covered by the cost vector.
        costs: u16,
    },
    /// The subscription table covers a different page universe.
    MismatchedSubscriptions {
        /// Pages in the workload.
        pages: usize,
        /// Pages covered by the table.
        table_pages: usize,
    },
    /// The content matcher covers a different fleet or page universe.
    MismatchedMatcher {
        /// Proxies in the workload.
        servers: u16,
        /// Proxies covered by the matcher.
        matcher_servers: u16,
        /// Pages in the workload.
        pages: usize,
        /// Pages with registered content.
        matcher_pages: usize,
    },
    /// An option was outside its valid range.
    InvalidOption {
        /// Option name.
        option: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MismatchedCosts { servers, costs } => {
                write!(f, "workload has {servers} proxies but costs cover {costs}")
            }
            SimError::MismatchedSubscriptions { pages, table_pages } => write!(
                f,
                "workload has {pages} pages but the subscription table covers {table_pages}"
            ),
            SimError::MismatchedMatcher {
                servers,
                matcher_servers,
                pages,
                matcher_pages,
            } => write!(
                f,
                "workload has {servers} proxies / {pages} pages but the matcher \
                 covers {matcher_servers} proxies / {matcher_pages} registered pages"
            ),
            SimError::InvalidOption { option, constraint } => {
                write!(f, "invalid option {option}: must satisfy {constraint}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SimError::MismatchedCosts {
            servers: 100,
            costs: 3
        }
        .to_string()
        .contains("100"));
        assert!(SimError::MismatchedSubscriptions {
            pages: 5,
            table_pages: 2
        }
        .to_string()
        .contains("5 pages"));
        assert!(SimError::InvalidOption {
            option: "capacity_fraction",
            constraint: "> 0"
        }
        .to_string()
        .contains("capacity_fraction"));
    }
}
