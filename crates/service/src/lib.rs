//! Live broker service mode for publish/subscribe content distribution.
//!
//! Runs the same [`DeliveryEngine`](pscd_broker::DeliveryEngine) +
//! [`StrategyKind`](pscd_core::StrategyKind) machinery the batch
//! simulator replays, but as a long-lived process: events arrive one at
//! a time through an ingestion front door (no pre-merged timeline), a
//! supervisor resolves each event against the live subscription rows and
//! version lineage, and per-proxy workers apply the resolved stream —
//! through the **same** [`pscd_sim::live`] step functions the batch
//! replay uses, which is why the service's final accounting and cache
//! contents are bit-identical to `simulate_compiled` over the same
//! events (the `service_differential` suite proves this for every
//! strategy).
//!
//! Durability is a write-ahead event journal plus periodic state
//! snapshots (serialized dense cache state + accounting). A killed
//! service recovers by restoring the last snapshot and replaying the
//! journal suffix; the crash-recovery property suite kills services at
//! arbitrary journal offsets and checks convergence to the uncrashed
//! run. See DESIGN.md §15 for the architecture.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use pscd_broker::PushScheme;
//! use pscd_core::StrategyKind;
//! use pscd_service::{ServiceConfig, ServiceCore};
//! use pscd_types::{Bytes, LiveEvent, PageId, PageKind, PageMeta, ServerId, SimTime};
//!
//! let pages: Arc<[PageMeta]> = (0..4u32)
//!     .map(|i| PageMeta::new(PageId::new(i), Bytes::new(10), SimTime::ZERO, PageKind::Original))
//!     .collect();
//! let config = ServiceConfig::new(
//!     StrategyKind::Sg2 { beta: 2.0 },
//!     vec![Bytes::new(100); 2],
//!     vec![1.0; 2],
//!     PushScheme::Always,
//!     pages,
//!     1,
//! );
//! let mut service = ServiceCore::new(config)?;
//! service.ingest(LiveEvent::Subscribe {
//!     page: PageId::new(0), server: ServerId::new(0), count: 3,
//! })?;
//! service.ingest(LiveEvent::Publish { time: SimTime::ZERO, page: PageId::new(0) })?;
//! service.ingest(LiveEvent::Request {
//!     time: SimTime::from_secs(1), server: ServerId::new(0), page: PageId::new(0),
//! })?;
//! let outcome = service.shutdown()?;
//! assert_eq!(outcome.result.requests, 1);
//! # Ok::<(), pscd_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod core;
mod journal;
mod load;
mod service;
mod wire;
mod worker;

pub use config::{ServiceConfig, ServiceError};
pub use core::{ServiceCore, ServiceOutcome};
pub use load::{run_load, LoadReport};
pub use service::{BrokerService, ServiceHandle};
