//! The service supervisor: event ingestion, routing, snapshots and
//! crash recovery.
//!
//! [`ServiceCore`] owns everything strategy-independent — the live
//! subscription rows, version lineage, the write-ahead journal and the
//! snapshot cadence — and streams fully resolved batches to the proxy
//! fleet. Events are **resolved at ingest**: a publish's fan-out is
//! copied out of the subscription rows the moment it arrives, so a later
//! subscribe in the same batch can never retroactively change it. That
//! is what makes the service bit-identical to the batch replay, which
//! performs the same resolution in [`CompiledTrace::compile`] — and the
//! resolution state machines themselves live in [`pscd_sim::resolve`],
//! shared verbatim by both paths.
//!
//! [`CompiledTrace::compile`]: pscd_sim::CompiledTrace::compile

use std::fs;
use std::mem;
use std::sync::mpsc;
use std::sync::Arc;

use pscd_cache::snapshot::{put_u16, put_u32, put_u64};
use pscd_cache::SnapshotReader;
use pscd_matching::{EngineMatcher, MatchScratch, Subscription, SubscriptionId};
use pscd_pool::effective_threads;
use pscd_sim::resolve::{SubscriptionRows, VersionHeads};
use pscd_sim::{HourlySeries, SimResult};
use pscd_types::{LiveEvent, PageId, ServerId};

use crate::config::{ServiceConfig, ServiceError};
use crate::journal::Journal;
use crate::wire::SNAPSHOT_MAGIC;
use crate::worker::{
    put_server_snap, read_server_snap, ResolvedBatch, ResolvedEvent, ServerSnap, Shard,
    ShardRestore, ShardSnap, ToWorker, WorkerHandle,
};

const JOURNAL_FILE: &str = "journal.bin";
const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The proxy fleet: either one shard applied inline on the ingesting
/// thread (the allocation-free single-threaded path), or persistent
/// worker threads each owning a contiguous server range.
#[derive(Debug)]
enum Fleet {
    Inline(Box<Shard>),
    Threaded(Vec<WorkerHandle>),
}

/// The final state of a drained service: the run's accounting (the same
/// [`SimResult`] shape the batch simulation produces) plus every proxy's
/// serialized cache state, in server order.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Merged accounting across the fleet.
    pub result: SimResult,
    /// Per-proxy strategy snapshots ([`StrategyImpl::encode_snapshot`]
    /// blobs), indexed by server.
    ///
    /// [`StrategyImpl::encode_snapshot`]: pscd_core::StrategyImpl::encode_snapshot
    pub proxies: Vec<Vec<u8>>,
}

/// A live broker service: ingests publish/subscribe/request events one
/// at a time (no pre-merged timeline), journals them, and applies them
/// to the proxy fleet.
#[derive(Debug)]
pub struct ServiceCore {
    config: ServiceConfig,
    /// Live subscription rows (shared resolution state machine).
    rows: SubscriptionRows,
    /// Invalidation lineage: latest published version per origin page.
    heads: VersionHeads,
    fleet: Fleet,
    journal: Option<Journal>,
    batch: ResolvedBatch,
    events_applied: u64,
    last_snapshot: u64,
    /// Optional content-based matcher. When attached, publish fan-outs and
    /// request counts resolve against its frozen kernel instead of the
    /// count rows; dynamic [`subscribe_content`] calls invalidate the
    /// compilation and the next resolve refreezes lazily.
    ///
    /// [`subscribe_content`]: ServiceCore::subscribe_content
    matcher: Option<EngineMatcher>,
    /// Counting scratch for the attached matcher's frozen kernel.
    match_scratch: MatchScratch,
    /// Fan-out buffer for the attached matcher (reused per publish).
    fanout_buf: Vec<(ServerId, u32)>,
}

/// Contiguous even partition of `servers` across `workers` shards.
fn partition(servers: u16, workers: usize) -> Vec<(u16, u16)> {
    let workers = workers as u16;
    let base = servers / workers;
    let rem = servers % workers;
    let mut ranges = Vec::with_capacity(workers as usize);
    let mut start = 0u16;
    for i in 0..workers {
        let len = base + u16::from(i < rem);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

impl ServiceCore {
    /// Starts a fresh service. With a persistence directory configured,
    /// any existing journal is truncated — use [`ServiceCore::recover`]
    /// to resume from persisted state instead.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let journal = match &config.dir {
            Some(dir) => {
                fs::create_dir_all(dir)?;
                Some(Journal::create(&dir.join(JOURNAL_FILE))?)
            }
            None => None,
        };
        let fleet = Self::build_fleet(&config, None)?;
        let pages = config.pages.len();
        Ok(Self {
            rows: SubscriptionRows::new(pages),
            heads: VersionHeads::new(pages),
            fleet,
            journal,
            batch: ResolvedBatch::with_capacity(config.batch_size, config.server_count()),
            events_applied: 0,
            last_snapshot: 0,
            matcher: None,
            match_scratch: MatchScratch::new(),
            fanout_buf: Vec::new(),
            config,
        })
    }

    /// Rebuilds a crashed service from its persistence directory: the
    /// last snapshot (if any) restores the fleet, then the journal's
    /// suffix replays through the ordinary ingest path. Converges to the
    /// exact state of a service that never crashed, because resolution
    /// and apply are deterministic functions of the event sequence.
    pub fn recover(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let dir = config.dir.clone().ok_or(ServiceError::Config {
            what: "dir",
            constraint: "set for recovery",
        })?;
        let journal_path = dir.join(JOURNAL_FILE);
        let events = Journal::read_all(&journal_path)?;
        let snapshot = match fs::read(dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Some(decode_snapshot_file(&bytes, &config)?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let (k, rows, heads, restore) = match snapshot {
            Some(s) => (s.events_applied, s.rows, s.heads, Some(s.restore)),
            None => {
                let pages = config.pages.len();
                (
                    0,
                    SubscriptionRows::new(pages),
                    VersionHeads::new(pages),
                    None,
                )
            }
        };
        if (events.len() as u64) < k {
            return Err(ServiceError::CorruptFile("journal shorter than snapshot"));
        }
        let fleet = Self::build_fleet(&config, restore)?;
        let mut core = Self {
            rows,
            heads,
            fleet,
            journal: None,
            batch: ResolvedBatch::with_capacity(config.batch_size, config.server_count()),
            events_applied: k,
            last_snapshot: k,
            matcher: None,
            match_scratch: MatchScratch::new(),
            fanout_buf: Vec::new(),
            config,
        };
        // Replay the journal suffix without re-journaling and without
        // taking cadence snapshots (the journal already covers it).
        for ev in &events[k as usize..] {
            core.check(ev)?;
            core.resolve(*ev);
            if core.batch.events.len() >= core.config.batch_size {
                core.dispatch()?;
            }
        }
        core.flush()?;
        core.journal = Some(Journal::open_append(&journal_path)?);
        Ok(core)
    }

    fn build_fleet(
        config: &ServiceConfig,
        restore: Option<Vec<ShardSnap>>,
    ) -> Result<Fleet, ServiceError> {
        let servers = config.server_count();
        let workers = effective_threads(config.workers, servers as usize);
        // Restored state arrives as one merged snapshot: all servers in
        // order plus one hourly series. Split the servers back across the
        // fleet; the hourly buckets all land on shard 0 (absorb is
        // component-wise addition, so placement is irrelevant to totals).
        let mut snaps = restore.map(|mut s| {
            let hourly = s
                .iter()
                .skip(1)
                .fold(s[0].hourly.clone(), |mut acc, shard| {
                    acc.absorb(&shard.hourly);
                    acc
                });
            let servers: Vec<ServerSnap> = s.drain(..).flat_map(|shard| shard.servers).collect();
            (servers.into_iter(), Some(hourly))
        });
        if workers <= 1 {
            let mut shard = Box::new(Shard::build(config, 0, servers));
            if let Some((servers_iter, hourly)) = &mut snaps {
                let restore = ShardRestore {
                    servers: servers_iter.collect(),
                    hourly: hourly.take(),
                };
                shard.restore(&restore)?;
            }
            return Ok(Fleet::Inline(shard));
        }
        let mut handles = Vec::with_capacity(workers);
        for (start, end) in partition(servers, workers) {
            let restore = snaps.as_mut().map(|(servers_iter, hourly)| ShardRestore {
                servers: servers_iter.by_ref().take((end - start) as usize).collect(),
                hourly: hourly.take(),
            });
            handles.push(WorkerHandle::spawn(config, start, end, restore)?);
        }
        Ok(Fleet::Threaded(handles))
    }

    /// Total events accepted so far (journal offset of the next event).
    pub fn events_applied(&self) -> u64 {
        self.events_applied
    }

    /// Attaches a content-based matcher: from now on, publish fan-outs and
    /// request subscription counts resolve against its frozen kernel
    /// instead of the count rows ([`LiveEvent::Subscribe`] events still
    /// maintain the rows — and the snapshot format — but no longer drive
    /// resolution). The matcher is frozen here, once.
    ///
    /// The matcher is in-memory state, not persisted: a
    /// [`recover`](ServiceCore::recover)ed service starts back in count-row
    /// mode until a matcher is attached again.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] if the matcher covers a different fleet or
    /// page universe than the configured one.
    pub fn attach_matcher(&mut self, mut matcher: EngineMatcher) -> Result<(), ServiceError> {
        if matcher.server_count() != self.config.server_count()
            || matcher.page_count() != self.config.pages.len()
        {
            return Err(ServiceError::Config {
                what: "matcher",
                constraint: "covering the configured fleet and page universe",
            });
        }
        matcher.freeze();
        self.matcher = Some(matcher);
        Ok(())
    }

    /// `true` while a content matcher is attached and its frozen
    /// compilation is current (no dynamic subscribe since the last
    /// resolve).
    pub fn matcher_frozen(&self) -> bool {
        self.matcher.as_ref().is_some_and(EngineMatcher::is_frozen)
    }

    /// Registers a content-based subscription at `server` — the dynamic
    /// subscribe path of the content mode. Takes effect on the next
    /// resolved event: the frozen compilation is invalidated here and
    /// rebuilt lazily when the next publish or request resolves.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] if no matcher is attached,
    /// [`ServiceError::UnknownServer`] if `server` is outside the fleet.
    pub fn subscribe_content(
        &mut self,
        server: ServerId,
        subscription: Subscription,
    ) -> Result<SubscriptionId, ServiceError> {
        let matcher = self.matcher.as_mut().ok_or(ServiceError::Config {
            what: "matcher",
            constraint: "attached before subscribe_content",
        })?;
        matcher
            .subscribe(server, subscription)
            .map_err(|_| ServiceError::UnknownServer {
                server: server.index(),
                servers: self.config.server_count(),
            })
    }

    /// Removes a content-based subscription registered by
    /// [`subscribe_content`](ServiceCore::subscribe_content); invalidates
    /// the frozen compilation like a subscribe does.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] if no matcher is attached or the
    /// subscription is not registered at `server`,
    /// [`ServiceError::UnknownServer`] if `server` is outside the fleet.
    pub fn unsubscribe_content(
        &mut self,
        server: ServerId,
        id: SubscriptionId,
    ) -> Result<(), ServiceError> {
        let servers = self.config.server_count();
        let matcher = self.matcher.as_mut().ok_or(ServiceError::Config {
            what: "matcher",
            constraint: "attached before unsubscribe_content",
        })?;
        matcher.unsubscribe(server, id).map_err(|e| match e {
            pscd_matching::MatchError::UnknownServer { .. } => ServiceError::UnknownServer {
                server: server.index(),
                servers,
            },
            _ => ServiceError::Config {
                what: "subscription id",
                constraint: "registered at the given server",
            },
        })
    }

    /// Ingests one event.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownPage`]/[`ServiceError::UnknownServer`] if
    /// the event references ids outside the configured universe (the
    /// event is rejected before it is journaled), or a persistence error.
    pub fn ingest(&mut self, ev: LiveEvent) -> Result<(), ServiceError> {
        self.ingest_all(std::slice::from_ref(&ev))
    }

    /// Ingests a sequence of events as one journal write.
    ///
    /// # Errors
    ///
    /// As [`ServiceCore::ingest`]; validation runs over the whole slice
    /// before anything is journaled, so a rejected call changes nothing.
    pub fn ingest_all(&mut self, events: &[LiveEvent]) -> Result<(), ServiceError> {
        for ev in events {
            self.check(ev)?;
        }
        if let Some(journal) = &mut self.journal {
            journal.append(events)?;
        }
        for ev in events {
            self.resolve(*ev);
            if self.batch.events.len() >= self.config.batch_size {
                self.dispatch()?;
            }
            if self.config.snapshot_every > 0
                && self.events_applied - self.last_snapshot >= self.config.snapshot_every
            {
                self.snapshot_now()?;
            }
        }
        Ok(())
    }

    /// Bounds-checks an event against the configured universe.
    fn check(&self, ev: &LiveEvent) -> Result<(), ServiceError> {
        let (page, server) = match *ev {
            LiveEvent::Subscribe { page, server, .. } => (page, Some(server)),
            LiveEvent::Publish { page, .. } => (page, None),
            LiveEvent::Request { page, server, .. } => (page, Some(server)),
        };
        if page.as_usize() >= self.config.pages.len() {
            return Err(ServiceError::UnknownPage {
                page: page.index(),
                pages: self.config.pages.len(),
            });
        }
        if let Some(server) = server {
            if server.index() >= self.config.server_count() {
                return Err(ServiceError::UnknownServer {
                    server: server.index(),
                    servers: self.config.server_count(),
                });
            }
        }
        Ok(())
    }

    /// Resolves one (already bounds-checked) event into the pending
    /// batch, updating the supervisor's live state through the shared
    /// resolution machines in [`pscd_sim::resolve`].
    fn resolve(&mut self, ev: LiveEvent) {
        self.events_applied += 1;
        match ev {
            LiveEvent::Subscribe {
                page,
                server,
                count,
            } => {
                // Subscribes take effect instantly and are never
                // dispatched: every publish resolved before this point
                // already copied its fan-out out of the rows.
                self.rows.set(page, server, count);
            }
            LiveEvent::Publish { time, page } => {
                let meta = &self.config.pages[page.as_usize()];
                let supersedes = self.heads.publish(page, meta);
                let pair_lo = self.batch.pairs.len() as u32;
                match &mut self.matcher {
                    Some(m) => {
                        // Lazy refreeze: a dynamic subscribe since the last
                        // resolve invalidated the compilation; rebuild it
                        // before the fan-out (a no-op when current).
                        m.freeze();
                        m.matched_servers_into(page, &mut self.match_scratch, &mut self.fanout_buf);
                        self.batch.pairs.extend_from_slice(&self.fanout_buf);
                    }
                    None => self.batch.pairs.extend_from_slice(self.rows.row(page)),
                }
                let pair_hi = self.batch.pairs.len() as u32;
                self.batch.events.push(ResolvedEvent::Publish {
                    time,
                    page,
                    pair_lo,
                    pair_hi,
                    supersedes,
                });
            }
            LiveEvent::Request { time, server, page } => {
                let subs = match &mut self.matcher {
                    Some(m) => {
                        m.freeze();
                        m.match_count_with(page, server, &mut self.match_scratch)
                    }
                    None => self.rows.subs(page, server),
                };
                self.batch.events.push(ResolvedEvent::Request {
                    time,
                    server,
                    page,
                    subs,
                });
            }
        }
    }

    /// Sends the pending batch to the fleet.
    fn dispatch(&mut self) -> Result<(), ServiceError> {
        if self.batch.events.is_empty() {
            return Ok(());
        }
        match &mut self.fleet {
            Fleet::Inline(shard) => {
                shard.apply(
                    &self.batch,
                    &self.config.pages,
                    self.config.invalidate_stale,
                );
                self.batch.clear();
            }
            Fleet::Threaded(handles) => {
                let batch = Arc::new(mem::take(&mut self.batch));
                for handle in handles.iter() {
                    handle.send(ToWorker::Batch(Arc::clone(&batch)))?;
                }
            }
        }
        Ok(())
    }

    /// Applies every buffered event now.
    pub fn flush(&mut self) -> Result<(), ServiceError> {
        self.dispatch()
    }

    /// Takes a state snapshot immediately (flushing buffered events
    /// first) and writes it atomically to the persistence directory.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Config`] if no persistence directory is
    /// configured; otherwise snapshot-encoding or I/O errors.
    pub fn snapshot_now(&mut self) -> Result<(), ServiceError> {
        let dir = self.config.dir.clone().ok_or(ServiceError::Config {
            what: "dir",
            constraint: "set for snapshots",
        })?;
        self.flush()?;
        let snaps = self.collect_snaps()?;
        let mut out = Vec::new();
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u64(&mut out, self.events_applied);
        put_u32(&mut out, self.config.pages.len() as u32);
        for row in self.rows.rows() {
            put_u32(&mut out, row.len() as u32);
            for &(server, count) in row {
                put_u16(&mut out, server.index());
                put_u32(&mut out, count);
            }
        }
        for latest in self.heads.heads() {
            put_u32(&mut out, latest.map_or(u32::MAX, PageId::index));
        }
        let hourly = snaps
            .iter()
            .skip(1)
            .fold(snaps[0].hourly.clone(), |mut acc, s| {
                acc.absorb(&s.hourly);
                acc
            });
        put_hourly(&mut out, &hourly);
        put_u16(&mut out, self.config.server_count());
        for snap in &snaps {
            for server in &snap.servers {
                put_server_snap(&mut out, server);
            }
        }
        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
        self.last_snapshot = self.events_applied;
        Ok(())
    }

    fn collect_snaps(&mut self) -> Result<Vec<ShardSnap>, ServiceError> {
        match &mut self.fleet {
            Fleet::Inline(shard) => Ok(vec![shard.snapshot()?]),
            Fleet::Threaded(handles) => {
                let mut replies = Vec::with_capacity(handles.len());
                for handle in handles.iter() {
                    let (tx, rx) = mpsc::channel();
                    handle.send(ToWorker::Snapshot(tx))?;
                    replies.push(rx);
                }
                replies
                    .into_iter()
                    .map(|rx| Ok(rx.recv().map_err(|_| ServiceError::Stopped)??))
                    .collect()
            }
        }
    }

    /// Drains the service: flushes buffered events, stops the workers,
    /// and returns the merged accounting plus every proxy's serialized
    /// cache state.
    pub fn shutdown(mut self) -> Result<ServiceOutcome, ServiceError> {
        self.flush()?;
        let servers = self.config.server_count();
        let partials = match &mut self.fleet {
            Fleet::Inline(shard) => vec![shard.finish(servers)?],
            Fleet::Threaded(handles) => {
                let mut replies = Vec::with_capacity(handles.len());
                for handle in handles.iter() {
                    let (tx, rx) = mpsc::channel();
                    handle.send(ToWorker::Finish(tx))?;
                    replies.push(rx);
                }
                replies
                    .into_iter()
                    .map(|rx| Ok(rx.recv().map_err(|_| ServiceError::Stopped)??))
                    .collect::<Result<Vec<_>, ServiceError>>()?
            }
        };
        let mut result = SimResult::identity(&partials[0].0.strategy, self.config.hours, servers);
        let mut proxies = Vec::with_capacity(servers as usize);
        for (partial, blobs) in partials {
            result.absorb(&partial);
            proxies.extend(blobs);
        }
        Ok(ServiceOutcome { result, proxies })
    }
}

/// A decoded snapshot file.
struct SnapshotState {
    events_applied: u64,
    rows: SubscriptionRows,
    heads: VersionHeads,
    restore: Vec<ShardSnap>,
}

fn put_hourly(out: &mut Vec<u8>, hourly: &HourlySeries) {
    put_u32(out, hourly.hours() as u32);
    for series in [
        &hourly.hits,
        &hourly.requests,
        &hourly.pushed_pages,
        &hourly.pushed_bytes,
        &hourly.fetched_pages,
        &hourly.fetched_bytes,
    ] {
        for &v in series {
            put_u64(out, v);
        }
    }
}

fn read_hourly(r: &mut SnapshotReader<'_>) -> Result<HourlySeries, ServiceError> {
    let hours = r.read_u32()? as usize;
    let mut hourly = HourlySeries::new(hours);
    for series in [
        &mut hourly.hits,
        &mut hourly.requests,
        &mut hourly.pushed_pages,
        &mut hourly.pushed_bytes,
        &mut hourly.fetched_pages,
        &mut hourly.fetched_bytes,
    ] {
        for v in series.iter_mut() {
            *v = r.read_u64()?;
        }
    }
    Ok(hourly)
}

fn decode_snapshot_file(
    bytes: &[u8],
    config: &ServiceConfig,
) -> Result<SnapshotState, ServiceError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(ServiceError::CorruptFile("snapshot header"));
    }
    let mut r = SnapshotReader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
    let events_applied = r.read_u64()?;
    let page_count = r.read_u32()? as usize;
    if page_count != config.pages.len() {
        return Err(ServiceError::CorruptFile("snapshot page universe"));
    }
    let mut rows = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        let len = r.read_u32()? as usize;
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let server = ServerId::new(r.read_u16()?);
            let count = r.read_u32()?;
            row.push((server, count));
        }
        rows.push(row);
    }
    let mut heads = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        let raw = r.read_u32()?;
        heads.push((raw != u32::MAX).then(|| PageId::new(raw)));
    }
    let hourly = read_hourly(&mut r)?;
    let server_count = r.read_u16()?;
    if server_count != config.server_count() {
        return Err(ServiceError::CorruptFile("snapshot fleet size"));
    }
    let mut servers = Vec::with_capacity(server_count as usize);
    for _ in 0..server_count {
        servers.push(read_server_snap(&mut r)?);
    }
    if !r.is_empty() {
        return Err(ServiceError::CorruptFile("trailing snapshot bytes"));
    }
    Ok(SnapshotState {
        events_applied,
        rows: SubscriptionRows::from_rows(rows),
        heads: VersionHeads::from_heads(heads),
        restore: vec![ShardSnap { hourly, servers }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_even() {
        assert_eq!(partition(8, 3), vec![(0, 3), (3, 6), (6, 8)]);
        assert_eq!(partition(4, 4), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(partition(5, 2), vec![(0, 3), (3, 5)]);
        let ranges = partition(7, 3);
        assert_eq!(ranges.first().unwrap().0, 0);
        assert_eq!(ranges.last().unwrap().1, 7);
    }

    #[test]
    fn hourly_round_trips() {
        let mut h = HourlySeries::new(3);
        h.record_request(
            pscd_types::SimTime::from_hours(1),
            false,
            pscd_types::Bytes::new(7),
        );
        h.record_push(
            pscd_types::SimTime::from_hours(2),
            pscd_types::Bytes::new(9),
        );
        let mut out = Vec::new();
        put_hourly(&mut out, &h);
        let mut r = SnapshotReader::new(&out);
        assert_eq!(read_hourly(&mut r).unwrap(), h);
        assert!(r.is_empty());
    }
}
