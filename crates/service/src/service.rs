//! The channel-based service front door.
//!
//! [`BrokerService::start`] runs a [`ServiceCore`] on its own thread and
//! hands back a [`ServiceHandle`] — a cheap, cloneable ingestion client.
//! Clients submit publish/subscribe/request events as individual
//! messages with no pre-merged timeline; the service thread owns all
//! ordering (the channel's FIFO order *is* the event order).

use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::JoinHandle;

use pscd_types::LiveEvent;

use crate::config::{ServiceConfig, ServiceError};
use crate::core::{ServiceCore, ServiceOutcome};

enum Command {
    Ingest(Vec<LiveEvent>),
    Flush,
    Snapshot,
    Shutdown(Sender<Result<ServiceOutcome, ServiceError>>),
    /// Drop the core on the spot — no flush, no snapshot. Simulates a
    /// crash for the recovery tests.
    Kill,
}

impl std::fmt::Debug for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Ingest(evs) => write!(f, "Ingest({} events)", evs.len()),
            Command::Flush => write!(f, "Flush"),
            Command::Snapshot => write!(f, "Snapshot"),
            Command::Shutdown(_) => write!(f, "Shutdown"),
            Command::Kill => write!(f, "Kill"),
        }
    }
}

/// A running broker service (the thread owning a [`ServiceCore`]).
#[derive(Debug)]
pub struct BrokerService {
    handle: ServiceHandle,
    join: Option<JoinHandle<()>>,
}

/// An ingestion client for a running [`BrokerService`]. Clone freely;
/// all clones feed the same service thread.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: Sender<Command>,
}

impl BrokerService {
    /// Builds the service core (fresh, or recovered when `recover` is
    /// set) and starts its thread. Construction errors are reported here,
    /// not deferred to the first ingest.
    ///
    /// # Errors
    ///
    /// Any [`ServiceCore::new`]/[`ServiceCore::recover`] error.
    pub fn start(config: ServiceConfig, recover: bool) -> Result<Self, ServiceError> {
        let (tx, rx) = mpsc::channel::<Command>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServiceError>>();
        let join = std::thread::Builder::new()
            .name("pscd-service".to_owned())
            .spawn(move || service_main(config, recover, &ready_tx, &rx))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(Self {
                handle: ServiceHandle { tx },
                join: Some(join),
            }),
            Ok(Err(e)) => {
                join.join().ok();
                Err(e)
            }
            Err(_) => {
                join.join().ok();
                Err(ServiceError::Stopped)
            }
        }
    }

    /// The ingestion client.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Drains the service and returns its final state. The first error
    /// the core hit while processing ingested events (if any) is
    /// reported here.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the service thread already exited; a
    /// deferred ingest error or a shutdown error otherwise.
    pub fn shutdown(mut self) -> Result<ServiceOutcome, ServiceError> {
        let (tx, rx) = mpsc::channel();
        self.handle
            .tx
            .send(Command::Shutdown(tx))
            .map_err(|_| ServiceError::Stopped)?;
        let outcome = rx.recv().map_err(|_| ServiceError::Stopped)?;
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
        outcome
    }

    /// Kills the service without flushing or snapshotting, as a crash
    /// would. Persisted state is whatever the journal and the last
    /// snapshot already hold.
    pub fn kill(mut self) {
        self.handle.tx.send(Command::Kill).ok();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
    }
}

impl Drop for BrokerService {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            // Closing the channel ends the service loop (without a final
            // flush — use `shutdown` for a clean drain).
            self.handle.tx.send(Command::Kill).ok();
            join.join().ok();
        }
    }
}

impl ServiceHandle {
    /// Submits one event.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the service thread exited.
    /// Processing errors (unknown page/server, I/O) are deferred and
    /// reported by [`BrokerService::shutdown`].
    pub fn submit(&self, ev: LiveEvent) -> Result<(), ServiceError> {
        self.submit_all(vec![ev])
    }

    /// Submits a sequence of events as one message.
    ///
    /// # Errors
    ///
    /// As [`ServiceHandle::submit`].
    pub fn submit_all(&self, events: Vec<LiveEvent>) -> Result<(), ServiceError> {
        self.tx
            .send(Command::Ingest(events))
            .map_err(|_| ServiceError::Stopped)
    }

    /// Asks the service to apply all buffered events now.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the service thread exited.
    pub fn flush(&self) -> Result<(), ServiceError> {
        self.tx
            .send(Command::Flush)
            .map_err(|_| ServiceError::Stopped)
    }

    /// Asks the service to take a snapshot now.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Stopped`] if the service thread exited.
    pub fn snapshot(&self) -> Result<(), ServiceError> {
        self.tx
            .send(Command::Snapshot)
            .map_err(|_| ServiceError::Stopped)
    }
}

fn service_main(
    config: ServiceConfig,
    recover: bool,
    ready: &Sender<Result<(), ServiceError>>,
    rx: &Receiver<Command>,
) {
    let core = if recover {
        ServiceCore::recover(config)
    } else {
        ServiceCore::new(config)
    };
    let mut core = match core {
        Ok(core) => {
            ready.send(Ok(())).ok();
            core
        }
        Err(e) => {
            ready.send(Err(e)).ok();
            return;
        }
    };
    // The first processing error is latched and reported at shutdown;
    // later commands are still accepted (ingest validation rejects whole
    // slices, so a poisoned command never half-applies).
    let mut deferred: Option<ServiceError> = None;
    while let Ok(cmd) = rx.recv() {
        let result = match cmd {
            Command::Ingest(events) => core.ingest_all(&events),
            Command::Flush => core.flush(),
            Command::Snapshot => core.snapshot_now(),
            Command::Shutdown(reply) => {
                let outcome = match deferred.take() {
                    Some(e) => Err(e),
                    None => core.shutdown(),
                };
                reply.send(outcome).ok();
                return;
            }
            Command::Kill => return,
        };
        if let Err(e) = result {
            deferred.get_or_insert(e);
        }
    }
}
