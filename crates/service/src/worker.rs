//! Per-proxy workers: shard state and the persistent worker threads.
//!
//! A [`DeliveryEngine`] is deliberately single-threaded (its observer
//! handle is an `Rc`), so the service never shares engines across
//! threads. Instead each worker thread *builds and owns* its shard of
//! the fleet, and the supervisor streams fully resolved batches to every
//! worker over a channel. Message order per channel is FIFO, so a
//! snapshot or shutdown request enqueued after a batch observes that
//! batch applied — no separate barrier is needed.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use pscd_broker::{DeliveryEngine, PushRecord, Traffic};
use pscd_cache::snapshot::{put_u32, put_u64};
use pscd_cache::{Layout, SnapshotError, SnapshotReader};
use pscd_obs::SharedObserver;
use pscd_sim::live::{apply_publish, apply_request};
use pscd_sim::{HourlySeries, SimResult};
use pscd_types::{PageId, PageMeta, ServerId, SimTime};

use crate::config::{ServiceConfig, ServiceError};

/// One ingest event with all strategy-independent resolution already
/// done by the supervisor: publish fan-outs are materialized as slices
/// of the batch's pair table, requests carry their subscription count,
/// and version lineage is resolved to a concrete superseded page.
///
/// Resolving at ingest (not at apply) is what makes batching invisible:
/// a `Subscribe` inside a batch updates the supervisor's rows
/// immediately, but the fan-outs of publishes resolved *before* it were
/// already copied out, exactly as if every event were applied the moment
/// it arrived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ResolvedEvent {
    /// A publish: deliver `pairs[pair_lo..pair_hi]` of the batch.
    Publish {
        /// Publication instant.
        time: SimTime,
        /// The published page.
        page: PageId,
        /// Start of the matched-pair slice in the batch's pair table.
        pair_lo: u32,
        /// End of the matched-pair slice.
        pair_hi: u32,
        /// The previous version to invalidate, if any.
        supersedes: Option<PageId>,
    },
    /// A subscriber request.
    Request {
        /// Request instant.
        time: SimTime,
        /// The proxy serving it.
        server: ServerId,
        /// The requested page.
        page: PageId,
        /// Subscriptions matching the page at that proxy.
        subs: u32,
    },
}

/// A batch of resolved events plus the pair table their publish slices
/// index into. Buffers are reused across batches on the inline path.
#[derive(Debug, Default)]
pub(crate) struct ResolvedBatch {
    pub(crate) events: Vec<ResolvedEvent>,
    pub(crate) pairs: Vec<(ServerId, u32)>,
}

impl ResolvedBatch {
    /// Preallocates for `batch_size` events over a fleet of `servers`.
    /// One publish fans out to at most the whole fleet, so
    /// `batch_size * servers` bounds the pair table — the same
    /// worst-case-dense sizing the replay's eviction scratch uses, which
    /// is what keeps the inline ingest path allocation-free in steady
    /// state.
    pub(crate) fn with_capacity(batch_size: usize, servers: u16) -> Self {
        Self {
            events: Vec::with_capacity(batch_size),
            pairs: Vec::with_capacity(batch_size * servers as usize),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.pairs.clear();
    }
}

/// Snapshot of one proxy: accounting plus the strategy's state blob.
#[derive(Debug, Clone)]
pub(crate) struct ServerSnap {
    pub(crate) hits: u64,
    pub(crate) requests: u64,
    pub(crate) traffic: Traffic,
    pub(crate) blob: Vec<u8>,
}

/// Snapshot of one shard: its hourly series and its servers in range
/// order.
#[derive(Debug)]
pub(crate) struct ShardSnap {
    pub(crate) hourly: HourlySeries,
    pub(crate) servers: Vec<ServerSnap>,
}

/// State to restore into a freshly built shard before it processes any
/// event.
#[derive(Debug)]
pub(crate) struct ShardRestore {
    /// Per-server state for the shard's range, in range order.
    pub(crate) servers: Vec<ServerSnap>,
    /// The merged hourly series; only one shard receives it (absorb is
    /// component-wise addition, so where the buckets live is irrelevant
    /// to the merged totals).
    pub(crate) hourly: Option<HourlySeries>,
}

/// One shard of the proxy fleet: a range-local [`DeliveryEngine`] plus
/// its accounting, with the same apply semantics as the batch replay
/// loop (both call into [`pscd_sim::live`]).
#[derive(Debug)]
pub(crate) struct Shard {
    engine: DeliveryEngine,
    hourly: HourlySeries,
    push_scratch: Vec<PushRecord>,
    start: u16,
    end: u16,
}

impl Shard {
    /// Builds the shard owning global servers `[start, end)`.
    pub(crate) fn build(config: &ServiceConfig, start: u16, end: u16) -> Self {
        let layout = Layout::Dense {
            page_count: config.pages.len(),
        };
        let obs = SharedObserver::disabled();
        let strategies = (start..end)
            .map(|s| {
                config.strategy.build_impl_observed(
                    config.capacities[s as usize],
                    layout,
                    obs.handle(ServerId::new(s)),
                )
            })
            .collect();
        let costs = (start..end).map(|s| config.costs[s as usize]).collect();
        let mut engine =
            DeliveryEngine::from_impls(strategies, costs, config.scheme, obs, ServerId::new(start))
                .expect("lengths match by construction");
        engine.reserve_evict_scratch(config.pages.len());
        Self {
            engine,
            hourly: HourlySeries::new(config.hours),
            push_scratch: Vec::with_capacity((end - start) as usize),
            start,
            end,
        }
    }

    /// Applies every event of `batch` that touches this shard's range.
    pub(crate) fn apply(
        &mut self,
        batch: &ResolvedBatch,
        pages: &[PageMeta],
        invalidate_stale: bool,
    ) {
        for ev in &batch.events {
            match *ev {
                ResolvedEvent::Publish {
                    time,
                    page,
                    pair_lo,
                    pair_hi,
                    supersedes,
                } => {
                    if invalidate_stale {
                        if let Some(stale) = supersedes {
                            self.engine.invalidate_everywhere(stale);
                        }
                    }
                    let pairs = &batch.pairs[pair_lo as usize..pair_hi as usize];
                    let lo = pairs.partition_point(|&(s, _)| s.index() < self.start);
                    let hi = pairs.partition_point(|&(s, _)| s.index() < self.end);
                    apply_publish(
                        &mut self.engine,
                        &mut self.hourly,
                        &pages[page.as_usize()],
                        time,
                        &pairs[lo..hi],
                        &mut self.push_scratch,
                    );
                }
                ResolvedEvent::Request {
                    time,
                    server,
                    page,
                    subs,
                } => {
                    if (self.start..self.end).contains(&server.index()) {
                        apply_request(
                            &mut self.engine,
                            &mut self.hourly,
                            server,
                            &pages[page.as_usize()],
                            time,
                            subs,
                        )
                        .expect("server filtered to the shard range");
                    }
                }
            }
        }
    }

    /// Captures the shard's full mutable state.
    pub(crate) fn snapshot(&self) -> Result<ShardSnap, SnapshotError> {
        let mut servers = Vec::with_capacity((self.end - self.start) as usize);
        for s in self.start..self.end {
            let server = ServerId::new(s);
            let (hits, requests) = self.engine.hit_stats(server);
            let mut blob = Vec::new();
            self.engine
                .strategy_impl(server)
                .encode_snapshot(&mut blob)?;
            servers.push(ServerSnap {
                hits,
                requests,
                traffic: self.engine.traffic(server),
                blob,
            });
        }
        Ok(ShardSnap {
            hourly: self.hourly.clone(),
            servers,
        })
    }

    /// Restores state captured by [`Shard::snapshot`] into this freshly
    /// built shard.
    pub(crate) fn restore(&mut self, restore: &ShardRestore) -> Result<(), SnapshotError> {
        debug_assert_eq!(restore.servers.len(), (self.end - self.start) as usize);
        for (i, snap) in restore.servers.iter().enumerate() {
            let server = ServerId::new(self.start + i as u16);
            let mut r = SnapshotReader::new(&snap.blob);
            self.engine
                .strategy_impl_mut(server)
                .decode_snapshot(&mut r)?;
            if !r.is_empty() {
                return Err(SnapshotError::Corrupt("trailing bytes in strategy blob"));
            }
            self.engine
                .restore_accounting(server, snap.hits, snap.requests, snap.traffic);
        }
        if let Some(hourly) = &restore.hourly {
            self.hourly = hourly.clone();
        }
        Ok(())
    }

    /// The shard's contribution to the final result: an identity-shaped
    /// [`SimResult`] (zeros outside the range) plus the per-proxy
    /// strategy blobs, in range order.
    pub(crate) fn finish(
        &self,
        servers_total: u16,
    ) -> Result<(SimResult, Vec<Vec<u8>>), SnapshotError> {
        let mut per_server = vec![(0u64, 0u64); servers_total as usize];
        let mut hits = 0u64;
        let mut requests = 0u64;
        for s in self.start..self.end {
            let stats = self.engine.hit_stats(ServerId::new(s));
            per_server[s as usize] = stats;
            hits += stats.0;
            requests += stats.1;
        }
        let name = self.engine.strategy(ServerId::new(self.start)).name();
        let result = SimResult {
            strategy: name.to_owned(),
            hits,
            requests,
            traffic: self.engine.total_traffic(),
            hourly: self.hourly.clone(),
            per_server,
        };
        let mut proxies = Vec::with_capacity((self.end - self.start) as usize);
        for s in self.start..self.end {
            let mut blob = Vec::new();
            self.engine
                .strategy_impl(ServerId::new(s))
                .encode_snapshot(&mut blob)?;
            proxies.push(blob);
        }
        Ok((result, proxies))
    }
}

/// What a shard hands back at shutdown: its partial `SimResult` plus the
/// canonical per-proxy cache snapshots for its server range.
pub(crate) type ShardFinish = Result<(SimResult, Vec<Vec<u8>>), SnapshotError>;

/// Messages to a worker thread. FIFO channel order doubles as the
/// barrier: a `Snapshot`/`Finish` reply reflects every batch sent before
/// it.
pub(crate) enum ToWorker {
    Batch(Arc<ResolvedBatch>),
    Snapshot(Sender<Result<ShardSnap, SnapshotError>>),
    Finish(Sender<ShardFinish>),
}

impl std::fmt::Debug for ToWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToWorker::Batch(b) => write!(f, "Batch({} events)", b.events.len()),
            ToWorker::Snapshot(_) => write!(f, "Snapshot"),
            ToWorker::Finish(_) => write!(f, "Finish"),
        }
    }
}

/// A handle to one persistent worker thread. Dropping the handle closes
/// the channel and joins the thread.
#[derive(Debug)]
pub(crate) struct WorkerHandle {
    tx: Option<Sender<ToWorker>>,
    join: Option<JoinHandle<()>>,
}

impl WorkerHandle {
    /// Spawns a worker owning servers `[start, end)`, optionally restored
    /// from snapshot state before it accepts batches.
    pub(crate) fn spawn(
        config: &ServiceConfig,
        start: u16,
        end: u16,
        restore: Option<ShardRestore>,
    ) -> Result<Self, ServiceError> {
        let (tx, rx) = mpsc::channel::<ToWorker>();
        // The restore result must reach the supervisor before it starts
        // streaming batches into a possibly half-restored shard.
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), SnapshotError>>();
        let config = config.clone();
        let join = std::thread::Builder::new()
            .name(format!("pscd-worker-{start}"))
            .spawn(move || worker_main(&config, start, end, restore, &ready_tx, &rx))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(Self {
                tx: Some(tx),
                join: Some(join),
            }),
            Ok(Err(e)) => {
                join.join().ok();
                Err(e.into())
            }
            Err(_) => {
                join.join().ok();
                Err(ServiceError::Stopped)
            }
        }
    }

    /// Sends a message; [`ServiceError::Stopped`] if the worker died.
    pub(crate) fn send(&self, msg: ToWorker) -> Result<(), ServiceError> {
        self.tx
            .as_ref()
            .ok_or(ServiceError::Stopped)?
            .send(msg)
            .map_err(|_| ServiceError::Stopped)
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        // Close the channel first so the worker's recv loop ends, then
        // join to keep thread lifetimes inside the supervisor's.
        self.tx.take();
        if let Some(join) = self.join.take() {
            join.join().ok();
        }
    }
}

fn worker_main(
    config: &ServiceConfig,
    start: u16,
    end: u16,
    restore: Option<ShardRestore>,
    ready: &Sender<Result<(), SnapshotError>>,
    rx: &Receiver<ToWorker>,
) {
    let mut shard = Shard::build(config, start, end);
    let restored = match &restore {
        Some(r) => shard.restore(r),
        None => Ok(()),
    };
    let failed = restored.is_err();
    ready.send(restored).ok();
    if failed {
        return;
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Batch(batch) => {
                shard.apply(&batch, &config.pages, config.invalidate_stale);
            }
            ToWorker::Snapshot(reply) => {
                reply.send(shard.snapshot()).ok();
            }
            ToWorker::Finish(reply) => {
                reply.send(shard.finish(config.server_count())).ok();
                return;
            }
        }
    }
}

/// Encodes one [`ServerSnap`] into the snapshot stream.
pub(crate) fn put_server_snap(out: &mut Vec<u8>, snap: &ServerSnap) {
    put_u64(out, snap.hits);
    put_u64(out, snap.requests);
    put_u64(out, snap.traffic.pushed_pages);
    put_u64(out, snap.traffic.pushed_bytes.as_u64());
    put_u64(out, snap.traffic.fetched_pages);
    put_u64(out, snap.traffic.fetched_bytes.as_u64());
    put_u32(out, snap.blob.len() as u32);
    out.extend_from_slice(&snap.blob);
}

/// Decodes one [`ServerSnap`] from the snapshot stream.
pub(crate) fn read_server_snap(r: &mut SnapshotReader<'_>) -> Result<ServerSnap, SnapshotError> {
    let hits = r.read_u64()?;
    let requests = r.read_u64()?;
    let traffic = Traffic {
        pushed_pages: r.read_u64()?,
        pushed_bytes: pscd_types::Bytes::new(r.read_u64()?),
        fetched_pages: r.read_u64()?,
        fetched_bytes: pscd_types::Bytes::new(r.read_u64()?),
    };
    let len = r.read_u32()? as usize;
    let blob = r.read_bytes(len)?.to_vec();
    Ok(ServerSnap {
        hits,
        requests,
        traffic,
        blob,
    })
}
