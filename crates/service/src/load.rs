//! Seeded load generation against a live [`ServiceCore`].
//!
//! `run_load` drives a precomputed event stream into the service in
//! fixed-size batches, timing every batch and recording service metrics
//! (`service.events`, `service.batches`, `service.batch_micros`) into a
//! [`Registry`] plus optional trace spans — the sustained-throughput
//! harness behind `repro serve --load`.

use std::time::Instant;

use pscd_obs::{Registry, TraceSink};
use pscd_types::LiveEvent;

use crate::config::ServiceError;
use crate::core::ServiceCore;

/// What a load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Events ingested.
    pub events: u64,
    /// Ingest batches submitted.
    pub batches: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Sustained ingest rate.
    pub events_per_sec: f64,
    /// Median batch ingest latency in microseconds.
    pub batch_micros_p50: f64,
    /// Tail batch ingest latency in microseconds.
    pub batch_micros_p99: f64,
}

/// Drives `events` into the service in batches of `batch` (the ingest
/// granularity a front-door client would use), recording per-batch
/// latency into `registry` and a span per batch into `sink`.
///
/// # Errors
///
/// The first [`ServiceCore::ingest_all`] error, with everything before
/// it already applied.
pub fn run_load(
    core: &mut ServiceCore,
    events: &[LiveEvent],
    batch: usize,
    registry: &mut Registry,
    sink: &TraceSink,
) -> Result<LoadReport, ServiceError> {
    let batch = batch.max(1);
    let mut recorder = sink.recorder("service.load");
    let mut batches = 0u64;
    let started = Instant::now();
    for chunk in events.chunks(batch) {
        let span = recorder.begin();
        let chunk_started = Instant::now();
        core.ingest_all(chunk)?;
        let micros = chunk_started.elapsed().as_secs_f64() * 1e6;
        recorder.end_with(span, "ingest_batch", || format!("{} events", chunk.len()));
        registry.observe("service.batch_micros", micros);
        registry.add("service.events", chunk.len() as u64);
        registry.inc("service.batches");
        batches += 1;
    }
    core.flush()?;
    let elapsed_secs = started.elapsed().as_secs_f64();
    let hist = registry.histogram("service.batch_micros");
    Ok(LoadReport {
        events: events.len() as u64,
        batches,
        elapsed_secs,
        events_per_sec: if elapsed_secs > 0.0 {
            events.len() as f64 / elapsed_secs
        } else {
            0.0
        },
        batch_micros_p50: hist.map_or(0.0, pscd_obs::Log2Histogram::p50),
        batch_micros_p99: hist.map_or(0.0, pscd_obs::Log2Histogram::p99),
    })
}
