//! Service configuration and errors.

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use pscd_broker::{BrokerError, PushScheme};
use pscd_cache::SnapshotError;
use pscd_core::StrategyKind;
use pscd_types::{Bytes, PageMeta};

/// Configuration of a live broker service: the same strategy/capacity/
/// scheme knobs a batch simulation takes, plus the service-only knobs —
/// worker count, ingest batch size, snapshot cadence and persistence
/// directory.
///
/// The page universe is fixed up front ([`ServiceConfig::pages`]): like
/// the batch replay, the service runs every per-page table in dense
/// layout so the steady-state ingest path performs no heap allocation.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The content-distribution strategy run at every proxy.
    pub strategy: StrategyKind,
    /// Per-proxy cache capacities (the fleet size is `capacities.len()`).
    pub capacities: Vec<Bytes>,
    /// Per-proxy fetch costs; must match `capacities` in length.
    pub costs: Vec<f64>,
    /// The pushing scheme (paper §5.6).
    pub scheme: PushScheme,
    /// Drop the previous version of an article from every cache when a
    /// modified version is published.
    pub invalidate_stale: bool,
    /// The page universe, indexed by page id. Shared (not copied) with
    /// every worker.
    pub pages: Arc<[PageMeta]>,
    /// Hourly accounting buckets to preallocate.
    pub hours: usize,
    /// Worker threads: `1` (the default) applies events inline on the
    /// ingesting thread, `0` picks the machine's parallelism, any other
    /// count shards the proxy fleet across that many persistent workers.
    pub workers: usize,
    /// Events buffered per dispatch to the workers.
    pub batch_size: usize,
    /// Take a state snapshot every this many ingested events
    /// (`0` disables snapshots; a journal-only service recovers by
    /// replaying from the start).
    pub snapshot_every: u64,
    /// Persistence directory for the event journal and snapshots.
    /// `None` runs fully in memory (no durability, no recovery).
    pub dir: Option<PathBuf>,
}

impl ServiceConfig {
    /// A single-threaded, in-memory service configuration; durability and
    /// parallelism are opted into via the builder methods.
    pub fn new(
        strategy: StrategyKind,
        capacities: Vec<Bytes>,
        costs: Vec<f64>,
        scheme: PushScheme,
        pages: Arc<[PageMeta]>,
        hours: usize,
    ) -> Self {
        Self {
            strategy,
            capacities,
            costs,
            scheme,
            invalidate_stale: false,
            pages,
            hours,
            workers: 1,
            batch_size: 256,
            snapshot_every: 0,
            dir: None,
        }
    }

    /// Sets the worker-thread count (see [`ServiceConfig::workers`]).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the ingest batch size.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enables persistence: journal to `dir`, snapshot every
    /// `snapshot_every` events (`0` = journal only).
    #[must_use]
    pub fn with_persistence(mut self, dir: PathBuf, snapshot_every: u64) -> Self {
        self.dir = Some(dir);
        self.snapshot_every = snapshot_every;
        self
    }

    /// Enables stale-version invalidation.
    #[must_use]
    pub fn with_invalidation(mut self) -> Self {
        self.invalidate_stale = true;
        self
    }

    /// Number of proxy servers.
    pub fn server_count(&self) -> u16 {
        self.capacities.len() as u16
    }

    /// Rejects structurally invalid configurations.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Config`] when a field violates its
    /// constraint.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.capacities.is_empty() {
            return Err(ServiceError::Config {
                what: "capacities",
                constraint: "at least one proxy",
            });
        }
        if self.capacities.len() > u16::MAX as usize {
            return Err(ServiceError::Config {
                what: "capacities",
                constraint: "at most u16::MAX proxies",
            });
        }
        if self.costs.len() != self.capacities.len() {
            return Err(ServiceError::Config {
                what: "costs",
                constraint: "one cost per proxy",
            });
        }
        if self.batch_size == 0 {
            return Err(ServiceError::Config {
                what: "batch_size",
                constraint: ">= 1",
            });
        }
        if self.hours == 0 {
            return Err(ServiceError::Config {
                what: "hours",
                constraint: ">= 1",
            });
        }
        Ok(())
    }
}

/// Why a service operation failed.
#[derive(Debug)]
pub enum ServiceError {
    /// A configuration field violates its constraint.
    Config {
        /// The offending field.
        what: &'static str,
        /// The constraint it violates.
        constraint: &'static str,
    },
    /// An event referenced a page outside the configured universe.
    UnknownPage {
        /// The page index the event carried.
        page: u32,
        /// The configured page-universe size.
        pages: usize,
    },
    /// An event referenced a server outside the fleet.
    UnknownServer {
        /// The server index the event carried.
        server: u16,
        /// The fleet size.
        servers: u16,
    },
    /// A delivery-engine operation failed.
    Broker(BrokerError),
    /// A snapshot could not be encoded or decoded.
    Snapshot(SnapshotError),
    /// Journal or snapshot file I/O failed.
    Io(std::io::Error),
    /// A persisted file is structurally invalid.
    CorruptFile(&'static str),
    /// The service thread is no longer running.
    Stopped,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config { what, constraint } => {
                write!(f, "invalid service config: {what} must be {constraint}")
            }
            ServiceError::UnknownPage { page, pages } => {
                write!(
                    f,
                    "event references page {page} outside universe of {pages}"
                )
            }
            ServiceError::UnknownServer { server, servers } => {
                write!(
                    f,
                    "event references server {server} outside fleet of {servers}"
                )
            }
            ServiceError::Broker(e) => write!(f, "broker error: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            ServiceError::Io(e) => write!(f, "service i/o error: {e}"),
            ServiceError::CorruptFile(what) => write!(f, "corrupt service file: {what}"),
            ServiceError::Stopped => write!(f, "service is no longer running"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Broker(e) => Some(e),
            ServiceError::Snapshot(e) => Some(e),
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BrokerError> for ServiceError {
    fn from(e: BrokerError) -> Self {
        ServiceError::Broker(e)
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{PageId, PageKind, SimTime};

    fn pages(n: u32) -> Arc<[PageMeta]> {
        (0..n)
            .map(|i| {
                PageMeta::new(
                    PageId::new(i),
                    Bytes::new(100),
                    SimTime::ZERO,
                    PageKind::Original,
                )
            })
            .collect()
    }

    fn base() -> ServiceConfig {
        ServiceConfig::new(
            StrategyKind::Sg2 { beta: 2.0 },
            vec![Bytes::new(1_000); 4],
            vec![1.0; 4],
            PushScheme::Always,
            pages(8),
            24,
        )
    }

    #[test]
    fn valid_config_passes() {
        assert!(base().validate().is_ok());
        assert_eq!(base().server_count(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = base();
        c.costs.pop();
        assert!(matches!(
            c.validate(),
            Err(ServiceError::Config { what: "costs", .. })
        ));
        let mut c = base();
        c.capacities.clear();
        c.costs.clear();
        assert!(c.validate().is_err());
        let c = base().with_batch_size(0);
        assert!(c.validate().is_err());
        let mut c = base();
        c.hours = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn errors_display() {
        let e = ServiceError::Config {
            what: "hours",
            constraint: ">= 1",
        };
        assert_eq!(e.to_string(), "invalid service config: hours must be >= 1");
        assert!(ServiceError::Stopped.to_string().contains("no longer"));
        assert!(ServiceError::CorruptFile("bad magic")
            .to_string()
            .contains("bad magic"));
    }
}
