//! The write-ahead event journal.
//!
//! Every ingest command appends its events to the journal *before* they
//! are applied, in one `write_all` from a reused scratch buffer. The
//! crash model is process death (no fsync): a killed service loses at
//! most the tail record of an in-flight write, which recovery detects as
//! a truncated record and discards. Everything the journal holds before
//! that point replays deterministically.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use pscd_cache::{SnapshotError, SnapshotReader};
use pscd_types::LiveEvent;

use crate::config::ServiceError;
use crate::wire::{put_event, read_event, JOURNAL_MAGIC};

/// An append-only journal of [`LiveEvent`]s.
#[derive(Debug)]
pub(crate) struct Journal {
    file: File,
    scratch: Vec<u8>,
}

impl Journal {
    /// Creates a fresh journal at `path` (truncating any existing file)
    /// and writes the header.
    pub(crate) fn create(path: &Path) -> Result<Self, ServiceError> {
        let mut file = File::create(path)?;
        file.write_all(JOURNAL_MAGIC)?;
        Ok(Self {
            file,
            scratch: Vec::new(),
        })
    }

    /// Opens an existing journal for appending (the header must already
    /// be present — use after [`Journal::read_all`] during recovery).
    pub(crate) fn open_append(path: &Path) -> Result<Self, ServiceError> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            file,
            scratch: Vec::new(),
        })
    }

    /// Appends `events` as one contiguous write.
    pub(crate) fn append(&mut self, events: &[LiveEvent]) -> Result<(), ServiceError> {
        self.scratch.clear();
        for ev in events {
            put_event(&mut self.scratch, ev);
        }
        self.file.write_all(&self.scratch)?;
        Ok(())
    }

    /// Reads every complete record of the journal at `path`. A truncated
    /// final record (a write cut short by a crash) is silently dropped;
    /// anything else malformed is an error. Returns an empty list if the
    /// file does not exist.
    pub(crate) fn read_all(path: &Path) -> Result<Vec<LiveEvent>, ServiceError> {
        let mut buf = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        if buf.len() < JOURNAL_MAGIC.len() || &buf[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC {
            return Err(ServiceError::CorruptFile("journal header"));
        }
        let mut r = SnapshotReader::new(&buf[JOURNAL_MAGIC.len()..]);
        let mut events = Vec::new();
        while !r.is_empty() {
            match read_event(&mut r) {
                Ok(ev) => events.push(ev),
                // A crash mid-write leaves a partial tail record; state
                // was never applied past it, so dropping it is correct.
                Err(SnapshotError::Truncated { .. }) => break,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscd_types::{PageId, ServerId, SimTime};

    fn events() -> Vec<LiveEvent> {
        vec![
            LiveEvent::Subscribe {
                page: PageId::new(1),
                server: ServerId::new(0),
                count: 4,
            },
            LiveEvent::Publish {
                time: SimTime::from_secs(1),
                page: PageId::new(1),
            },
            LiveEvent::Request {
                time: SimTime::from_secs(2),
                server: ServerId::new(0),
                page: PageId::new(1),
            },
        ]
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pscd-journal-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("journal.bin")
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp("roundtrip");
        let evs = events();
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&evs[..2]).unwrap();
            j.append(&evs[2..]).unwrap();
        }
        assert_eq!(Journal::read_all(&path).unwrap(), evs);
        // Reopen in append mode and extend.
        {
            let mut j = Journal::open_append(&path).unwrap();
            j.append(&evs[..1]).unwrap();
        }
        let all = Journal::read_all(&path).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], evs[0]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing").with_file_name("nope.bin");
        assert!(Journal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn truncated_tail_record_is_dropped() {
        let path = tmp("truncated");
        {
            let mut j = Journal::create(&path).unwrap();
            j.append(&events()).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let evs = Journal::read_all(&path).unwrap();
        assert_eq!(evs, events()[..2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_header_is_corrupt() {
        let path = tmp("badheader");
        std::fs::write(&path, b"NOTAMAGIC").unwrap();
        assert!(matches!(
            Journal::read_all(&path),
            Err(ServiceError::CorruptFile(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
