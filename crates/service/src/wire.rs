//! On-disk encodings: journal records and snapshot file sections.
//!
//! Everything rides on the canonical little-endian codec from
//! [`pscd_cache::snapshot`], so a byte string written by one process
//! decodes identically in another — the property the crash-recovery
//! tests depend on.

use pscd_cache::snapshot::{put_u16, put_u32, put_u64, put_u8};
use pscd_cache::{SnapshotError, SnapshotReader};
use pscd_types::{LiveEvent, PageId, ServerId, SimTime};

/// Journal file magic + format version.
pub(crate) const JOURNAL_MAGIC: &[u8; 8] = b"PSCDJRN1";
/// Snapshot file magic + format version.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"PSCDSNP1";

const TAG_SUBSCRIBE: u8 = 0;
const TAG_PUBLISH: u8 = 1;
const TAG_REQUEST: u8 = 2;

/// Appends one journal record.
pub(crate) fn put_event(out: &mut Vec<u8>, ev: &LiveEvent) {
    match *ev {
        LiveEvent::Subscribe {
            page,
            server,
            count,
        } => {
            put_u8(out, TAG_SUBSCRIBE);
            put_u32(out, page.index());
            put_u16(out, server.index());
            put_u32(out, count);
        }
        LiveEvent::Publish { time, page } => {
            put_u8(out, TAG_PUBLISH);
            put_u64(out, time.as_millis());
            put_u32(out, page.index());
        }
        LiveEvent::Request { time, server, page } => {
            put_u8(out, TAG_REQUEST);
            put_u64(out, time.as_millis());
            put_u16(out, server.index());
            put_u32(out, page.index());
        }
    }
}

/// Decodes one journal record.
pub(crate) fn read_event(r: &mut SnapshotReader<'_>) -> Result<LiveEvent, SnapshotError> {
    match r.read_u8()? {
        TAG_SUBSCRIBE => {
            let page = PageId::new(r.read_u32()?);
            let server = ServerId::new(r.read_u16()?);
            let count = r.read_u32()?;
            Ok(LiveEvent::Subscribe {
                page,
                server,
                count,
            })
        }
        TAG_PUBLISH => {
            let time = SimTime::from_millis(r.read_u64()?);
            let page = PageId::new(r.read_u32()?);
            Ok(LiveEvent::Publish { time, page })
        }
        TAG_REQUEST => {
            let time = SimTime::from_millis(r.read_u64()?);
            let server = ServerId::new(r.read_u16()?);
            let page = PageId::new(r.read_u32()?);
            Ok(LiveEvent::Request { time, server, page })
        }
        _ => Err(SnapshotError::Corrupt("unknown journal record tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let events = [
            LiveEvent::Subscribe {
                page: PageId::new(7),
                server: ServerId::new(3),
                count: 12,
            },
            LiveEvent::Publish {
                time: SimTime::from_millis(123_456),
                page: PageId::new(0),
            },
            LiveEvent::Request {
                time: SimTime::from_millis(999),
                server: ServerId::new(65_535),
                page: PageId::new(u32::MAX),
            },
        ];
        let mut buf = Vec::new();
        for ev in &events {
            put_event(&mut buf, ev);
        }
        let mut r = SnapshotReader::new(&buf);
        for ev in &events {
            assert_eq!(read_event(&mut r).unwrap(), *ev);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn bad_tag_is_corrupt() {
        let buf = [9u8];
        let mut r = SnapshotReader::new(&buf);
        assert!(matches!(read_event(&mut r), Err(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn truncated_record_is_truncated() {
        let mut buf = Vec::new();
        put_event(
            &mut buf,
            &LiveEvent::Publish {
                time: SimTime::from_millis(1),
                page: PageId::new(2),
            },
        );
        buf.pop();
        let mut r = SnapshotReader::new(&buf);
        assert!(matches!(
            read_event(&mut r),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}
