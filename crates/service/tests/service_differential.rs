//! Service-vs-batch differential suite: the live service, fed the same
//! events one at a time through its ingestion front door, must end in
//! **bit-identical** state to the batch replay — the same `SimResult`
//! (hits, requests, traffic, hourly buckets, per-proxy stats) and the
//! same serialized per-proxy cache contents — for every strategy the
//! paper evaluates, at any worker count and batch size.
//!
//! The second half is the crash-recovery property: a service killed at a
//! proptest-chosen journal offset and rebuilt via
//! [`ServiceCore::recover`] must converge to the *uncrashed* run (and
//! hence, transitively, to the batch replay).

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use pscd_broker::PushScheme;
use pscd_core::StrategyKind;
use pscd_service::{BrokerService, ServiceConfig, ServiceCore, ServiceOutcome};
use pscd_sim::{CompiledTrace, SimOptions, SimResult, Simulation};
use pscd_topology::FetchCosts;
use pscd_types::{LiveEvent, PageMeta, ServerId};
use pscd_workload::{Workload, WorkloadConfig};

/// Every strategy the paper evaluates (§5), plus the classic baselines.
fn all_strategies() -> [StrategyKind; 12] {
    [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ]
}

struct Fixture {
    trace: CompiledTrace,
    costs: FetchCosts,
    events: Vec<LiveEvent>,
    pages: Arc<[PageMeta]>,
    subs: pscd_types::SubscriptionTable,
}

/// The shared workload, compiled once: the batch replay consumes the
/// compiled trace, the service consumes the *same* facts as a flat event
/// stream (subscriptions first, then the publish/request timeline).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).unwrap();
        let subs = w.subscriptions(1.0).unwrap();
        let costs = FetchCosts::uniform(w.server_count());
        let events = w.live_events(&subs);
        let trace = CompiledTrace::compile(&w, &subs).unwrap();
        let pages: Arc<[PageMeta]> = trace.pages().iter().copied().collect();
        Fixture {
            trace,
            costs,
            events,
            pages,
            subs,
        }
    })
}

const CAPACITY_FRACTION: f64 = 0.05;

/// The batch reference: a sequential compiled replay, with every proxy's
/// cache state serialized just before the result is finalized.
fn batch_run(kind: StrategyKind, invalidate: bool) -> (SimResult, Vec<Vec<u8>>) {
    let f = fixture();
    let mut options = SimOptions::at_capacity(kind, CAPACITY_FRACTION);
    if invalidate {
        options = options.with_invalidation();
    }
    let mut sim = Simulation::from_compiled(&f.trace, &f.costs, &options).unwrap();
    while sim.step().is_some() {}
    let engine = sim.engine();
    let proxies = (0..f.trace.server_count())
        .map(|s| {
            let mut blob = Vec::new();
            engine
                .strategy_impl(ServerId::new(s))
                .encode_snapshot(&mut blob)
                .unwrap();
            blob
        })
        .collect();
    (sim.finish(), proxies)
}

fn service_config(kind: StrategyKind, invalidate: bool) -> ServiceConfig {
    let f = fixture();
    let mut config = ServiceConfig::new(
        kind,
        f.trace.capacities(CAPACITY_FRACTION),
        f.costs.iter().collect(),
        PushScheme::Always,
        Arc::clone(&f.pages),
        f.trace.hours(),
    );
    if invalidate {
        config = config.with_invalidation();
    }
    config
}

fn assert_equivalent(kind: StrategyKind, outcome: &ServiceOutcome, invalidate: bool, label: &str) {
    let (reference, proxies) = batch_run(kind, invalidate);
    assert_eq!(
        outcome.result, reference,
        "service accounting diverged from batch replay for {} ({label})",
        reference.strategy
    );
    assert_eq!(outcome.result.hourly, reference.hourly);
    assert_eq!(
        outcome.proxies, proxies,
        "per-proxy cache state diverged from batch replay for {} ({label})",
        reference.strategy
    );
}

/// Guards against a vacuous differential: the shared stream must be
/// substantial and the reference run must actually exercise hits,
/// misses and pushes.
#[test]
fn fixture_is_not_degenerate() {
    let f = fixture();
    assert!(f.events.len() > 1_000, "only {} events", f.events.len());
    assert!(f
        .events
        .iter()
        .any(|ev| matches!(ev, LiveEvent::Publish { .. })));
    let (reference, _) = batch_run(StrategyKind::Sg2 { beta: 2.0 }, false);
    assert!(reference.requests > 0);
    assert!(reference.hits > 0);
    assert!(reference.hits < reference.requests, "no misses exercised");
    assert!(reference.traffic.pushed_pages > 0);
}

#[test]
fn every_strategy_is_bit_identical_inline() {
    let f = fixture();
    for kind in all_strategies() {
        let mut core = ServiceCore::new(service_config(kind, false)).unwrap();
        core.ingest_all(&f.events).unwrap();
        let outcome = core.shutdown().unwrap();
        assert_equivalent(kind, &outcome, false, "workers=1");
    }
}

#[test]
fn every_strategy_is_bit_identical_threaded() {
    let f = fixture();
    for kind in all_strategies() {
        let mut core = ServiceCore::new(
            service_config(kind, false)
                .with_workers(3)
                .with_batch_size(64),
        )
        .unwrap();
        // Uneven submission chunks exercise the batching boundaries.
        for chunk in f.events.chunks(101) {
            core.ingest_all(chunk).unwrap();
        }
        let outcome = core.shutdown().unwrap();
        assert_equivalent(kind, &outcome, false, "workers=3");
    }
}

#[test]
fn invalidation_is_bit_identical() {
    let f = fixture();
    for kind in [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        for workers in [1usize, 4] {
            let mut core =
                ServiceCore::new(service_config(kind, true).with_workers(workers)).unwrap();
            core.ingest_all(&f.events).unwrap();
            let outcome = core.shutdown().unwrap();
            assert_equivalent(kind, &outcome, true, "invalidation");
        }
    }
}

#[test]
fn single_event_ingest_matches_batched_ingest() {
    let f = fixture();
    let kind = StrategyKind::Sg2 { beta: 2.0 };
    let mut core = ServiceCore::new(service_config(kind, false).with_batch_size(1)).unwrap();
    for ev in &f.events {
        core.ingest(*ev).unwrap();
    }
    let outcome = core.shutdown().unwrap();
    assert_equivalent(kind, &outcome, false, "batch_size=1");
}

#[test]
fn channel_front_door_is_bit_identical() {
    let f = fixture();
    let kind = StrategyKind::GdStar { beta: 2.0 };
    let service = BrokerService::start(service_config(kind, false).with_workers(2), false).unwrap();
    let handle = service.handle();
    for chunk in f.events.chunks(157) {
        handle.submit_all(chunk.to_vec()).unwrap();
    }
    handle.flush().unwrap();
    let outcome = service.shutdown().unwrap();
    assert_equivalent(kind, &outcome, false, "channel API");
}

#[test]
fn invalid_events_are_rejected_without_side_effects() {
    let f = fixture();
    let kind = StrategyKind::Lru;
    let mut core = ServiceCore::new(service_config(kind, false)).unwrap();
    let bad = LiveEvent::Request {
        time: pscd_types::SimTime::ZERO,
        server: ServerId::new(f.trace.server_count()),
        page: pscd_types::PageId::new(0),
    };
    // A slice with a bad event is rejected whole; the good prefix must
    // not have been applied.
    assert!(core.ingest_all(&[f.events[0], bad]).is_err());
    assert_eq!(core.events_applied(), 0);
    core.ingest_all(&f.events).unwrap();
    let outcome = core.shutdown().unwrap();
    assert_equivalent(kind, &outcome, false, "after rejected ingest");
}

/// Content mode: the same service with a frozen content matcher attached
/// (encoding each count-table row as `count` copies of an exact-match
/// `page = <id>` subscription) must resolve every publish and request
/// through the frozen kernel to the **same** outcome as count-row mode.
#[test]
fn content_mode_resolution_is_bit_identical() {
    let f = fixture();
    for kind in [
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::dc_lap(2.0),
    ] {
        let mut core = ServiceCore::new(service_config(kind, false)).unwrap();
        let matcher = pscd_workload::matcher_from_table(&f.subs, f.trace.server_count());
        core.attach_matcher(matcher).unwrap();
        assert!(core.matcher_frozen(), "attach must freeze the matcher");
        core.ingest_all(&f.events).unwrap();
        assert!(core.matcher_frozen(), "resolution must leave it frozen");
        let outcome = core.shutdown().unwrap();
        assert_equivalent(kind, &outcome, false, "content mode");
    }
}

/// Dynamic churn through the content front door: subscribing thaws the
/// frozen index, the next resolve refreezes it lazily, and a
/// subscribe/unsubscribe round trip leaves the outcome bit-identical.
#[test]
fn content_churn_refreezes_lazily_and_stays_identical() {
    use pscd_matching::{Predicate, Subscription, Value};

    let f = fixture();
    let kind = StrategyKind::Sg2 { beta: 2.0 };
    let mut core = ServiceCore::new(service_config(kind, false)).unwrap();
    core.attach_matcher(pscd_workload::matcher_from_table(
        &f.subs,
        f.trace.server_count(),
    ))
    .unwrap();

    let mid = f.events.len() / 2;
    core.ingest_all(&f.events[..mid]).unwrap();

    // A predicate no registered page satisfies: page ids are dense from
    // zero, so `page = -1` never matches and the outcome is unaffected —
    // but the index must still thaw, rebuild, and refreeze around it.
    let ghost = Subscription::new(vec![Predicate::eq("page", Value::int(-1))]);
    let id = core.subscribe_content(ServerId::new(0), ghost).unwrap();
    assert!(!core.matcher_frozen(), "subscribe must thaw the index");
    core.ingest_all(&f.events[mid..mid + 1]).unwrap();
    assert!(core.matcher_frozen(), "next resolve must refreeze lazily");

    core.unsubscribe_content(ServerId::new(0), id).unwrap();
    assert!(!core.matcher_frozen(), "unsubscribe must thaw the index");
    core.ingest_all(&f.events[mid + 1..]).unwrap();
    assert!(core.matcher_frozen());

    let outcome = core.shutdown().unwrap();
    assert_equivalent(kind, &outcome, false, "content churn");
}

/// Misconfigured matchers are rejected up front, and the content
/// subscribe front door requires an attached matcher.
#[test]
fn content_mode_rejects_mismatched_matchers() {
    use pscd_matching::{EngineMatcher, Predicate, Subscription, Value};

    let f = fixture();
    let kind = StrategyKind::Lru;
    let mut core = ServiceCore::new(service_config(kind, false)).unwrap();
    // Wrong fleet size and an empty page universe.
    assert!(core.attach_matcher(EngineMatcher::new(1)).is_err());
    // No matcher attached: the content front door is closed.
    let sub = Subscription::new(vec![Predicate::eq("page", Value::int(0))]);
    assert!(core.subscribe_content(ServerId::new(0), sub).is_err());
    core.ingest_all(&f.events).unwrap();
    let outcome = core.shutdown().unwrap();
    assert_equivalent(kind, &outcome, false, "after rejected matcher");
}

/// A convergence-relevant subset of the lineup: one representative per
/// state shape (list-backed, heap-backed, subscription-aware, dual, and
/// the adaptive pair), keeping the proptest affordable.
fn recovery_strategies() -> [StrategyKind; 6] {
    [
        StrategyKind::Lru,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Dm { beta: 2.0 },
        StrategyKind::DcAp { beta: 2.0 },
        StrategyKind::dc_fp(2.0),
    ]
}

fn temp_service_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pscd-service-recovery-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Kill-and-recover: ingest a prefix of the stream, crash (drop the
    /// core without flushing or snapshotting), recover from the journal +
    /// last snapshot, ingest the rest — the final state must be
    /// bit-identical to the batch replay of the whole stream.
    #[test]
    fn recovery_converges_to_the_uncrashed_run(
        strategy_idx in 0usize..6,
        kill_at in 0.0f64..1.0,
        snapshot_every in proptest::sample::select(vec![0u64, 64, 256, 1024]),
        chunk in proptest::sample::select(vec![1usize, 7, 50]),
    ) {
        let f = fixture();
        let kind = recovery_strategies()[strategy_idx];
        let k = (kill_at * f.events.len() as f64) as usize;
        let dir = temp_service_dir(&format!("{strategy_idx}-{snapshot_every}-{chunk}"));
        let config = service_config(kind, false).with_persistence(dir.clone(), snapshot_every);

        let mut core = ServiceCore::new(config.clone()).unwrap();
        for c in f.events[..k].chunks(chunk) {
            core.ingest_all(c).unwrap();
        }
        prop_assert_eq!(core.events_applied(), k as u64);
        // Crash: drop without flush or snapshot. Buffered (undispatched)
        // events are in the journal, so recovery replays them.
        drop(core);

        let mut recovered = ServiceCore::recover(config).unwrap();
        prop_assert_eq!(recovered.events_applied(), k as u64);
        recovered.ingest_all(&f.events[k..]).unwrap();
        let outcome = recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let (reference, proxies) = batch_run(kind, false);
        prop_assert_eq!(&outcome.result, &reference);
        prop_assert_eq!(&outcome.proxies, &proxies);
    }

    /// The channel front door's crash path: `kill` drops the core
    /// mid-stream; a recovered service finishes the run identically.
    #[test]
    fn killed_service_recovers_through_the_front_door(
        kill_at in 0.1f64..0.9,
    ) {
        let f = fixture();
        let kind = StrategyKind::Sg2 { beta: 2.0 };
        let k = (kill_at * f.events.len() as f64) as usize;
        let dir = temp_service_dir("front-door");
        let config = service_config(kind, false).with_persistence(dir.clone(), 512);

        let service = BrokerService::start(config.clone(), false).unwrap();
        let handle = service.handle();
        handle.submit_all(f.events[..k].to_vec()).unwrap();
        service.kill();

        let recovered = BrokerService::start(config, true).unwrap();
        recovered.handle().submit_all(f.events[k..].to_vec()).unwrap();
        let outcome = recovered.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let (reference, proxies) = batch_run(kind, false);
        prop_assert_eq!(&outcome.result, &reference);
        prop_assert_eq!(&outcome.proxies, &proxies);
    }
}
