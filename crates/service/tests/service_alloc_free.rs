//! Proves the service's inline ingest path is allocation-free in steady
//! state: once the subscription rows exist and the batch buffers are
//! warm, publish/request ingestion — resolve, batch, dispatch, apply —
//! performs no heap allocation. (Threaded fleets ship `Arc` batches and
//! journaled services buffer writes; the claim is specifically about the
//! in-memory `workers = 1` hot path, the service twin of the replay's
//! `alloc_free` suite.)
//!
//! Everything lives in ONE `#[test]` so no harness bookkeeping (test
//! threads, output capture) runs — and allocates — inside a measurement
//! window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pscd_broker::PushScheme;
use pscd_core::StrategyKind;
use pscd_service::{ServiceConfig, ServiceCore};
use pscd_sim::CompiledTrace;
use pscd_topology::FetchCosts;
use pscd_types::{LiveEvent, PageMeta};
use pscd_workload::{Workload, WorkloadConfig};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_ingest_does_not_allocate() {
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.01)).unwrap();
    let subs = w.subscriptions(1.0).unwrap();
    let events = w.live_events(&subs);
    let trace = CompiledTrace::compile(&w, &subs).unwrap();
    let pages: Arc<[PageMeta]> = trace.pages().iter().copied().collect();
    let costs: Vec<f64> = FetchCosts::uniform(w.server_count()).iter().collect();
    assert!(events.len() > 1_000, "stream too small to be meaningful");
    // Subscription churn legitimately grows the rows; warm past every
    // subscribe plus a quarter of the traffic so the batch buffers and
    // every engine's lazy structures have seen real load.
    let first_traffic = events
        .iter()
        .position(|ev| !matches!(ev, LiveEvent::Subscribe { .. }))
        .unwrap();
    let warm_up = first_traffic + (events.len() - first_traffic) / 4;

    // Same scope as the replay's suite: the strictly allocation-free
    // strategies (DM and DC-AP/DC-LAP are amortized, DESIGN.md §12).
    let strategies = [
        StrategyKind::Lru,
        StrategyKind::Gds,
        StrategyKind::LfuDa,
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg1 { beta: 2.0 },
        StrategyKind::Sg2 { beta: 2.0 },
        StrategyKind::Sr,
        StrategyKind::dc_fp(2.0),
    ];
    for kind in strategies {
        let config = ServiceConfig::new(
            kind,
            trace.capacities(0.05),
            costs.clone(),
            PushScheme::Always,
            Arc::clone(&pages),
            trace.hours(),
        )
        .with_invalidation();
        let mut core = ServiceCore::new(config).unwrap();
        core.ingest_all(&events[..warm_up]).unwrap();
        let before = allocations();
        core.ingest_all(&events[warm_up..]).unwrap();
        core.flush().unwrap();
        let after = allocations();
        assert_eq!(
            after - before,
            0,
            "{}: {} allocation(s) over {} steady-state events",
            kind.name(),
            after - before,
            events.len() - warm_up,
        );
        let outcome = core.shutdown().unwrap();
        assert!(outcome.result.requests > 0);
    }
}
