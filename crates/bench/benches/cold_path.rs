//! Cold-path benchmarks: what workload generation, subscription
//! synthesis, and trace compilation cost serially vs on the worker pool,
//! and what the batched match kernel buys over the allocating wrapper.
//!
//! Three workload tiers (1%, 5%, 20% of the paper's trace) price the
//! `generate`/`subscriptions`/`compile` phases at `threads = 1` and
//! `threads = 0` (auto) — the two ends of the `repro --threads` knob,
//! proven bit-identical by the `cold_differential` suite, so the gap
//! here is pure speed. The matching tier drives a one-million
//! subscription index — far past any workload tier, sized to make the
//! per-call allocation of the legacy wrapper visible against the
//! scratch-reusing kernel. EXPERIMENTS.md reports these numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_matching::{
    Content, FrozenIndex, MatchScratch, Predicate, Subscription, SubscriptionIndex, SymbolTable,
    Value,
};
use pscd_sim::CompiledTrace;
use pscd_workload::{Workload, WorkloadConfig};

/// The three workload tiers: (label, scale of the paper's NEWS trace).
const TIERS: [(&str, f64); 3] = [("1pct", 0.01), ("5pct", 0.05), ("20pct", 0.20)];

fn generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_generate");
    group.sample_size(10);
    for (label, scale) in TIERS {
        let config = WorkloadConfig::news_scaled(scale);
        for (arm, threads) in [("t1", 1usize), ("auto", 0)] {
            group.bench_function(&format!("news_{label}_{arm}"), |b| {
                b.iter(|| {
                    Workload::generate_threads(&config, threads)
                        .expect("generates")
                        .pages()
                        .len()
                })
            });
        }
    }
    group.finish();
}

fn subscriptions(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_subscriptions");
    group.sample_size(10);
    for (label, scale) in TIERS {
        let w = Workload::generate(&WorkloadConfig::news_scaled(scale)).expect("generates");
        for (arm, threads) in [("t1", 1usize), ("auto", 0)] {
            group.bench_function(&format!("news_{label}_{arm}"), |b| {
                b.iter(|| {
                    w.subscriptions_threads(1.0, threads)
                        .expect("valid quality")
                        .page_count()
                })
            });
        }
    }
    group.finish();
}

fn compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("cold_compile");
    group.sample_size(10);
    for (label, scale) in TIERS {
        let w = Workload::generate(&WorkloadConfig::news_scaled(scale)).expect("generates");
        let subs = w.subscriptions(1.0).expect("valid quality");
        for (arm, threads) in [("t1", 1usize), ("auto", 0)] {
            group.bench_function(&format!("news_{label}_{arm}"), |b| {
                b.iter(|| {
                    CompiledTrace::compile_threads(&w, &subs, threads)
                        .expect("compiles")
                        .len()
                })
            });
        }
    }
    group.finish();
}

/// One million single-predicate equality subscriptions spread over 2,000
/// distinct categories (~500 matches per content), plus a tag layer —
/// the ISSUE's ≥1M-subscription matching tier.
fn million_sub_index() -> (SubscriptionIndex, Vec<Content>) {
    const SUBS: usize = 1_000_000;
    const CATEGORIES: usize = 2_000;
    let categories: Vec<String> = (0..CATEGORIES).map(|i| format!("cat{i}")).collect();
    let mut index = SubscriptionIndex::new();
    for i in 0..SUBS {
        let cat = &categories[i % CATEGORIES];
        let sub = if i % 10 == 0 {
            Subscription::new(vec![
                Predicate::eq("category", Value::str(cat)),
                Predicate::contains("tags", "breaking"),
            ])
        } else {
            Subscription::new(vec![Predicate::eq("category", Value::str(cat))])
        };
        index.insert(sub);
    }
    let contents = (0..64usize)
        .map(|i| {
            Content::new()
                .with("category", Value::str(&categories[(i * 31) % CATEGORIES]))
                .with(
                    "tags",
                    Value::tags(if i % 2 == 0 { ["breaking"] } else { ["local"] }),
                )
        })
        .collect();
    (index, contents)
}

fn matching_1m(c: &mut Criterion) {
    let (index, contents) = million_sub_index();
    let mut group = c.benchmark_group("cold_match_1m_subs");
    group.sample_size(20);
    // The batched kernel: caller-owned scratch and output, zero
    // steady-state allocations (asserted by the alloc-free test).
    group.bench_function("matches_into_scratch", |b| {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for content in &contents {
                index.matches_into(content, &mut scratch, &mut out);
                total += out.len();
            }
            total
        })
    });
    // The legacy wrapper: same kernel, but a fresh scratch and a fresh
    // result vector per call.
    group.bench_function("matches_legacy_alloc", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for content in &contents {
                total += index.matches(content).len();
            }
            total
        })
    });
    group.bench_function("match_count_scratch", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut total = 0usize;
            for content in &contents {
                total += index.match_count_scratch(content, &mut scratch);
            }
            total
        })
    });
    // The frozen kernel: same index compiled to interned symbols, CSR
    // buckets, and epoch-bitset counters (compile cost excluded here —
    // `match_kernel.freeze_build` in the pinned suite prices it).
    let mut symbols = SymbolTable::new();
    let frozen = FrozenIndex::freeze(&index, &mut symbols);
    group.bench_function("matches_into_frozen", |b| {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for content in &contents {
                frozen.matches_into(&symbols, content, &mut scratch, &mut out);
                total += out.len();
            }
            total
        })
    });
    group.bench_function("match_count_frozen", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut total = 0usize;
            for content in &contents {
                total += frozen.match_count_scratch(&symbols, content, &mut scratch);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, generate, subscriptions, compile, matching_1m);
criterion_main!(benches);
