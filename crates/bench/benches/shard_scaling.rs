//! Shard-scaling microbenchmark: one simulation run at 1 shard vs N
//! shards. The sharded runner is proven bit-identical by the
//! differential suite (`crates/sim/tests/differential.rs`); this bench
//! measures what that parallelism buys in wall-clock. On a single-core
//! box the `threads_*` numbers also expose the sharding overhead
//! (partitioning + merge) relative to `threads_1`.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_core::StrategyKind;
use pscd_sim::{simulate, SimOptions};
use pscd_topology::FetchCosts;
use pscd_workload::{Workload, WorkloadConfig};

fn shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.02)).expect("generates");
    let subs = w.subscriptions(1.0).expect("valid quality");
    let costs = FetchCosts::uniform(w.server_count());
    let base = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    // 0 = auto (machine parallelism); explicit counts show the curve.
    for threads in [1usize, 2, 4, 0] {
        let name = if threads == 0 {
            "threads_auto".to_owned()
        } else {
            format!("threads_{threads}")
        };
        let options = base.with_threads(threads);
        group.bench_function(&name, |b| {
            b.iter(|| simulate(&w, &subs, &costs, &options).expect("runs").hits)
        });
    }
    group.finish();
}

criterion_group!(benches, shard_scaling);
criterion_main!(benches);
