//! Regenerates Figure 6 (hourly hit ratio over 7 days) and benchmarks one
//! full 168-hour simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_core::StrategyKind;
use pscd_experiments::{Fig6, Trace};
use pscd_sim::{simulate, SimOptions};

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let fig = Fig6::run(&ctx).expect("figure 6 runs");
    println!("\n{fig}");
    let subs = ctx.subscriptions(Trace::News, 1.0).expect("subscriptions");
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("sg2_full_week", |b| {
        b.iter(|| {
            simulate(
                ctx.workload(Trace::News),
                &subs,
                ctx.costs(),
                &SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05),
            )
            .expect("simulation runs")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
