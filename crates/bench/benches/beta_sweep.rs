//! Regenerates the §5.1 β tuning sweep (126 simulations) and benchmarks
//! it end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::BetaSweep;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let sweep = BetaSweep::run(&ctx).expect("β sweep runs");
    println!("\n{sweep}");
    let mut group = c.benchmark_group("beta_sweep");
    group.sample_size(10);
    group.bench_function("full_sweep", |b| {
        b.iter(|| BetaSweep::run(&ctx).expect("β sweep runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
