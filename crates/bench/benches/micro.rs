//! Microbenchmarks of the substrates: cache replacement throughput,
//! content-based matching, workload sampling, topology generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pscd_cache::{CachePolicy, GdStar, PageRef};
use pscd_core::StrategyKind;
use pscd_matching::{Content, Predicate, Subscription, SubscriptionIndex, Value};
use pscd_obs::{SharedObserver, StatsObserver};
use pscd_sim::{simulate, simulate_observed, SimOptions};
use pscd_topology::{FetchCosts, TopologyBuilder};
use pscd_types::{Bytes, PageId, ServerId};
use pscd_workload::{generate_publishing, PublishingConfig, Workload, WorkloadConfig, Zipf};

fn page_ref(i: u32) -> PageRef {
    PageRef::new(
        PageId::new(i),
        Bytes::new(512 + (i as u64 * 197) % 8192),
        1.0 + (i % 7) as f64,
    )
}

fn cache_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    // GD* under a skewed access stream (10k accesses, 1k pages).
    let zipf = Zipf::new(1_000, 1.0).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(1);
    let accesses: Vec<u32> = (0..10_000).map(|_| zipf.sample(&mut rng) as u32).collect();
    group.bench_function("gdstar_10k_accesses", |b| {
        b.iter_batched(
            || GdStar::new(Bytes::from_kib(256), 2.0),
            |mut cache| {
                let mut evicted = Vec::new();
                for &i in &accesses {
                    let _ = cache.access(&page_ref(i), &mut evicted);
                }
                cache.len()
            },
            BatchSize::SmallInput,
        )
    });
    // The paper's richest strategy under mixed push/access load.
    group.bench_function("dclap_10k_mixed", |b| {
        b.iter_batched(
            || StrategyKind::dc_lap(2.0).build(Bytes::from_kib(256)),
            |mut s| {
                let mut evicted = Vec::new();
                for (k, &i) in accesses.iter().enumerate() {
                    if k % 3 == 0 {
                        let _ = s.on_push(&page_ref(i), (i % 13) + 1, &mut evicted);
                    } else {
                        let _ = s.on_access(&page_ref(i), (i % 13) + 1, &mut evicted);
                    }
                }
                s.len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Observer overhead: the same work with the zero-cost [`NullObserver`]
/// default (fire sites compiled out via `O::ENABLED`), with an attached
/// [`StatsObserver`], and end-to-end through the simulation loop. The
/// `*_null` numbers must stay within noise (<2%) of the plain ones.
fn observer_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer");
    let zipf = Zipf::new(1_000, 1.0).expect("valid zipf");
    let mut rng = StdRng::seed_from_u64(1);
    let accesses: Vec<u32> = (0..10_000).map(|_| zipf.sample(&mut rng) as u32).collect();
    let run_mixed = |s: &mut Box<dyn pscd_core::Strategy>| {
        let mut evicted = Vec::new();
        for (k, &i) in accesses.iter().enumerate() {
            if k % 3 == 0 {
                let _ = s.on_push(&page_ref(i), (i % 13) + 1, &mut evicted);
            } else {
                let _ = s.on_access(&page_ref(i), (i % 13) + 1, &mut evicted);
            }
        }
        s.len()
    };
    group.bench_function("dclap_10k_mixed_null", |b| {
        b.iter_batched(
            || StrategyKind::dc_lap(2.0).build(Bytes::from_kib(256)),
            |mut s| run_mixed(&mut s),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dclap_10k_mixed_stats", |b| {
        b.iter_batched(
            || {
                let obs = SharedObserver::new(StatsObserver::new());
                let s = StrategyKind::dc_lap(2.0)
                    .build_observed(Bytes::from_kib(256), obs.handle(ServerId::new(0)));
                (s, obs)
            },
            |(mut s, _obs)| run_mixed(&mut s),
            BatchSize::SmallInput,
        )
    });

    // End-to-end simulation loop, tiny trace.
    group.sample_size(20);
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.004)).expect("generates");
    let subs = w.subscriptions(1.0).expect("valid quality");
    let costs = FetchCosts::uniform(w.server_count());
    let options = SimOptions::at_capacity(StrategyKind::Sg2 { beta: 2.0 }, 0.05);
    group.bench_function("sim_loop_null", |b| {
        b.iter(|| simulate(&w, &subs, &costs, &options).expect("runs").hits)
    });
    group.bench_function("sim_loop_stats", |b| {
        b.iter(|| {
            let obs = SharedObserver::new(StatsObserver::new());
            simulate_observed(&w, &subs, &costs, &options, obs)
                .expect("runs")
                .hits
        })
    });
    group.finish();
}

fn matching_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    // 10k subscriptions over 20 categories + range predicates.
    let mut index = SubscriptionIndex::new();
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..10_000u32 {
        let mut preds = vec![Predicate::eq(
            "category",
            Value::str(format!("cat{}", i % 20)),
        )];
        if i % 3 == 0 {
            preds.push(Predicate::ge("bytes", (i % 50) as i64 * 100));
        }
        index.insert(Subscription::new(preds));
    }
    let events: Vec<Content> = (0..512)
        .map(|_| {
            Content::new()
                .with(
                    "category",
                    Value::str(format!("cat{}", rng.random_range(0..20u32))),
                )
                .with("bytes", Value::int(rng.random_range(0..5_000)))
        })
        .collect();
    group.bench_function("counting_index_512_events_10k_subs", |b| {
        b.iter(|| events.iter().map(|e| index.match_count(e)).sum::<usize>())
    });
    group.finish();
}

fn generation_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    group.bench_function("publishing_stream_10pct", |b| {
        b.iter(|| generate_publishing(&PublishingConfig::scaled(0.1), 7).expect("generates"))
    });
    group.bench_function("waxman_topology_101_nodes", |b| {
        b.iter(|| TopologyBuilder::new(101).seed(7).build().expect("builds"))
    });
    group.finish();
}

criterion_group!(
    benches,
    cache_benches,
    observer_benches,
    matching_benches,
    generation_benches
);
criterion_main!(benches);
