//! Regenerates Figure 4 (overall hit ratios, SQ = 1) and benchmarks the
//! grid behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::Fig4;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let fig = Fig4::run(&ctx).expect("figure 4 runs");
    println!("\n{fig}");
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("overall_grid", |b| {
        b.iter(|| Fig4::run(&ctx).expect("figure 4 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
