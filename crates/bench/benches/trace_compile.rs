//! Compiled-trace benchmarks: what one compilation costs, and what
//! compile-once-replay-N buys a grid over recompiling per cell.
//!
//! `trace_compile` prices [`CompiledTrace::compile`] itself — the one-time
//! cost a grid pays per workload. `grid_reuse` replays the same N-cell
//! strategy × capacity grid twice: once against a shared pre-compiled
//! trace (`compiled_once`, the `run_grid` path since the compiled-trace
//! refactor) and once through the convenience wrapper that re-derives the
//! timeline, fan-outs and lineage per cell (`cold_per_cell`, the old
//! behavior). The gap between them is the refactor's per-cell win, and is
//! what EXPERIMENTS.md reports.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_core::StrategyKind;
use pscd_sim::{simulate, simulate_compiled, CompiledTrace, SimOptions};
use pscd_topology::FetchCosts;
use pscd_workload::{Workload, WorkloadConfig};

/// The grid both arms replay: 3 strategies × 2 capacities = 6 cells.
fn grid_cells() -> Vec<SimOptions> {
    let mut cells = Vec::new();
    for kind in [
        StrategyKind::GdStar { beta: 2.0 },
        StrategyKind::Sub,
        StrategyKind::Sg2 { beta: 2.0 },
    ] {
        for capacity in [0.01, 0.05] {
            cells.push(SimOptions::at_capacity(kind, capacity));
        }
    }
    cells
}

fn trace_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_compile");
    group.sample_size(20);
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.02)).expect("generates");
    let subs = w.subscriptions(1.0).expect("valid quality");
    group.bench_function("compile_news_2pct", |b| {
        b.iter(|| CompiledTrace::compile(&w, &subs).expect("compiles").len())
    });
    group.finish();
}

fn grid_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_reuse");
    group.sample_size(10);
    let w = Workload::generate(&WorkloadConfig::news_scaled(0.02)).expect("generates");
    let subs = w.subscriptions(1.0).expect("valid quality");
    let costs = FetchCosts::uniform(w.server_count());
    let cells = grid_cells();
    let trace = CompiledTrace::compile(&w, &subs).expect("compiles");
    group.bench_function("compiled_once_6_cells", |b| {
        b.iter(|| {
            cells
                .iter()
                .map(|opt| simulate_compiled(&trace, &costs, opt).expect("runs").hits)
                .sum::<u64>()
        })
    });
    group.bench_function("cold_per_cell_6_cells", |b| {
        b.iter(|| {
            cells
                .iter()
                .map(|opt| simulate(&w, &subs, &costs, opt).expect("runs").hits)
                .sum::<u64>()
        })
    });
    group.finish();
}

criterion_group!(benches, trace_compile, grid_reuse);
criterion_main!(benches);
