//! Regenerates Figure 3 (Dual-Methods vs Dual-Caches hit ratios) and
//! benchmarks the grid behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::Fig3;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let fig = Fig3::run(&ctx).expect("figure 3 runs");
    println!("\n{fig}");
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.bench_function("dual_family_grid", |b| {
        b.iter(|| Fig3::run(&ctx).expect("figure 3 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
