//! Regenerates Table 2 (relative improvement over GD* at 5% capacity) and
//! benchmarks the grid behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::Table2;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let table = Table2::run(&ctx).expect("table 2 runs");
    println!("\n{table}");
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("improvement_grid", |b| {
        b.iter(|| Table2::run(&ctx).expect("table 2 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
