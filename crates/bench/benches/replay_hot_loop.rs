//! Replay hot-loop microbenchmark: dense, enum-dispatched, allocation-free
//! replay (the production `simulate_compiled` path since the dense-state
//! refactor) against the pre-refactor state representation — sparse
//! hash-map tables behind `Box<dyn Strategy>` with a fresh record `Vec`
//! per publish — on the same compiled trace.
//!
//! Both sides replay identical events and produce identical hit counts
//! (the differential suite proves bit-identity); the only difference is
//! state layout and dispatch, so the per-event gap is the refactor's
//! payoff. Two paper-relevant strategies at two trace scales:
//! SG2 (engine-based, the headline strategy) and DC-LAP (heap-based, the
//! adaptive dual cache). One iteration is one full replay and the group
//! name carries the event count, so ns/event = reported mean / events;
//! EXPERIMENTS.md records the ns/event numbers.
//!
//! `PSCD_BENCH_SCALE` overrides the *small* trace's workload scale
//! (default 0.05 ≈ 11k events); the large trace is always 10× that.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_broker::DeliveryEngine;
use pscd_core::{Strategy, StrategyKind};
use pscd_sim::trace::{CompiledEventKind, CompiledTrace};
use pscd_sim::{simulate_compiled, SimOptions};
use pscd_topology::FetchCosts;
use pscd_types::ServerId;
use pscd_workload::{Workload, WorkloadConfig};

/// The pre-refactor replay shape: sparse `Box<dyn Strategy>` proxies and
/// per-publish record allocation, driven over the same compiled trace.
fn sparse_dyn_replay(trace: &CompiledTrace, costs: &FetchCosts, options: &SimOptions) -> u64 {
    let capacities = trace.capacities(options.capacity_fraction);
    let strategies: Vec<Box<dyn Strategy>> = (0..trace.server_count())
        .map(|s| options.strategy.build(capacities[s as usize]))
        .collect();
    let cost_vec = (0..trace.server_count())
        .map(|s| costs.cost(ServerId::new(s)))
        .collect();
    let mut engine = DeliveryEngine::new(strategies, cost_vec, options.scheme).expect("lengths");
    let mut hits = 0u64;
    for ev in trace.events() {
        match ev.kind {
            CompiledEventKind::Publish { ordinal, .. } => {
                let records = engine.publish(trace.page(ev.page), trace.matched(ordinal));
                criterion::black_box(records.len());
            }
            CompiledEventKind::Request { server, subs } => {
                if engine
                    .request_with_subs(server, trace.page(ev.page), subs)
                    .expect("in range")
                    .hit
                {
                    hits += 1;
                }
            }
        }
    }
    hits
}

fn replay_hot_loop(c: &mut Criterion) {
    let small: f64 = std::env::var("PSCD_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    for scale in [small, small * 10.0] {
        let w = Workload::generate(&WorkloadConfig::news_scaled(scale)).expect("generates");
        let subs = w.subscriptions(1.0).expect("valid quality");
        let costs = FetchCosts::uniform(w.server_count());
        let trace = CompiledTrace::compile(&w, &subs).expect("compiles");
        let events = trace.len() as u64;
        let mut group = c.benchmark_group(&format!("replay_hot_loop/{events}ev"));
        group.sample_size(10);
        for kind in [StrategyKind::Sg2 { beta: 2.0 }, StrategyKind::dc_lap(2.0)] {
            let options = SimOptions::at_capacity(kind, 0.05);
            group.bench_function(&format!("dense_enum/{}", kind.name()), |b| {
                b.iter(|| {
                    simulate_compiled(&trace, &costs, &options)
                        .expect("runs")
                        .hits
                })
            });
            group.bench_function(&format!("sparse_dyn/{}", kind.name()), |b| {
                b.iter(|| sparse_dyn_replay(&trace, &costs, &options))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, replay_hot_loop);
criterion_main!(benches);
