//! Regenerates Figure 7 (traffic under the two pushing schemes) and
//! benchmarks the grid behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::Fig7;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let fig = Fig7::run(&ctx).expect("figure 7 runs");
    println!("\n{fig}");
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("traffic_grid", |b| {
        b.iter(|| Fig7::run(&ctx).expect("figure 7 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
