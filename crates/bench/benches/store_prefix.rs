//! Byte-prefix-sum benchmark for [`CacheStore::candidate_size_below`]:
//! the value-ordered index (`indexed`) against the linear scan it
//! replaced (`scan`, reproduced here over the store's public iterator).
//! Push-time placement asks this question at every admission attempt at
//! every matched proxy, so its cost rides the simulator's hot path.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_cache::CacheStore;
use pscd_types::{Bytes, PageId};

/// A populated store plus the query values the placement path would ask.
fn populated(entries: u32) -> (CacheStore, Vec<f64>) {
    let mut store = CacheStore::new(Bytes::new(u64::MAX));
    let mut x = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for i in 0..entries {
        let value = ((rng() % 1_024) as f64) / 8.0;
        let size = Bytes::new(rng() % 10_000 + 500);
        store.insert(PageId::new(i), size, value);
    }
    let queries: Vec<f64> = (0..64).map(|_| ((rng() % 1_024) as f64) / 8.0).collect();
    (store, queries)
}

fn prefix_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_prefix");
    for entries in [1_000u32, 8_000] {
        let (store, queries) = populated(entries);
        group.bench_function(&format!("indexed_{entries}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| store.candidate_size_below(q).as_u64())
                    .sum::<u64>()
            })
        });
        group.bench_function(&format!("scan_{entries}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| {
                        store
                            .iter()
                            .filter(|p| p.value < q)
                            .map(|p| p.size.as_u64())
                            .sum::<u64>()
                    })
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, prefix_sum);
criterion_main!(benches);
