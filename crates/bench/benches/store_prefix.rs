//! Cost tracking for the store's two hot operations since the
//! value-index removal: the placement query
//! [`CacheStore::candidate_size_below`] (one branch-predictable sweep of
//! the heap's compact slot array, 64 queries per iteration) and a mixed
//! insert/update/evict churn loop (1,000 mutations per iteration — the
//! traffic that used to pay treap maintenance on every step).
//!
//! The sweep is `O(live)` per query with zero bookkeeping on the
//! mutation paths; replayed traces keep the live population small (tens
//! of pages at the paper's capacities), so trading the `O(log n)`
//! indexed query for maintenance-free mutations is a large net win —
//! `replay_hot_loop` measures it end to end.

use criterion::{criterion_group, criterion_main, Criterion};

use pscd_cache::CacheStore;
use pscd_types::{Bytes, PageId};

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// A populated store plus the query values the placement path would ask.
fn populated(entries: u32) -> (CacheStore, Vec<f64>) {
    let mut store = CacheStore::new(Bytes::new(u64::MAX));
    let mut x = 0x1234_5678_9abc_def0u64;
    for i in 0..entries {
        let value = ((xorshift(&mut x) % 1_024) as f64) / 8.0;
        let size = Bytes::new(xorshift(&mut x) % 10_000 + 500);
        store.insert(PageId::new(i), size, value);
    }
    let queries: Vec<f64> = (0..64)
        .map(|_| ((xorshift(&mut x) % 1_024) as f64) / 8.0)
        .collect();
    (store, queries)
}

fn store_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_prefix");
    for entries in [64u32, 1_000, 8_000] {
        let (store, queries) = populated(entries);
        group.bench_function(&format!("query_{entries}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&q| store.candidate_size_below(q).as_u64())
                    .sum::<u64>()
            })
        });
        group.bench_function(&format!("churn_{entries}"), |b| {
            let mut store = store.clone();
            let mut x = 0x9e37_79b9u64;
            b.iter(|| {
                for _ in 0..1_000 {
                    let p = PageId::new((xorshift(&mut x) % entries as u64) as u32);
                    match xorshift(&mut x) % 4 {
                        0 => {
                            let size = Bytes::new(xorshift(&mut x) % 10_000 + 500);
                            let value = ((xorshift(&mut x) % 1_024) as f64) / 8.0;
                            store.insert(p, size, value);
                        }
                        1 => {
                            store.pop_min();
                        }
                        _ => {
                            let value = ((xorshift(&mut x) % 1_024) as f64) / 8.0;
                            store.update_value(p, value);
                        }
                    }
                }
                store.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, store_ops);
criterion_main!(benches);
