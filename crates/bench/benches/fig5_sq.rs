//! Regenerates Figure 5 (subscription-quality sensitivity) and benchmarks
//! the grid behind it.

use criterion::{criterion_group, criterion_main, Criterion};
use pscd_bench::bench_context;
use pscd_experiments::Fig5;

fn bench(c: &mut Criterion) {
    let ctx = bench_context();
    let fig = Fig5::run(&ctx).expect("figure 5 runs");
    println!("\n{fig}");
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("sq_grid", |b| {
        b.iter(|| Fig5::run(&ctx).expect("figure 5 runs"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
