//! Shared helpers for the `pscd` benchmark harness.
//!
//! Every bench regenerates one of the paper's exhibits (printing the same
//! rows/series the paper reports) and then measures the simulation work
//! behind it. The workload scale is controlled by the `PSCD_BENCH_SCALE`
//! environment variable (default 0.02 — 2% of the paper's trace — so the
//! full suite completes in minutes; set it to 1.0 to benchmark at paper
//! scale).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pscd_experiments::ExperimentContext;

/// The workload scale benches run at (`PSCD_BENCH_SCALE`, default 0.02).
pub fn bench_scale() -> f64 {
    std::env::var("PSCD_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0 && *v <= 1.0)
        .unwrap_or(0.02)
}

/// Builds the shared experiment context at [`bench_scale`].
///
/// # Panics
///
/// Panics if workload generation fails (it cannot for built-in configs).
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::scaled(bench_scale()).expect("built-in configs generate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_or_defaults() {
        // No env in tests: default.
        assert!(bench_scale() > 0.0 && bench_scale() <= 1.0);
    }
}
