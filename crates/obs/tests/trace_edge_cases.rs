//! Edge-case coverage for the trace pipeline: absorbing empty logs,
//! panic safety of the `end_with` detail closure, and chrome-trace
//! export of runs that recorded no spans.

use std::panic::{catch_unwind, AssertUnwindSafe};

use pscd_obs::{chrome_trace_to_string, SpanEvent, TraceLog, TraceSink};

fn one_span(track: &str, label: &str) -> TraceLog {
    let mut log = TraceLog::new();
    log.add_events(
        track,
        vec![SpanEvent {
            label: label.to_owned(),
            start_ns: 10,
            dur_ns: 5,
            detail: None,
        }],
    );
    log
}

#[test]
fn absorbing_an_empty_log_changes_nothing() {
    // identity on the right …
    let mut log = one_span("t", "x");
    let before = log.clone();
    log.absorb(TraceLog::new());
    assert_eq!(log, before);

    // … and on the left: an empty accumulator adopts the other log whole.
    let mut empty = TraceLog::new();
    empty.absorb(before.clone());
    assert_eq!(empty, before);

    // empty ∘ empty stays empty and grows no tracks.
    let mut a = TraceLog::new();
    a.absorb(TraceLog::new());
    assert!(a.is_empty());
    assert!(a.tracks().is_empty());
    assert_eq!(a.span_count(), 0);
}

#[test]
fn absorb_merges_by_track_across_many_empty_folds() {
    let mut acc = TraceLog::new();
    for k in 0..4 {
        acc.absorb(TraceLog::new()); // interleaved identities must not
        acc.absorb(one_span("t", &format!("s{k}"))); // fragment the track
    }
    assert_eq!(acc.tracks().len(), 1);
    assert_eq!(acc.tracks()[0].events.len(), 4);
    assert_eq!(acc.span_count(), 4);
}

#[test]
fn end_with_survives_a_panicking_detail_closure() {
    let sink = TraceSink::enabled();
    let mut rec = sink.recorder("main");
    rec.span("before", || ());

    let open = rec.begin();
    let result = catch_unwind(AssertUnwindSafe(|| {
        rec.end_with(open, "doomed", || panic!("detail construction failed"));
    }));
    assert!(
        result.is_err(),
        "the panic must propagate, not be swallowed"
    );

    // The recorder stays usable: the half-open span is simply dropped and
    // later spans record normally.
    rec.span("after", || ());
    rec.flush();
    let log = sink.drain();
    assert_eq!(log.tracks().len(), 1);
    let labels: Vec<&str> = log.tracks()[0]
        .events
        .iter()
        .map(|e| e.label.as_str())
        .collect();
    assert_eq!(labels, ["before", "after"], "doomed span must not appear");
}

#[test]
fn end_with_skips_the_closure_entirely_when_disabled() {
    let sink = TraceSink::disabled();
    let mut rec = sink.recorder("main");
    let open = rec.begin();
    // A panicking closure is safe here because it must never run.
    rec.end_with(open, "never", || unreachable!("detail built while off"));
    rec.flush();
    assert!(sink.drain().is_empty());
}

#[test]
fn zero_span_runs_export_an_empty_chrome_shell() {
    // An enabled sink whose recorders completed no spans must still
    // render the valid empty trace document — no stray thread_name
    // metadata for tracks that never flushed an event.
    let sink = TraceSink::enabled();
    {
        let rec = sink.recorder("idle worker");
        let _ = rec.begin(); // opened, never ended
    } // drop flushes (nothing)
    let log = sink.drain();
    assert!(log.is_empty());
    let json = chrome_trace_to_string(&log);
    assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
    assert!(!json.contains("thread_name"));

    // Draining twice is fine: the second drain is the same empty shell.
    let json2 = chrome_trace_to_string(&sink.drain());
    assert_eq!(json2, json);
}
