//! [`StatsObserver`]: folds the event stream into a [`Registry`] of
//! counters, byte totals and distributions — no per-event storage.

use pscd_types::{Bytes, PageId, ServerId, SimTime};

use crate::observer::{AdmitOrigin, EvictReason, MergeableObserver, Observer, RelabelDirection};
use crate::registry::Registry;

/// Counter key for cache hits; `request.hits + request.misses` must equal
/// the run's `SimResult::requests` (checked by the end-to-end tests).
pub const K_REQUEST_HITS: &str = "request.hits";
/// Counter key for cache misses.
pub const K_REQUEST_MISSES: &str = "request.misses";
/// Counter key for push offers whose content crossed the network.
pub const K_PUSH_TRANSFERS: &str = "push.transfers";

/// An [`Observer`] that aggregates every event into a [`Registry`]:
/// request hit/miss counters, push/fetch byte breakdowns, per-reason
/// eviction counts, relabel churn, and log₂ histograms of eviction
/// values and page sizes.
///
/// Because it only aggregates, its memory use is constant in the length
/// of the run — suitable for full-scale simulations where
/// [`JsonlObserver`](crate::JsonlObserver) event logs would be huge.
#[derive(Debug, Clone, Default)]
pub struct StatsObserver {
    registry: Registry,
}

impl StatsObserver {
    /// A fresh observer with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the collected metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consumes the observer, returning the collected metrics.
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    /// Folds another observer's registry into this one (counters and byte
    /// totals add up exactly; histograms merge; spans concatenate). Used
    /// to combine the per-shard observers of a sharded simulation run.
    pub fn merge(&mut self, other: &StatsObserver) {
        self.registry.merge(&other.registry);
    }

    /// Total requests observed (hits + misses).
    pub fn requests(&self) -> u64 {
        self.registry.counter(K_REQUEST_HITS) + self.registry.counter(K_REQUEST_MISSES)
    }

    /// Total cache hits observed.
    pub fn hits(&self) -> u64 {
        self.registry.counter(K_REQUEST_HITS)
    }

    /// Total push transfers observed (content actually sent).
    pub fn push_transfers(&self) -> u64 {
        self.registry.counter(K_PUSH_TRANSFERS)
    }

    /// Plain-text summary: derived ratios first, then the full registry.
    pub fn summary(&self) -> String {
        let requests = self.requests();
        let hits = self.hits();
        let ratio = if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        };
        let mut out = String::new();
        out.push_str(&format!(
            "requests {requests}  hits {hits}  hit_ratio {ratio:.4}\n"
        ));
        out.push_str(&format!(
            "push: offers {}  transfers {}  stored {}\n",
            self.registry.counter("push.offers"),
            self.push_transfers(),
            self.registry.counter("push.stored"),
        ));
        let evictions: u64 = self
            .registry
            .counters_with_prefix("evict.")
            .map(|(_, v)| v)
            .sum();
        let relabels: u64 = self
            .registry
            .counters_with_prefix("relabel.")
            .map(|(_, v)| v)
            .sum();
        out.push_str(&format!("evictions {evictions}  relabels {relabels}\n\n"));
        out.push_str(&self.registry.render());
        out
    }
}

impl Observer for StatsObserver {
    #[inline]
    fn on_publish(
        &mut self,
        _time: SimTime,
        _page: PageId,
        size: Bytes,
        matched: usize,
        _pushed: usize,
    ) {
        self.registry.inc("publish.events");
        self.registry.observe("page_size", size.as_f64());
        self.registry.observe("publish.match_count", matched as f64);
    }

    #[inline]
    fn on_notify(&mut self, _time: SimTime, _page: PageId, match_count: usize) {
        self.registry.inc("notify.events");
        self.registry.add("notify.matches", match_count as u64);
    }

    #[inline]
    fn on_request(
        &mut self,
        _time: SimTime,
        _server: ServerId,
        _page: PageId,
        size: Bytes,
        hit: bool,
    ) {
        if hit {
            self.registry.inc(K_REQUEST_HITS);
        } else {
            self.registry.inc(K_REQUEST_MISSES);
            // A miss fetches the page from the publisher.
            self.registry.add_bytes("bytes.fetched", size);
        }
    }

    #[inline]
    fn on_push(
        &mut self,
        _server: ServerId,
        _page: PageId,
        size: Bytes,
        transferred: bool,
        stored: bool,
    ) {
        self.registry.inc("push.offers");
        if transferred {
            self.registry.inc(K_PUSH_TRANSFERS);
            self.registry.add_bytes("bytes.pushed", size);
        }
        if stored {
            self.registry.inc("push.stored");
        }
    }

    #[inline]
    fn on_admit(
        &mut self,
        _server: ServerId,
        _page: PageId,
        _size: Bytes,
        value: f64,
        origin: AdmitOrigin,
    ) {
        self.registry.inc(&format!("admit.{}", origin.as_str()));
        self.registry.observe("admit.value", value);
    }

    #[inline]
    fn on_evict(
        &mut self,
        _server: ServerId,
        _page: PageId,
        size: Bytes,
        value: f64,
        reason: EvictReason,
    ) {
        self.registry.inc(&format!("evict.{}", reason.as_str()));
        self.registry.add_bytes("bytes.evicted", size);
        self.registry.observe("evict.value", value);
    }

    #[inline]
    fn on_relabel(
        &mut self,
        _server: ServerId,
        _page: PageId,
        size: Bytes,
        direction: RelabelDirection,
    ) {
        self.registry
            .inc(&format!("relabel.{}", direction.as_str()));
        self.registry
            .add_bytes(&format!("bytes.relabeled.{}", direction.as_str()), size);
    }

    #[inline]
    fn on_crash(&mut self, _time: SimTime, victims: &[ServerId]) {
        self.registry.inc("crash.events");
        self.registry.add("crash.victims", victims.len() as u64);
    }

    #[inline]
    fn on_restart(&mut self, _time: SimTime, _server: ServerId) {
        self.registry.inc("restart.events");
    }

    #[inline]
    fn on_invalidate(&mut self, _time: SimTime, _stale: PageId, dropped: usize) {
        self.registry.inc("invalidate.events");
        self.registry.add("invalidate.dropped", dropped as u64);
    }
}

impl MergeableObserver for StatsObserver {
    #[inline]
    fn absorb(&mut self, other: Self) {
        self.registry.merge(&other.registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_shard_totals_exactly() {
        let mut a = StatsObserver::new();
        let mut b = StatsObserver::new();
        let p = PageId::new(1);
        a.on_request(SimTime::ZERO, ServerId::new(0), p, Bytes::new(100), true);
        a.on_request(SimTime::ZERO, ServerId::new(0), p, Bytes::new(100), false);
        b.on_request(SimTime::ZERO, ServerId::new(1), p, Bytes::new(50), false);
        b.on_push(ServerId::new(1), p, Bytes::new(50), true, true);
        a.absorb(b);
        assert_eq!(a.requests(), 3);
        assert_eq!(a.hits(), 1);
        assert_eq!(a.push_transfers(), 1);
        assert_eq!(a.registry().bytes("bytes.fetched"), 150);
        // Absorbing a fresh observer is the identity.
        let before = a.requests();
        a.absorb(StatsObserver::default());
        assert_eq!(a.requests(), before);
    }

    #[test]
    fn counters_track_the_event_stream() {
        let mut s = StatsObserver::new();
        let t = SimTime::ZERO;
        let p = PageId::new(1);
        s.on_publish(t, p, Bytes::new(1000), 3, 2);
        s.on_request(t, ServerId::new(0), p, Bytes::new(1000), true);
        s.on_request(t, ServerId::new(1), p, Bytes::new(1000), false);
        s.on_request(t, ServerId::new(1), p, Bytes::new(1000), false);
        s.on_push(ServerId::new(0), p, Bytes::new(1000), true, true);
        s.on_push(ServerId::new(1), p, Bytes::new(1000), true, false);
        s.on_push(ServerId::new(2), p, Bytes::new(1000), false, false);
        s.on_admit(
            ServerId::new(0),
            p,
            Bytes::new(1000),
            2.5,
            AdmitOrigin::Push,
        );
        s.on_evict(
            ServerId::new(0),
            p,
            Bytes::new(1000),
            0.5,
            EvictReason::Access,
        );
        s.on_evict(
            ServerId::new(0),
            p,
            Bytes::new(1000),
            0.0,
            EvictReason::Repartition,
        );
        s.on_relabel(
            ServerId::new(0),
            p,
            Bytes::new(1000),
            RelabelDirection::AcToPc,
        );
        s.on_crash(t, &[ServerId::new(3), ServerId::new(4)]);
        s.on_restart(t, ServerId::new(3));
        s.on_invalidate(t, p, 5);

        assert_eq!(s.requests(), 3);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.push_transfers(), 2);
        let r = s.registry();
        assert_eq!(r.counter("push.offers"), 3);
        assert_eq!(r.counter("push.stored"), 1);
        assert_eq!(r.counter("evict.access"), 1);
        assert_eq!(r.counter("evict.repartition"), 1);
        assert_eq!(r.counter("relabel.ac_to_pc"), 1);
        assert_eq!(r.counter("crash.victims"), 2);
        assert_eq!(r.counter("invalidate.dropped"), 5);
        assert_eq!(r.bytes("bytes.pushed"), 2000);
        assert_eq!(r.bytes("bytes.fetched"), 2000);
        assert_eq!(r.bytes("bytes.evicted"), 2000);
        assert_eq!(r.histogram("evict.value").unwrap().count(), 2);
        assert_eq!(r.histogram("page_size").unwrap().count(), 1);

        let text = s.summary();
        assert!(text.contains("hit_ratio 0.3333"));
        assert!(text.contains("evictions 2"));
        assert!(text.contains("relabels 1"));
        assert!(text.contains("evict.access"));
    }
}
