//! Chrome trace-event export: renders a [`TraceLog`] as the JSON object
//! format consumed by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! Every [`Track`](crate::Track) becomes one thread lane (`tid` = its
//! index in the log, named via a `thread_name` metadata event) and every
//! [`SpanEvent`](crate::SpanEvent) becomes one complete event (`"ph":
//! "X"`) with microsecond timestamps relative to the sink epoch. Nesting
//! is implied by containment, so the begin/end structure recorded by
//! [`TraceRecorder`](crate::TraceRecorder) renders as stacked spans.
//!
//! The emitted JSON uses only keys from the trace-event format spec:
//! `name`, `ph`, `pid`, `tid`, `ts`, `dur`, `args`.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::trace::TraceLog;

/// The `pid` every event is filed under (one process per export).
const PID: u32 = 1;

/// Renders `log` as Chrome trace-event JSON into `out`.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn render_chrome_trace(log: &TraceLog, out: &mut impl Write) -> io::Result<()> {
    let mut buf = String::with_capacity(256 + log.span_count() * 128);
    buf.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut sep = |buf: &mut String| {
        if first {
            first = false;
        } else {
            buf.push(',');
        }
    };
    for (tid, track) in log.tracks().iter().enumerate() {
        sep(&mut buf);
        let _ = write!(
            buf,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            Escaped(&track.name)
        );
        for ev in &track.events {
            sep(&mut buf);
            let _ = write!(
                buf,
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\
                 \"ts\":{},\"dur\":{}",
                Escaped(&ev.label),
                Micros(ev.start_ns),
                Micros(ev.dur_ns),
            );
            if let Some(detail) = &ev.detail {
                let _ = write!(buf, ",\"args\":{{\"detail\":\"{}\"}}", Escaped(detail));
            }
            buf.push('}');
        }
    }
    buf.push_str("]}\n");
    out.write_all(buf.as_bytes())
}

/// [`render_chrome_trace`] into a `String` (infallible).
pub fn chrome_trace_to_string(log: &TraceLog) -> String {
    let mut out = Vec::new();
    render_chrome_trace(log, &mut out).expect("Vec<u8> sink never fails");
    String::from_utf8(out).expect("exporter writes only UTF-8")
}

/// Nanoseconds displayed as microseconds with sub-µs precision (the
/// trace-event `ts`/`dur` unit is µs; fractions are allowed).
struct Micros(u64);

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let whole = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{whole}")
        } else {
            write!(f, "{whole}.{frac:03}")
        }
    }
}

/// A string rendered with JSON escaping (quotes, backslashes, control
/// characters).
struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for c in self.0.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => f.write_char(c)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanEvent, TraceSink};

    fn event(label: &str, start_ns: u64, dur_ns: u64, detail: Option<&str>) -> SpanEvent {
        SpanEvent {
            label: label.to_owned(),
            start_ns,
            dur_ns,
            detail: detail.map(str::to_owned),
        }
    }

    #[test]
    fn renders_tracks_as_named_tid_lanes() {
        let mut log = TraceLog::new();
        log.add_events("main", vec![event("cold.compile", 1_500, 2_000_000, None)]);
        log.add_events(
            "shard 0 [0,50)",
            vec![event(
                "replay.SG2",
                3_000_000,
                500,
                Some("events [0, 8192)"),
            )],
        );
        let json = chrome_trace_to_string(&log);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Metadata names both lanes.
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"main\"}}"
        ));
        assert!(json.contains("\"args\":{\"name\":\"shard 0 [0,50)\"}"));
        // Complete events with µs timestamps (1500 ns = 1.5 µs).
        assert!(json.contains(
            "{\"name\":\"cold.compile\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\
             \"ts\":1.500,\"dur\":2000}"
        ));
        assert!(json.contains("\"tid\":1,\"ts\":3000,\"dur\":0.500"));
        assert!(json.contains("\"args\":{\"detail\":\"events [0, 8192)\"}"));
    }

    #[test]
    fn escapes_json_special_characters() {
        let mut log = TraceLog::new();
        log.add_events(
            "t\"rack\\",
            vec![event("a\"b", 0, 1, Some("line1\nline2\t\u{1}"))],
        );
        let json = chrome_trace_to_string(&log);
        assert!(json.contains("\"name\":\"t\\\"rack\\\\\""));
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("line1\\nline2\\t\\u0001"));
    }

    #[test]
    fn empty_log_is_valid_json_shell() {
        let json = chrome_trace_to_string(&TraceLog::new());
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
    }

    #[test]
    fn end_to_end_from_a_sink() {
        let sink = TraceSink::enabled();
        sink.recorder("main").span("phase", || ());
        let json = chrome_trace_to_string(&sink.drain());
        assert!(json.contains("\"name\":\"phase\""));
        assert!(json.contains("\"ph\":\"X\""));
    }
}
