//! Trace spans: nested, monotonic-timestamped, per-track span events for
//! timeline profiling, exportable as Chrome trace-event JSON (see
//! [`crate::chrome`]).
//!
//! Where [`Registry`](crate::Registry) spans answer *how long did phase X
//! take in total*, trace spans answer *when did it run, on which thread,
//! and what ran concurrently*. The design mirrors the rest of the crate:
//!
//! * [`TraceSink`] — a cheap-clone handle shared across threads. A
//!   disabled sink (the default) carries no allocation and turns every
//!   recording call into a branch on a `None`, so tracing is zero-cost
//!   when off (the `alloc_free` suite asserts the hot loop performs zero
//!   allocations with a disabled recorder in the loop).
//! * [`TraceRecorder`] — a per-thread recorder minted by
//!   [`TraceSink::recorder`]. Within one recorder spans may nest
//!   ([`TraceRecorder::begin`]/[`TraceRecorder::end`] tokens, or the
//!   closure-shaped [`TraceRecorder::span`]); events buffer locally and
//!   flush into the sink on drop, so recording takes no lock per span.
//! * [`TraceLog`] — the merged result: named tracks of completed spans.
//!   Logs merge by track name through [`TraceLog::absorb`], the same
//!   monoid shape the metrics registry and the sharded simulator use, so
//!   per-shard recordings fold into one timeline.
//!
//! All timestamps are nanoseconds since the sink's epoch (the instant the
//! sink was enabled), taken from the monotonic clock.
//!
//! # Examples
//!
//! ```
//! use pscd_obs::TraceSink;
//!
//! let sink = TraceSink::enabled();
//! let mut rec = sink.recorder("main");
//! let total = rec.span("sum", || (1..=10).sum::<u32>());
//! assert_eq!(total, 55);
//! rec.flush();
//! let log = sink.drain();
//! assert_eq!(log.tracks().len(), 1);
//! assert_eq!(log.tracks()[0].events[0].label, "sum");
//! ```

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// One completed span on a track: a label, a start offset, a duration,
/// and an optional free-form detail string (rendered into the Chrome
/// trace `args`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// What ran (e.g. `cold.compile`, `replay.SG2`, `replay.chunk`).
    pub label: String,
    /// Nanoseconds since the sink epoch at which the span began.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Optional human-readable annotation (chunk ranges, counts, …).
    pub detail: Option<String>,
}

/// A named sequence of spans — one horizontal lane of the exported
/// timeline, usually one worker thread or one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Display name (`main`, `shard 0 [0,50)`, `pool worker 2`, …).
    pub name: String,
    /// Completed spans, in flush order.
    pub events: Vec<SpanEvent>,
}

/// The merged recording of a traced run: every track that flushed into
/// the [`TraceSink`], in first-flush order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    tracks: Vec<Track>,
}

impl TraceLog {
    /// An empty log (the monoid identity for [`absorb`](Self::absorb)).
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded tracks, in first-flush order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Total spans across all tracks.
    pub fn span_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.span_count() == 0
    }

    /// Appends events to the track named `track`, creating it on first
    /// use — tracks merge by name, so short-lived recorders for the same
    /// logical lane accumulate into one timeline row.
    pub fn add_events(&mut self, track: &str, events: Vec<SpanEvent>) {
        if events.is_empty() {
            return;
        }
        match self.tracks.iter_mut().find(|t| t.name == track) {
            Some(t) => t.events.extend(events),
            None => self.tracks.push(Track {
                name: track.to_owned(),
                events,
            }),
        }
    }

    /// Folds another log into this one (tracks merge by name, events
    /// concatenate) — the same exact-merge shape as
    /// [`Registry::merge`](crate::Registry::merge).
    pub fn absorb(&mut self, other: TraceLog) {
        for track in other.tracks {
            self.add_events(&track.name, track.events);
        }
    }
}

#[derive(Debug)]
struct SinkInner {
    epoch: Instant,
    log: Mutex<TraceLog>,
}

/// A shared handle threads record trace spans through.
///
/// Disabled (the default, [`TraceSink::disabled`]) it is a `None` and
/// every derived [`TraceRecorder`] is inert: no clock reads, no
/// allocations, no locks. Enabled ([`TraceSink::enabled`]) it pins the
/// epoch all timestamps are relative to and collects flushed tracks.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// The inert sink: all recording is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live sink whose epoch is now.
    pub fn enabled() -> Self {
        Self::at_epoch(Instant::now())
    }

    /// A live sink with an explicit epoch — for aligning with span
    /// sources that timestamp against their own epoch (e.g. the worker
    /// pool's task spans).
    pub fn at_epoch(epoch: Instant) -> Self {
        Self {
            inner: Some(Arc::new(SinkInner {
                epoch,
                log: Mutex::new(TraceLog::new()),
            })),
        }
    }

    /// `true` when recording is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The instant all span timestamps are relative to (`None` when
    /// disabled).
    pub fn epoch(&self) -> Option<Instant> {
        self.inner.as_ref().map(|i| i.epoch)
    }

    /// Mints a recorder for the track named `track`. Recorders for the
    /// same name (sequentially or from different threads) merge into one
    /// track at flush time.
    pub fn recorder(&self, track: impl Into<String>) -> TraceRecorder {
        TraceRecorder {
            sink: self.clone(),
            track: if self.is_enabled() {
                track.into()
            } else {
                String::new()
            },
            events: Vec::new(),
        }
    }

    /// Appends pre-built events to a named track (used by adapters that
    /// convert externally collected spans, e.g. the pool's task spans).
    pub fn add_events(&self, track: &str, events: Vec<SpanEvent>) {
        if let Some(inner) = &self.inner {
            inner.log.lock().add_events(track, events);
        }
    }

    /// Takes the collected log, leaving the sink empty but live.
    pub fn drain(&self) -> TraceLog {
        match &self.inner {
            Some(inner) => std::mem::take(&mut *inner.log.lock()),
            None => TraceLog::new(),
        }
    }

    /// A copy of the collected log.
    pub fn snapshot(&self) -> TraceLog {
        match &self.inner {
            Some(inner) => inner.log.lock().clone(),
            None => TraceLog::new(),
        }
    }
}

/// A begin token returned by [`TraceRecorder::begin`]; pass it back to
/// [`TraceRecorder::end`] to complete the span. Tokens nest: begin an
/// outer span, begin and end inner spans, then end the outer one.
#[derive(Debug)]
#[must_use = "an OpenSpan records nothing until passed to TraceRecorder::end"]
pub struct OpenSpan {
    /// `None` when the recorder is disabled — no clock was read.
    start: Option<Instant>,
}

/// A per-thread span recorder (see the module docs). Not `Sync`: each
/// thread records into its own recorder and the sink merges the tracks.
#[derive(Debug)]
pub struct TraceRecorder {
    sink: TraceSink,
    track: String,
    events: Vec<SpanEvent>,
}

impl TraceRecorder {
    /// `true` when spans are actually being recorded. Call sites with a
    /// per-event cost should branch on this and keep their uninstrumented
    /// loop when it is `false`.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_enabled()
    }

    /// Opens a span. Free when disabled (no clock read).
    pub fn begin(&self) -> OpenSpan {
        OpenSpan {
            start: if self.is_enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Completes `span` under `label`.
    pub fn end(&mut self, span: OpenSpan, label: &str) {
        self.end_at(span, label, None);
    }

    /// Completes `span` under `label` with a detail annotation built only
    /// when recording is live (so the format cost is zero when off).
    pub fn end_with(&mut self, span: OpenSpan, label: &str, detail: impl FnOnce() -> String) {
        if span.start.is_some() {
            let d = detail();
            self.end_at(span, label, Some(d));
        }
    }

    fn end_at(&mut self, span: OpenSpan, label: &str, detail: Option<String>) {
        let (Some(start), Some(epoch)) = (span.start, self.sink.epoch()) else {
            return;
        };
        let start_ns = start.saturating_duration_since(epoch).as_nanos() as u64;
        let dur_ns = start.elapsed().as_nanos() as u64;
        self.events.push(SpanEvent {
            label: label.to_owned(),
            start_ns,
            dur_ns,
            detail,
        });
    }

    /// Runs `f` inside a span labeled `label` and returns its result.
    pub fn span<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        let open = self.begin();
        let result = f();
        self.end(open, label);
        result
    }

    /// Pushes the buffered events into the sink. Called automatically on
    /// drop; explicit calls let a long-lived recorder publish early.
    pub fn flush(&mut self) {
        if !self.events.is_empty() {
            self.sink
                .add_events(&self.track, std::mem::take(&mut self.events));
        }
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.epoch().is_none());
        let mut rec = sink.recorder("main");
        assert!(!rec.is_enabled());
        let open = rec.begin();
        assert!(open.start.is_none());
        rec.end(open, "x");
        let v = rec.span("y", || 7);
        assert_eq!(v, 7);
        let open = rec.begin();
        rec.end_with(open, "z", || unreachable!("detail not built when off"));
        rec.flush();
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn spans_nest_and_flush_on_drop() {
        let sink = TraceSink::enabled();
        {
            let mut rec = sink.recorder("main");
            let outer = rec.begin();
            rec.span("inner", || std::hint::black_box(1 + 1));
            rec.end_with(outer, "outer", || "two halves".to_owned());
        } // drop flushes
        let log = sink.drain();
        assert_eq!(log.tracks().len(), 1);
        let events = &log.tracks()[0].events;
        assert_eq!(events.len(), 2);
        // Inner completes first; outer encloses it.
        assert_eq!(events[0].label, "inner");
        assert_eq!(events[1].label, "outer");
        assert!(events[1].start_ns <= events[0].start_ns);
        assert!(
            events[1].start_ns + events[1].dur_ns >= events[0].start_ns + events[0].dur_ns,
            "outer span must enclose the inner one"
        );
        assert_eq!(events[1].detail.as_deref(), Some("two halves"));
        // Drain empties but keeps the sink live.
        assert!(sink.drain().is_empty());
        assert!(sink.is_enabled());
    }

    #[test]
    fn tracks_merge_by_name() {
        let sink = TraceSink::enabled();
        sink.recorder("a").span("one", || ());
        sink.recorder("b").span("two", || ());
        sink.recorder("a").span("three", || ());
        let log = sink.snapshot();
        assert_eq!(log.tracks().len(), 2);
        assert_eq!(log.tracks()[0].name, "a");
        assert_eq!(log.tracks()[0].events.len(), 2);
        assert_eq!(log.tracks()[1].name, "b");
        assert_eq!(log.span_count(), 3);
    }

    #[test]
    fn logs_absorb_like_a_monoid() {
        let mk = |track: &str, label: &str| {
            let mut log = TraceLog::new();
            log.add_events(
                track,
                vec![SpanEvent {
                    label: label.to_owned(),
                    start_ns: 0,
                    dur_ns: 1,
                    detail: None,
                }],
            );
            log
        };
        let mut a = mk("t", "x");
        a.absorb(mk("t", "y"));
        a.absorb(mk("u", "z"));
        a.absorb(TraceLog::new()); // identity
        assert_eq!(a.tracks().len(), 2);
        assert_eq!(a.tracks()[0].events.len(), 2);
        assert_eq!(a.span_count(), 3);
        // Empty event lists do not create tracks.
        let mut e = TraceLog::new();
        e.add_events("ghost", Vec::new());
        assert!(e.is_empty() && e.tracks().is_empty());
    }

    #[test]
    fn recorders_from_threads_share_one_sink() {
        let sink = TraceSink::enabled();
        std::thread::scope(|scope| {
            for k in 0..3 {
                let sink = sink.clone();
                scope.spawn(move || {
                    let mut rec = sink.recorder(format!("worker {k}"));
                    rec.span("tick", || std::hint::black_box(k * 2));
                });
            }
        });
        let log = sink.drain();
        assert_eq!(log.tracks().len(), 3);
        assert_eq!(log.span_count(), 3);
    }
}
