//! [`JsonlObserver`]: a structured event log, one JSON object per line.
//!
//! Events carry a monotonically increasing `seq`, the simulation time in
//! milliseconds (`t_ms`, taken from the last [`on_clock`] tick — decision
//! hooks have no clock of their own) and the derived workload `hour`.
//! The writer buffers up to [`BUF_CAP`] bytes before touching the sink;
//! I/O errors latch an internal flag and silently drop later events, so
//! a full disk can never panic the simulation.
//!
//! [`on_clock`]: crate::Observer::on_clock

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use pscd_types::{Bytes, PageId, ServerId, SimTime};

use crate::observer::{AdmitOrigin, EvictReason, Observer, RelabelDirection};

/// Buffered bytes before the sink is written (64 KiB).
pub const BUF_CAP: usize = 64 * 1024;

/// An [`Observer`] that appends one JSON object per event to a sink.
///
/// All keys are static ASCII identifiers and all values are numbers,
/// booleans or the stable enum keys from
/// [`EvictReason::as_str`]/[`AdmitOrigin::as_str`]/
/// [`RelabelDirection::as_str`], so the JSON is emitted directly without
/// an escaping pass.
pub struct JsonlObserver {
    sink: Box<dyn Write>,
    buf: String,
    /// Simulation clock of the most recent `on_clock`, for stamping
    /// decision events.
    now_ms: u64,
    seq: u64,
    /// Latched on the first sink error; later events are dropped.
    errored: bool,
}

impl std::fmt::Debug for JsonlObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlObserver")
            .field("seq", &self.seq)
            .field("errored", &self.errored)
            .finish_non_exhaustive()
    }
}

impl JsonlObserver {
    /// Wraps an arbitrary sink.
    pub fn new(sink: Box<dyn Write>) -> Self {
        Self {
            sink,
            buf: String::with_capacity(BUF_CAP + 256),
            now_ms: 0,
            seq: 0,
            errored: false,
        }
    }

    /// Creates (truncating) `path` and logs events to it.
    ///
    /// # Errors
    ///
    /// Returns the error from [`File::create`].
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(BufWriter::new(file))))
    }

    /// Number of events accepted so far (including any lost to a sink
    /// error after buffering).
    pub fn events_written(&self) -> u64 {
        self.seq
    }

    /// `true` once a sink write has failed; subsequent events are dropped.
    pub fn sink_errored(&self) -> bool {
        self.errored
    }

    /// Flushes buffered events through to the sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink error (which also latches the internal failure
    /// flag).
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.buf.is_empty() {
            let pending = std::mem::take(&mut self.buf);
            if let Err(e) = self.sink.write_all(pending.as_bytes()) {
                self.errored = true;
                return Err(e);
            }
        }
        let r = self.sink.flush();
        if r.is_err() {
            self.errored = true;
        }
        r
    }

    /// Opens an event object with the standard header fields and returns
    /// `false` if the sink has already failed.
    fn begin(&mut self, event: &str) -> bool {
        if self.errored {
            return false;
        }
        let hour = SimTime::from_millis(self.now_ms).hour_index();
        let _ = write!(
            self.buf,
            "{{\"seq\":{},\"t_ms\":{},\"hour\":{},\"event\":\"{}\"",
            self.seq, self.now_ms, hour, event
        );
        self.seq += 1;
        true
    }

    fn end(&mut self) {
        self.buf.push_str("}\n");
        if self.buf.len() >= BUF_CAP {
            let _ = self.flush();
        }
    }

    fn field_u64(&mut self, key: &str, v: u64) {
        let _ = write!(self.buf, ",\"{key}\":{v}");
    }

    fn field_bool(&mut self, key: &str, v: bool) {
        let _ = write!(self.buf, ",\"{key}\":{v}");
    }

    fn field_f64(&mut self, key: &str, v: f64) {
        if v.is_finite() {
            let _ = write!(self.buf, ",\"{key}\":{v}");
        } else {
            let _ = write!(self.buf, ",\"{key}\":null");
        }
    }

    fn field_str(&mut self, key: &str, v: &str) {
        let _ = write!(self.buf, ",\"{key}\":\"{v}\"");
    }
}

impl Drop for JsonlObserver {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

impl Observer for JsonlObserver {
    #[inline]
    fn on_clock(&mut self, time: SimTime) {
        self.now_ms = time.as_millis();
    }

    fn on_publish(
        &mut self,
        time: SimTime,
        page: PageId,
        size: Bytes,
        matched: usize,
        pushed: usize,
    ) {
        self.now_ms = time.as_millis();
        if self.begin("publish") {
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_u64("matched", matched as u64);
            self.field_u64("pushed", pushed as u64);
            self.end();
        }
    }

    fn on_notify(&mut self, time: SimTime, page: PageId, match_count: usize) {
        self.now_ms = time.as_millis();
        if self.begin("notify") {
            self.field_u64("page", page.index() as u64);
            self.field_u64("matches", match_count as u64);
            self.end();
        }
    }

    fn on_request(
        &mut self,
        time: SimTime,
        server: ServerId,
        page: PageId,
        size: Bytes,
        hit: bool,
    ) {
        self.now_ms = time.as_millis();
        if self.begin("request") {
            self.field_u64("server", server.index() as u64);
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_bool("hit", hit);
            self.end();
        }
    }

    fn on_push(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        transferred: bool,
        stored: bool,
    ) {
        if self.begin("push") {
            self.field_u64("server", server.index() as u64);
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_bool("transferred", transferred);
            self.field_bool("stored", stored);
            self.end();
        }
    }

    fn on_admit(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        value: f64,
        origin: AdmitOrigin,
    ) {
        if self.begin("admit") {
            self.field_u64("server", server.index() as u64);
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_f64("value", value);
            self.field_str("origin", origin.as_str());
            self.end();
        }
    }

    fn on_evict(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        value: f64,
        reason: EvictReason,
    ) {
        if self.begin("evict") {
            self.field_u64("server", server.index() as u64);
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_f64("value", value);
            self.field_str("reason", reason.as_str());
            self.end();
        }
    }

    fn on_relabel(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        direction: RelabelDirection,
    ) {
        if self.begin("relabel") {
            self.field_u64("server", server.index() as u64);
            self.field_u64("page", page.index() as u64);
            self.field_u64("size", size.as_u64());
            self.field_str("direction", direction.as_str());
            self.end();
        }
    }

    fn on_crash(&mut self, time: SimTime, victims: &[ServerId]) {
        self.now_ms = time.as_millis();
        if self.begin("crash") {
            self.buf.push_str(",\"victims\":[");
            for (i, v) in victims.iter().enumerate() {
                if i > 0 {
                    self.buf.push(',');
                }
                let _ = write!(self.buf, "{}", v.index());
            }
            self.buf.push(']');
            self.end();
        }
    }

    fn on_restart(&mut self, time: SimTime, server: ServerId) {
        self.now_ms = time.as_millis();
        if self.begin("restart") {
            self.field_u64("server", server.index() as u64);
            self.end();
        }
    }

    fn on_invalidate(&mut self, time: SimTime, stale: PageId, dropped: usize) {
        self.now_ms = time.as_millis();
        if self.begin("invalidate") {
            self.field_u64("page", stale.index() as u64);
            self.field_u64("dropped", dropped as u64);
            self.end();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A sink handing the bytes back out through shared ownership.
    #[derive(Clone, Default)]
    struct SharedSink(Rc<RefCell<Vec<u8>>>);

    impl Write for SharedSink {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// A sink that always fails.
    struct BrokenSink;

    impl Write for BrokenSink {
        fn write(&mut self, _data: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("boom"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::other("boom"))
        }
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let sink = SharedSink::default();
        let mut obs = JsonlObserver::new(Box::new(sink.clone()));
        let p = PageId::new(7);
        obs.on_clock(SimTime::from_hours(2));
        obs.on_evict(ServerId::new(3), p, Bytes::new(512), 1.5, EvictReason::Push);
        obs.on_request(
            SimTime::from_hours(3),
            ServerId::new(3),
            p,
            Bytes::new(512),
            false,
        );
        obs.on_crash(
            SimTime::from_hours(3),
            &[ServerId::new(1), ServerId::new(2)],
        );
        obs.on_admit(
            ServerId::new(3),
            p,
            Bytes::new(512),
            f64::INFINITY,
            AdmitOrigin::Access,
        );
        assert_eq!(obs.events_written(), 4);
        drop(obs); // Drop flushes.

        let bytes = sink.0.borrow().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Decision event is stamped with the last clock tick (hour 2);
        // the later timeline events carry their own time (hour 3).
        assert_eq!(
            lines[0],
            format!(
                "{{\"seq\":0,\"t_ms\":{},\"hour\":2,\"event\":\"evict\",\"server\":3,\"page\":7,\"size\":512,\"value\":1.5,\"reason\":\"push\"}}",
                2 * SimTime::MILLIS_PER_HOUR
            )
        );
        assert!(lines[1].contains("\"hour\":3,\"event\":\"request\""));
        assert!(lines[1].contains("\"hit\":false"));
        assert!(lines[2].contains("\"victims\":[1,2]"));
        // Non-finite values degrade to null instead of invalid JSON.
        assert!(lines[3].contains("\"value\":null"));
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"seq\":{i},")));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn sink_errors_latch_without_panicking() {
        let mut obs = JsonlObserver::new(Box::new(BrokenSink));
        obs.on_restart(SimTime::ZERO, ServerId::new(0));
        assert!(obs.flush().is_err());
        assert!(obs.sink_errored());
        // Later events are dropped silently.
        obs.on_restart(SimTime::ZERO, ServerId::new(1));
        assert_eq!(obs.events_written(), 1);
    }
}
