//! In-process metrics: named counters, byte counters, log₂ histograms,
//! and wall-clock span timing for coarse pipeline stages.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use pscd_types::Bytes;

/// Sentinel bucket for non-positive samples (an eviction value of exactly
/// zero is common: pages with no matching subscriptions).
const ZERO_BUCKET: i32 = i32::MIN;

/// A histogram over powers of two: bucket `e` covers `[2^e, 2^(e+1))`.
///
/// Built for the two distributions the simulator cares about — page sizes
/// (hundreds of bytes to tens of KiB) and eviction values (fractions to
/// thousands, hence the negative exponents) — where exact quantiles are
/// overkill but orders of magnitude tell the story.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Log2Histogram {
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Non-positive samples land in a dedicated
    /// underflow bucket; NaN is ignored.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let bucket = if value > 0.0 {
            // log2 of f64::MAX is < 1024, safely inside i32.
            value.log2().floor() as i32
        } else {
            ZERO_BUCKET
        };
        *self.buckets.entry(bucket).or_insert(0) += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 with no samples).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 with no samples).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Occupied `(exponent, count)` buckets in ascending exponent order;
    /// the underflow bucket (samples ≤ 0) reports exponent `i32::MIN`.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &c)| (e, c))
    }

    /// A bucket-resolution estimate of the `q`-quantile (`q` in `[0, 1]`):
    /// the sample at rank `⌈q·n⌉` is located in its power-of-two bucket
    /// and the bucket's span is interpolated linearly by the rank's
    /// position inside it, clamped to the recorded `min`/`max`. Exact for
    /// the extremes (`q = 0` → min, `q = 1` → max); within a factor of 2
    /// elsewhere, which is all a log₂ sketch can promise. Returns 0 with
    /// no samples; NaN `q` is treated as 1.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 1.0 } else { q.clamp(0.0, 1.0) };
        // Rank of the target sample, 1-based: ceil(q * n), at least 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&e, &c) in &self.buckets {
            if seen + c >= rank {
                if e == ZERO_BUCKET {
                    // All non-positive samples collapse into one bucket;
                    // min is the only bound we kept for them.
                    return self.min.min(0.0);
                }
                let lo = (e as f64).exp2();
                let hi = (e as f64 + 1.0).exp2();
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Median estimate (see [`quantile`](Self::quantile)).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`quantile`](Self::quantile)).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`quantile`](Self::quantile)).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (&e, &c) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += c;
        }
        if other.count > 0 {
            if self.count == 0 {
                self.min = other.min;
                self.max = other.max;
            } else {
                self.min = self.min.min(other.min);
                self.max = self.max.max(other.max);
            }
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    fn render_into(&self, out: &mut String, indent: &str) {
        let peak = self.buckets.values().copied().max().unwrap_or(0).max(1);
        for (&e, &c) in &self.buckets {
            let label = if e == ZERO_BUCKET {
                "        <= 0".to_owned()
            } else {
                format!("[2^{e}, 2^{})", e + 1)
            };
            let bar = "#".repeat(((c * 32).div_ceil(peak)) as usize);
            let _ = writeln!(out, "{indent}{label:>14} {c:>10} {bar}");
        }
    }
}

/// A registry of named counters, byte counters, [`Log2Histogram`]s and
/// timed spans — the in-process metrics store behind
/// [`StatsObserver`](crate::StatsObserver) and the CLI's
/// `--obs-dir` summaries.
///
/// # Examples
///
/// ```
/// use pscd_obs::Registry;
/// use pscd_types::Bytes;
///
/// let mut reg = Registry::new();
/// reg.inc("request.hits");
/// reg.add_bytes("bytes.fetched", Bytes::new(512));
/// reg.observe("page_size", 512.0);
/// let sum = reg.time("stage", || 2 + 2);
/// assert_eq!(sum, 4);
/// assert_eq!(reg.counter("request.hits"), 1);
/// assert_eq!(reg.bytes("bytes.fetched"), 512);
/// assert_eq!(reg.spans().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    bytes: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Log2Histogram>,
    spans: Vec<(String, Duration)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.bytes.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &str, n: u64) {
        bump(&mut self.counters, name, n);
    }

    /// Adds to byte counter `name`.
    #[inline]
    pub fn add_bytes(&mut self, name: &str, bytes: Bytes) {
        bump(&mut self.bytes, name, bytes.as_u64());
    }

    /// Records a sample into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &str, value: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Log2Histogram::new();
                h.record(value);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// The value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of byte counter `name` (0 if never touched).
    pub fn bytes(&self, name: &str) -> u64 {
        self.bytes.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// All byte counters in name order.
    pub fn byte_counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.bytes.iter().map(|(n, &v)| (n.as_str(), v))
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters()
            .filter(move |(name, _)| name.starts_with(prefix))
    }

    /// Records an already-measured span.
    pub fn record_span(&mut self, label: &str, elapsed: Duration) {
        self.spans.push((label.to_owned(), elapsed));
    }

    /// Times `f` under `label` and returns its result.
    pub fn time<R>(&mut self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record_span(label, start.elapsed());
        result
    }

    /// Recorded spans in recording order.
    pub fn spans(&self) -> &[(String, Duration)] {
        &self.spans
    }

    /// Spans aggregated by label, in label order: `(label, total, count)`.
    /// The flat [`spans`](Self::spans) list keeps every recording (and
    /// duplicates labels when a phase runs more than once — e.g. one
    /// `cold.compile` per compiled-cache miss); this is the rolled-up
    /// view reports should print.
    pub fn span_totals(&self) -> Vec<(&str, Duration, u64)> {
        let mut totals: BTreeMap<&str, (Duration, u64)> = BTreeMap::new();
        for (label, d) in &self.spans {
            let entry = totals.entry(label.as_str()).or_insert((Duration::ZERO, 0));
            entry.0 += *d;
            entry.1 += 1;
        }
        totals
            .into_iter()
            .map(|(label, (total, count))| (label, total, count))
            .collect()
    }

    /// Folds another registry into this one (counters add up, histograms
    /// merge, spans concatenate).
    pub fn merge(&mut self, other: &Registry) {
        for (name, &v) in &other.counters {
            bump(&mut self.counters, name, v);
        }
        for (name, &v) in &other.bytes {
            bump(&mut self.bytes, name, v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Plain-text report: spans, counters, byte counters, histograms.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            // Aggregated by label: a phase that ran N times (e.g. one
            // `cold.compile` per cache miss) prints one row with its
            // total and count instead of N look-alike rows.
            out.push_str("spans:\n");
            for (label, total, count) in self.span_totals() {
                let ms = total.as_secs_f64() * 1e3;
                if count == 1 {
                    let _ = writeln!(out, "  {label:<40} {ms:>12.3} ms");
                } else {
                    let _ = writeln!(out, "  {label:<40} {ms:>12.3} ms  (x{count})");
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {v:>12}");
            }
        }
        if !self.bytes.is_empty() {
            out.push_str("bytes:\n");
            for (name, v) in &self.bytes {
                let _ = writeln!(out, "  {name:<40} {v:>12}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} (n={}, mean={:.2}, min={:.2}, max={:.2}, \
                 ~p50={:.2}, ~p90={:.2}, ~p99={:.2}):",
                h.count(),
                h.mean(),
                h.min(),
                h.max(),
                h.p50(),
                h.p90(),
                h.p99()
            );
            h.render_into(&mut out, "  ");
        }
        out
    }
}

fn bump(map: &mut BTreeMap<String, u64>, name: &str, n: u64) {
    match map.get_mut(name) {
        Some(v) => *v += n,
        None => {
            map.insert(name.to_owned(), n);
        }
    }
}

/// A thread-safe registry handle (`Arc<Mutex<Registry>>`): worker threads
/// record into one store, e.g. the per-stage spans of a parallel
/// experiment grid.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<Registry>>,
}

impl SharedRegistry {
    /// An empty shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with exclusive access to the registry.
    pub fn with<R>(&self, f: impl FnOnce(&mut Registry) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Times `f` under `label` without holding the lock while it runs.
    pub fn time<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.inner.lock().record_span(label, start.elapsed());
        result
    }

    /// A snapshot of the current contents.
    pub fn snapshot(&self) -> Registry {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_cover_powers_of_two() {
        let mut h = Log2Histogram::new();
        for v in [0.0, -1.0, 0.3, 1.0, 1.9, 2.0, 3.99, 1024.0] {
            h.record(v);
        }
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 8);
        let buckets: Vec<(i32, u64)> = h.buckets().collect();
        assert_eq!(
            buckets,
            [(ZERO_BUCKET, 2), (-2, 1), (0, 2), (1, 2), (10, 1)]
        );
        assert_eq!(h.min(), -1.0);
        assert_eq!(h.max(), 1024.0);
        assert!(h.mean() > 0.0);
    }

    #[test]
    fn histogram_merge_adds_up() {
        let mut a = Log2Histogram::new();
        a.record(1.0);
        a.record(5.0);
        let mut b = Log2Histogram::new();
        b.record(5.5);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.max(), 100.0);
        assert_eq!(a.min(), 1.0);
        let by_exp: BTreeMap<i32, u64> = a.buckets().collect();
        assert_eq!(by_exp[&2], 2); // 5.0 and 5.5 share [4, 8)
    }

    #[test]
    fn quantile_estimates_land_in_the_right_bucket() {
        let mut h = Log2Histogram::new();
        // 100 samples: 89 in [1, 2), 10 in [8, 16), 1 at 1000.
        for _ in 0..89 {
            h.record(1.5);
        }
        for _ in 0..10 {
            h.record(10.0);
        }
        h.record(1000.0);
        // p50 sits in the [1, 2) bucket.
        assert!((1.0..2.0).contains(&h.p50()), "p50 = {}", h.p50());
        // p90 is the 90th sample: first of the [8, 16) bucket.
        assert!((8.0..16.0).contains(&h.p90()), "p90 = {}", h.p90());
        // p99 is the 99th sample: last of the [8, 16) bucket (the linear
        // interpolation may land exactly on the upper edge).
        assert!((8.0..=16.0).contains(&h.p99()), "p99 = {}", h.p99());
        // The extremes are exact.
        assert_eq!(h.quantile(0.0), 1.5);
        assert_eq!(h.quantile(1.0), 1000.0);
        // Out-of-range and NaN q clamp instead of panicking.
        assert_eq!(h.quantile(7.0), 1000.0);
        assert_eq!(h.quantile(-3.0), 1.5);
        assert_eq!(h.quantile(f64::NAN), 1000.0);
    }

    #[test]
    fn quantiles_handle_edge_shapes() {
        // Empty histogram.
        assert_eq!(Log2Histogram::new().p50(), 0.0);
        // Single sample: every quantile is that sample.
        let mut one = Log2Histogram::new();
        one.record(42.0);
        assert_eq!(one.p50(), 42.0);
        assert_eq!(one.p99(), 42.0);
        // Non-positive samples report through the underflow bucket.
        let mut neg = Log2Histogram::new();
        neg.record(-5.0);
        neg.record(-1.0);
        neg.record(0.0);
        assert_eq!(neg.p50(), -5.0, "underflow bucket reports min");
        // Mixed: the positive tail still resolves.
        let mut mixed = Log2Histogram::new();
        mixed.record(0.0);
        mixed.record(512.0);
        assert!((256.0..=512.0).contains(&mixed.p99()), "{}", mixed.p99());
    }

    #[test]
    fn span_totals_aggregate_duplicate_labels() {
        let mut r = Registry::new();
        r.record_span("compile", Duration::from_millis(10));
        r.record_span("generate", Duration::from_millis(5));
        r.record_span("compile", Duration::from_millis(30));
        // The flat list keeps every recording…
        assert_eq!(r.spans().len(), 3);
        // …while the rolled-up view sums by label.
        assert_eq!(
            r.span_totals(),
            [
                ("compile", Duration::from_millis(40), 2),
                ("generate", Duration::from_millis(5), 1),
            ]
        );
        let text = r.render();
        assert!(text.contains("(x2)"), "duplicate count shown: {text}");
        // One row per label, not per recording.
        assert_eq!(text.matches("compile").count(), 1);
    }

    #[test]
    fn counters_and_prefixes() {
        let mut r = Registry::new();
        assert!(r.is_empty());
        r.inc("evict.access");
        r.add("evict.access", 2);
        r.inc("evict.push");
        r.inc("admit.push");
        r.add_bytes("bytes.pushed", Bytes::new(100));
        r.add_bytes("bytes.pushed", Bytes::new(50));
        assert_eq!(r.counter("evict.access"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.bytes("bytes.pushed"), 150);
        assert_eq!(r.bytes("missing"), 0);
        let evictions: Vec<(&str, u64)> = r.counters_with_prefix("evict.").collect();
        assert_eq!(evictions, [("evict.access", 3), ("evict.push", 1)]);
        assert!(!r.is_empty());
    }

    #[test]
    fn spans_and_render() {
        let mut r = Registry::new();
        let v = r.time("matching", || 21 * 2);
        assert_eq!(v, 42);
        r.record_span("workload generation", Duration::from_millis(5));
        r.observe("page_size", 512.0);
        r.inc("request.hits");
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.spans()[1].1, Duration::from_millis(5));
        let text = r.render();
        assert!(text.contains("matching"));
        assert!(text.contains("request.hits"));
        assert!(text.contains("histogram page_size"));
        assert!(text.contains("[2^9, 2^10)"));
    }

    #[test]
    fn registry_merge() {
        let mut a = Registry::new();
        a.inc("x");
        a.observe("h", 2.0);
        a.record_span("s", Duration::from_millis(1));
        let mut b = Registry::new();
        b.add("x", 4);
        b.inc("y");
        b.add_bytes("bb", Bytes::new(7));
        b.observe("h", 3.0);
        b.observe("h2", 1.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.bytes("bb"), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
        assert_eq!(a.spans().len(), 1);
    }

    #[test]
    fn shared_registry_across_threads() {
        let shared = SharedRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shared = shared.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        shared.with(|r| r.inc("ticks"));
                    }
                    shared.time("work", || std::hint::black_box(3 + 4));
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.counter("ticks"), 400);
        assert_eq!(snap.spans().len(), 4);
    }
}
