//! Structured event tracing, decision audit and hot-path timing for the
//! `pscd` simulator.
//!
//! The simulator's answers — hit ratios, traffic totals — say *what*
//! happened; this crate records *why*: which pages a strategy evicted and
//! at what value, how often the adaptive dual caches relabeled storage,
//! where pushed bytes actually went. It has three layers:
//!
//! * [`Observer`] — a trait with typed hooks for every decision point in
//!   the pipeline (publish, notify, request, push, admit, evict, relabel,
//!   crash/restart, invalidate). Hooks have empty `#[inline]` defaults
//!   and an associated `const ENABLED`; with the default [`NullObserver`]
//!   (`ENABLED = false`) every instrumented call site monomorphizes back
//!   to the uninstrumented code, so observation is zero-cost when off.
//! * Shipped observers: [`StatsObserver`] aggregates the stream into a
//!   [`Registry`] (constant memory), [`JsonlObserver`] logs one JSON
//!   object per event for offline analysis. Observers compose: a tuple
//!   `(A, B)` tees the stream, `Option<O>` gates it at runtime.
//! * [`Registry`] / [`SharedRegistry`] — in-process metrics: named
//!   counters, byte counters, [`Log2Histogram`]s (order-of-magnitude
//!   distributions of eviction values and page sizes) and wall-clock
//!   span timing for coarse stages.
//! * [`TraceSink`] / [`TraceRecorder`] / [`TraceLog`] — timeline tracing:
//!   nested, monotonic-timestamped, per-track span events, merged across
//!   shards like the registry monoid and exported as Chrome trace-event
//!   JSON by [`chrome::render_chrome_trace`] (load the file in
//!   `chrome://tracing` or Perfetto). Zero-cost when the sink is
//!   disabled.
//!
//! Within one shard of a simulation run everything is single-threaded,
//! so components share one observer through [`SharedObserver`]
//! (`Rc<RefCell<_>>`); caches and strategies hold a per-proxy
//! [`ObsHandle`] that stamps decision events with their
//! [`ServerId`](pscd_types::ServerId). Sharded runs give every shard a
//! fresh observer and fold them back together in shard order through
//! [`MergeableObserver::absorb`] — integer totals (hits, misses, bytes)
//! merge exactly, which is what the `repro --obs-dir` audit hard-checks
//! against the simulator's own accounting.
//!
//! # Examples
//!
//! ```
//! use pscd_obs::{Observer, SharedObserver, StatsObserver, EvictReason};
//! use pscd_types::{Bytes, PageId, ServerId, SimTime};
//!
//! let shared = SharedObserver::new(StatsObserver::new());
//! let handle = shared.handle(ServerId::new(2));
//! shared.request(SimTime::ZERO, ServerId::new(2), PageId::new(9), Bytes::new(800), false);
//! handle.evict(PageId::new(4), Bytes::new(500), 1.25, EvictReason::Access);
//! drop(handle); // release the last other clone before unwrapping
//! let stats = shared.try_unwrap().unwrap();
//! assert_eq!(stats.requests(), 1);
//! assert_eq!(stats.registry().counter("evict.access"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod jsonl;
mod observer;
mod registry;
mod stats;
mod trace;

pub use chrome::{chrome_trace_to_string, render_chrome_trace};
pub use jsonl::{JsonlObserver, BUF_CAP};
pub use observer::{
    AdmitOrigin, EvictReason, MergeableObserver, NullObserver, ObsHandle, Observer,
    RelabelDirection, SharedObserver,
};
pub use registry::{Log2Histogram, Registry, SharedRegistry};
pub use stats::{StatsObserver, K_PUSH_TRANSFERS, K_REQUEST_HITS, K_REQUEST_MISSES};
pub use trace::{OpenSpan, SpanEvent, TraceLog, TraceRecorder, TraceSink, Track};
