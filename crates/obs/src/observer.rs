//! The zero-cost observer abstraction: typed hooks for every decision
//! point in the content-distribution pipeline.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use pscd_types::{Bytes, PageId, ServerId, SimTime};

/// Why a page left a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictReason {
    /// Displaced by an access-time replacement (a miss needed room).
    Access,
    /// Displaced by a push-time placement.
    Push,
    /// Dropped because its content became stale (a newer version was
    /// published) or the caller invalidated it explicitly.
    Invalidate,
    /// Evicted because its storage was relabeled to the push cache during
    /// an adaptive re-partition (DC-AP / DC-LAP phase 2).
    Repartition,
}

impl EvictReason {
    /// Stable lower-case key, used in metric names and JSONL events.
    pub fn as_str(self) -> &'static str {
        match self {
            EvictReason::Access => "access",
            EvictReason::Push => "push",
            EvictReason::Invalidate => "invalidate",
            EvictReason::Repartition => "repartition",
        }
    }
}

/// Which placement opportunity admitted a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AdmitOrigin {
    /// Admitted on a cache miss (access-time placement).
    Access,
    /// Admitted by the push-time module.
    Push,
}

impl AdmitOrigin {
    /// Stable lower-case key, used in metric names and JSONL events.
    pub fn as_str(self) -> &'static str {
        match self {
            AdmitOrigin::Access => "access",
            AdmitOrigin::Push => "push",
        }
    }
}

/// Direction of a dual-caches partition change (DC family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelabelDirection {
    /// Push-cache storage became access-cache storage (a pushed page was
    /// requested: henceforth judged by its access pattern).
    PcToAc,
    /// Access-cache storage became push-cache storage (stale AC pages made
    /// room for a push during an adaptive re-partition).
    AcToPc,
}

impl RelabelDirection {
    /// Stable lower-case key, used in metric names and JSONL events.
    pub fn as_str(self) -> &'static str {
        match self {
            RelabelDirection::PcToAc => "pc_to_ac",
            RelabelDirection::AcToPc => "ac_to_pc",
        }
    }
}

/// Typed hooks for every decision point in the pipeline: publishing and
/// matching, request serving, push transfers, cache admissions/evictions,
/// dual-caches re-partitioning, and fault injection.
///
/// Every hook has an empty `#[inline]` default body, and the associated
/// constant [`ENABLED`](Observer::ENABLED) lets call sites guard the
/// event-assembly work behind a compile-time constant: with
/// [`NullObserver`] (`ENABLED = false`) the instrumented hot paths
/// monomorphize back to the uninstrumented code.
///
/// Hooks fall into two groups:
///
/// * **timeline hooks** carry the simulation clock (`on_clock`,
///   `on_publish`, `on_notify`, `on_request`, `on_crash`, `on_restart`,
///   `on_invalidate`);
/// * **decision hooks** fire inside caches and strategies where no clock
///   exists (`on_push`, `on_admit`, `on_evict`, `on_relabel`) — observers
///   that need timestamps keep the last `on_clock` value.
#[allow(unused_variables)]
pub trait Observer: fmt::Debug + 'static {
    /// Compile-time switch: `false` lets the optimizer remove every hook
    /// call and the argument assembly feeding it.
    const ENABLED: bool = true;

    /// The simulation clock advanced to `time` (fired before the hooks of
    /// each timeline event, so decision hooks can be timestamped).
    #[inline]
    fn on_clock(&mut self, time: SimTime) {}

    /// A page was published: it matched subscriptions at `matched` proxies
    /// and its content was actually transferred to `pushed` of them.
    #[inline]
    fn on_publish(
        &mut self,
        time: SimTime,
        page: PageId,
        size: Bytes,
        matched: usize,
        pushed: usize,
    ) {
    }

    /// The matching engine notified proxies of a publication
    /// (`match_count` proxies had at least one matching subscription).
    #[inline]
    fn on_notify(&mut self, time: SimTime, page: PageId, match_count: usize) {}

    /// A subscriber request was served at `server` (`hit` = from the local
    /// cache; a miss fetched `size` bytes from the publisher).
    #[inline]
    fn on_request(
        &mut self,
        time: SimTime,
        server: ServerId,
        page: PageId,
        size: Bytes,
        hit: bool,
    ) {
    }

    /// One matched page was offered to one proxy: `transferred` says the
    /// content crossed the network, `stored` that the proxy kept it.
    #[inline]
    fn on_push(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        transferred: bool,
        stored: bool,
    ) {
    }

    /// A cache admitted `page` at `value` under its policy.
    #[inline]
    fn on_admit(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        value: f64,
        origin: AdmitOrigin,
    ) {
    }

    /// A cache evicted `page`; `value` is the policy value it died with.
    #[inline]
    fn on_evict(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        value: f64,
        reason: EvictReason,
    ) {
    }

    /// A dual-caches strategy relabeled `size` bytes of storage.
    #[inline]
    fn on_relabel(
        &mut self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        direction: RelabelDirection,
    ) {
    }

    /// Fault injection crashed `victims` (their caches are wiped).
    #[inline]
    fn on_crash(&mut self, time: SimTime, victims: &[ServerId]) {}

    /// A crashed proxy restarted with a fresh, empty strategy.
    #[inline]
    fn on_restart(&mut self, time: SimTime, server: ServerId) {}

    /// A newly published version superseded `stale`, which was dropped
    /// from `dropped` proxy caches.
    #[inline]
    fn on_invalidate(&mut self, time: SimTime, stale: PageId, dropped: usize) {}
}

/// The do-nothing observer: `ENABLED = false`, so every instrumented call
/// site compiles down to the uninstrumented code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

/// An observer whose collected state can be combined across independent
/// event streams — the contract behind sharded simulation runs: each
/// shard records into a fresh `Self::default()`, and the shard-local
/// observers are folded back together in shard order once all shards
/// join.
///
/// Implementations must make `absorb` an exact merge for every integer
/// total (counts, byte sums), so that the totals of a merged observer
/// equal the totals a single observer would have collected over the
/// interleaved stream. Order-sensitive state (event logs, span lists)
/// cannot satisfy that and should not implement this trait.
pub trait MergeableObserver: Observer + Default + Send {
    /// Folds another observer's collected state into this one.
    fn absorb(&mut self, other: Self);
}

impl MergeableObserver for NullObserver {
    #[inline]
    fn absorb(&mut self, _other: Self) {}
}

/// Tee: both observers see every event. Enabled if either side is.
macro_rules! forward_pair {
    ($( $hook:ident ( $($arg:ident : $ty:ty),* ) );+ $(;)?) => {
        $(
            #[inline]
            fn $hook(&mut self, $($arg: $ty),*) {
                if A::ENABLED {
                    self.0.$hook($($arg),*);
                }
                if B::ENABLED {
                    self.1.$hook($($arg),*);
                }
            }
        )+
    };
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    forward_pair! {
        on_clock(time: SimTime);
        on_publish(time: SimTime, page: PageId, size: Bytes, matched: usize, pushed: usize);
        on_notify(time: SimTime, page: PageId, match_count: usize);
        on_request(time: SimTime, server: ServerId, page: PageId, size: Bytes, hit: bool);
        on_push(server: ServerId, page: PageId, size: Bytes, transferred: bool, stored: bool);
        on_admit(server: ServerId, page: PageId, size: Bytes, value: f64, origin: AdmitOrigin);
        on_evict(server: ServerId, page: PageId, size: Bytes, value: f64, reason: EvictReason);
        on_relabel(server: ServerId, page: PageId, size: Bytes, direction: RelabelDirection);
        on_crash(time: SimTime, victims: &[ServerId]);
        on_restart(time: SimTime, server: ServerId);
        on_invalidate(time: SimTime, stale: PageId, dropped: usize);
    }
}

/// Optional observer: events are forwarded when `Some`, dropped when
/// `None`. The compile-time `ENABLED` follows the inner type, so
/// `Option<NullObserver>` still costs nothing.
macro_rules! forward_option {
    ($( $hook:ident ( $($arg:ident : $ty:ty),* ) );+ $(;)?) => {
        $(
            #[inline]
            fn $hook(&mut self, $($arg: $ty),*) {
                if let Some(inner) = self {
                    inner.$hook($($arg),*);
                }
            }
        )+
    };
}

impl<O: Observer> Observer for Option<O> {
    const ENABLED: bool = O::ENABLED;

    forward_option! {
        on_clock(time: SimTime);
        on_publish(time: SimTime, page: PageId, size: Bytes, matched: usize, pushed: usize);
        on_notify(time: SimTime, page: PageId, match_count: usize);
        on_request(time: SimTime, server: ServerId, page: PageId, size: Bytes, hit: bool);
        on_push(server: ServerId, page: PageId, size: Bytes, transferred: bool, stored: bool);
        on_admit(server: ServerId, page: PageId, size: Bytes, value: f64, origin: AdmitOrigin);
        on_evict(server: ServerId, page: PageId, size: Bytes, value: f64, reason: EvictReason);
        on_relabel(server: ServerId, page: PageId, size: Bytes, direction: RelabelDirection);
        on_crash(time: SimTime, victims: &[ServerId]);
        on_restart(time: SimTime, server: ServerId);
        on_invalidate(time: SimTime, stale: PageId, dropped: usize);
    }
}

/// A shared observer, cloned into every component of one simulation run
/// (the simulator is single-threaded per run, so this is `Rc<RefCell<_>>`
/// under the hood).
///
/// Components that know which proxy they are get a per-server
/// [`ObsHandle`] via [`handle`](SharedObserver::handle); run-level
/// components (the delivery engine, the simulation loop) fire the
/// timeline hooks directly through the typed methods here.
pub struct SharedObserver<O> {
    inner: Rc<RefCell<O>>,
}

impl<O> Clone for SharedObserver<O> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<O> fmt::Debug for SharedObserver<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedObserver").finish_non_exhaustive()
    }
}

impl Default for SharedObserver<NullObserver> {
    fn default() -> Self {
        Self::disabled()
    }
}

impl SharedObserver<NullObserver> {
    /// The disabled observer (all hooks compile away).
    pub fn disabled() -> Self {
        Self::new(NullObserver)
    }
}

impl<O: Observer> SharedObserver<O> {
    /// Wraps an observer for sharing within one single-threaded run.
    pub fn new(observer: O) -> Self {
        Self {
            inner: Rc::new(RefCell::new(observer)),
        }
    }

    /// `true` unless `O` is compile-time disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        O::ENABLED
    }

    /// A handle firing decision hooks on behalf of `server`.
    pub fn handle(&self, server: ServerId) -> ObsHandle<O> {
        ObsHandle {
            shared: self.clone(),
            server,
        }
    }

    /// Runs `f` with mutable access to the observer (e.g. to read
    /// collected statistics after a run).
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from inside a hook.
    pub fn with<R>(&self, f: impl FnOnce(&mut O) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Recovers the observer if this is the last live clone (drop the
    /// simulation first).
    ///
    /// # Errors
    ///
    /// Returns `self` unchanged while other clones are alive.
    pub fn try_unwrap(self) -> Result<O, SharedObserver<O>> {
        Rc::try_unwrap(self.inner)
            .map(RefCell::into_inner)
            .map_err(|inner| SharedObserver { inner })
    }

    /// Fires [`Observer::on_clock`].
    #[inline]
    pub fn clock(&self, time: SimTime) {
        if O::ENABLED {
            self.inner.borrow_mut().on_clock(time);
        }
    }

    /// Fires [`Observer::on_publish`].
    #[inline]
    pub fn publish(&self, time: SimTime, page: PageId, size: Bytes, matched: usize, pushed: usize) {
        if O::ENABLED {
            self.inner
                .borrow_mut()
                .on_publish(time, page, size, matched, pushed);
        }
    }

    /// Fires [`Observer::on_notify`].
    #[inline]
    pub fn notify(&self, time: SimTime, page: PageId, match_count: usize) {
        if O::ENABLED {
            self.inner.borrow_mut().on_notify(time, page, match_count);
        }
    }

    /// Fires [`Observer::on_request`].
    #[inline]
    pub fn request(&self, time: SimTime, server: ServerId, page: PageId, size: Bytes, hit: bool) {
        if O::ENABLED {
            self.inner
                .borrow_mut()
                .on_request(time, server, page, size, hit);
        }
    }

    /// Fires [`Observer::on_push`].
    #[inline]
    pub fn push(
        &self,
        server: ServerId,
        page: PageId,
        size: Bytes,
        transferred: bool,
        stored: bool,
    ) {
        if O::ENABLED {
            self.inner
                .borrow_mut()
                .on_push(server, page, size, transferred, stored);
        }
    }

    /// Fires [`Observer::on_crash`].
    #[inline]
    pub fn crash(&self, time: SimTime, victims: &[ServerId]) {
        if O::ENABLED {
            self.inner.borrow_mut().on_crash(time, victims);
        }
    }

    /// Fires [`Observer::on_restart`].
    #[inline]
    pub fn restart(&self, time: SimTime, server: ServerId) {
        if O::ENABLED {
            self.inner.borrow_mut().on_restart(time, server);
        }
    }

    /// Fires [`Observer::on_invalidate`].
    #[inline]
    pub fn invalidate(&self, time: SimTime, stale: PageId, dropped: usize) {
        if O::ENABLED {
            self.inner.borrow_mut().on_invalidate(time, stale, dropped);
        }
    }
}

/// A per-proxy handle into a [`SharedObserver`]: caches and strategies
/// hold one and fire the decision hooks (`on_admit`, `on_evict`,
/// `on_relabel`) without knowing about the rest of the pipeline.
pub struct ObsHandle<O> {
    shared: SharedObserver<O>,
    server: ServerId,
}

impl<O> Clone for ObsHandle<O> {
    fn clone(&self) -> Self {
        Self {
            shared: self.shared.clone(),
            server: self.server,
        }
    }
}

impl<O> fmt::Debug for ObsHandle<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ObsHandle")
            .field("server", &self.server)
            .finish_non_exhaustive()
    }
}

impl Default for ObsHandle<NullObserver> {
    fn default() -> Self {
        Self::disabled()
    }
}

impl ObsHandle<NullObserver> {
    /// The disabled handle (all hooks compile away).
    pub fn disabled() -> Self {
        SharedObserver::disabled().handle(ServerId::new(0))
    }
}

impl<O: Observer> ObsHandle<O> {
    /// The proxy this handle reports for.
    #[inline]
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// `true` unless `O` is compile-time disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        O::ENABLED
    }

    /// Fires [`Observer::on_admit`] for this proxy.
    #[inline]
    pub fn admit(&self, page: PageId, size: Bytes, value: f64, origin: AdmitOrigin) {
        if O::ENABLED {
            self.shared
                .inner
                .borrow_mut()
                .on_admit(self.server, page, size, value, origin);
        }
    }

    /// Fires [`Observer::on_evict`] for this proxy.
    #[inline]
    pub fn evict(&self, page: PageId, size: Bytes, value: f64, reason: EvictReason) {
        if O::ENABLED {
            self.shared
                .inner
                .borrow_mut()
                .on_evict(self.server, page, size, value, reason);
        }
    }

    /// Fires [`Observer::on_relabel`] for this proxy.
    #[inline]
    pub fn relabel(&self, page: PageId, size: Bytes, direction: RelabelDirection) {
        if O::ENABLED {
            self.shared
                .inner
                .borrow_mut()
                .on_relabel(self.server, page, size, direction);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records every hook call as a tag string.
    #[derive(Debug, Default)]
    struct Recorder {
        calls: Vec<String>,
    }

    impl Observer for Recorder {
        fn on_clock(&mut self, time: SimTime) {
            self.calls.push(format!("clock@{}", time.as_millis()));
        }
        fn on_publish(
            &mut self,
            _t: SimTime,
            page: PageId,
            _s: Bytes,
            matched: usize,
            pushed: usize,
        ) {
            self.calls
                .push(format!("publish p{} m{matched} k{pushed}", page.index()));
        }
        fn on_evict(
            &mut self,
            server: ServerId,
            page: PageId,
            _s: Bytes,
            value: f64,
            reason: EvictReason,
        ) {
            self.calls.push(format!(
                "evict s{} p{} v{value} {}",
                server.index(),
                page.index(),
                reason.as_str()
            ));
        }
        fn on_relabel(
            &mut self,
            _sv: ServerId,
            page: PageId,
            _s: Bytes,
            direction: RelabelDirection,
        ) {
            self.calls
                .push(format!("relabel p{} {}", page.index(), direction.as_str()));
        }
    }

    #[test]
    fn null_observer_is_compile_time_disabled() {
        const { assert!(!NullObserver::ENABLED) };
        const { assert!(!<(NullObserver, NullObserver)>::ENABLED) };
        const { assert!(!Option::<NullObserver>::ENABLED) };
        const { assert!(<(NullObserver, Recorder)>::ENABLED) };
        const { assert!(Recorder::ENABLED) };
        let shared = SharedObserver::disabled();
        assert!(!shared.enabled());
        assert!(!ObsHandle::disabled().enabled());
        // Hooks on a disabled observer are no-ops (and must not panic).
        shared.clock(SimTime::ZERO);
        shared.publish(SimTime::ZERO, PageId::new(0), Bytes::new(1), 0, 0);
    }

    #[test]
    fn handles_route_events_with_server_ids() {
        let shared = SharedObserver::new(Recorder::default());
        let h3 = shared.handle(ServerId::new(3));
        assert_eq!(h3.server(), ServerId::new(3));
        assert!(h3.enabled());
        h3.evict(PageId::new(7), Bytes::new(10), 1.5, EvictReason::Push);
        h3.clone()
            .relabel(PageId::new(8), Bytes::new(10), RelabelDirection::PcToAc);
        shared.clock(SimTime::from_millis(42));
        shared.publish(SimTime::ZERO, PageId::new(1), Bytes::new(5), 4, 2);
        let calls = shared.with(|r| r.calls.clone());
        assert_eq!(
            calls,
            [
                "evict s3 p7 v1.5 push",
                "relabel p8 pc_to_ac",
                "clock@42",
                "publish p1 m4 k2"
            ]
        );
    }

    #[test]
    fn tee_and_option_forward() {
        let shared = SharedObserver::new((Recorder::default(), Some(Recorder::default())));
        shared.notify(SimTime::ZERO, PageId::new(2), 9);
        shared.request(
            SimTime::ZERO,
            ServerId::new(0),
            PageId::new(2),
            Bytes::new(1),
            true,
        );
        shared.crash(SimTime::ZERO, &[ServerId::new(1)]);
        shared.restart(SimTime::ZERO, ServerId::new(1));
        shared.invalidate(SimTime::ZERO, PageId::new(2), 1);
        shared.push(ServerId::new(0), PageId::new(2), Bytes::new(1), true, false);
        // Recorder only logs a subset of hooks; both sides saw the same
        // stream (none of the above are logged, so both are empty — the
        // point is that forwarding compiles and doesn't double-borrow).
        shared.with(|(a, b)| {
            assert_eq!(a.calls.len(), 0);
            assert_eq!(b.as_ref().unwrap().calls.len(), 0);
        });
        let mut none: Option<Recorder> = None;
        none.on_clock(SimTime::ZERO); // must not panic
    }

    #[test]
    fn try_unwrap_recovers_last_clone() {
        let shared = SharedObserver::new(Recorder::default());
        let handle = shared.handle(ServerId::new(0));
        let shared = shared.try_unwrap().expect_err("handle still alive");
        drop(handle);
        let recorder = shared.try_unwrap().expect("last clone");
        assert!(recorder.calls.is_empty());
    }

    #[test]
    fn enum_keys_are_stable() {
        assert_eq!(EvictReason::Access.as_str(), "access");
        assert_eq!(EvictReason::Invalidate.as_str(), "invalidate");
        assert_eq!(EvictReason::Repartition.as_str(), "repartition");
        assert_eq!(AdmitOrigin::Push.as_str(), "push");
        assert_eq!(RelabelDirection::AcToPc.as_str(), "ac_to_pc");
    }
}
