//! The matching abstraction consumed by the delivery engine.

use std::collections::HashMap;

use pscd_types::{PageId, ServerId, SubscriptionTable};

use crate::{
    Content, FrozenIndex, MatchError, MatchScratch, Subscription, SubscriptionId,
    SubscriptionIndex, SymbolTable,
};

/// Source of per-(page, server) subscription match counts.
///
/// Push-time placement strategies need to know, for a freshly published
/// page, which proxies have interested subscribers and how many (`f_S(p)`
/// in the paper's eq. 2). Two implementations exist:
///
/// * [`TableMatcher`] — counts precomputed by the workload generator
///   (the paper's setting, where subscriptions are synthesized from the
///   request trace through the subscription-quality model).
/// * [`EngineMatcher`] — counts computed live by the content-based
///   [`SubscriptionIndex`] over registered page content.
pub trait Matcher {
    /// Servers with at least one matching subscription for `page`, with
    /// their counts, sorted by server id.
    fn matched_servers(&self, page: PageId) -> Vec<(ServerId, u32)>;

    /// The number of subscriptions at `server` matching `page`.
    fn match_count(&self, page: PageId, server: ServerId) -> u32;
}

/// [`Matcher`] backed by a precomputed [`SubscriptionTable`].
#[derive(Debug, Clone, Default)]
pub struct TableMatcher {
    table: SubscriptionTable,
}

impl TableMatcher {
    /// Wraps a subscription table.
    pub fn new(table: SubscriptionTable) -> Self {
        Self { table }
    }

    /// The underlying table.
    pub fn table(&self) -> &SubscriptionTable {
        &self.table
    }
}

impl From<SubscriptionTable> for TableMatcher {
    fn from(table: SubscriptionTable) -> Self {
        Self::new(table)
    }
}

impl Matcher for TableMatcher {
    fn matched_servers(&self, page: PageId) -> Vec<(ServerId, u32)> {
        self.table.matched_servers(page).to_vec()
    }

    fn match_count(&self, page: PageId, server: ServerId) -> u32 {
        self.table.count(page, server)
    }
}

/// [`Matcher`] that evaluates real content-based subscriptions with one
/// [`SubscriptionIndex`] per proxy server.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, EngineMatcher, Matcher, Predicate, Subscription, Value};
/// use pscd_types::{PageId, ServerId};
///
/// let mut m = EngineMatcher::new(2);
/// m.subscribe(
///     ServerId::new(0),
///     Subscription::new(vec![Predicate::eq("category", Value::str("sports"))]),
/// )?;
/// m.register_page(
///     PageId::new(0),
///     Content::new().with("category", Value::str("sports")),
/// );
/// assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 1);
/// assert_eq!(m.match_count(PageId::new(0), ServerId::new(1)), 0);
/// # Ok::<(), pscd_matching::MatchError>(())
/// ```
#[derive(Debug, Default)]
pub struct EngineMatcher {
    per_server: Vec<SubscriptionIndex>,
    contents: HashMap<PageId, Content>,
    /// The frozen compilation of every per-server index against one shared
    /// symbol table; dropped (stale) whenever a subscription changes and
    /// rebuilt by [`EngineMatcher::freeze`].
    frozen: Option<FrozenSet>,
}

/// One [`SymbolTable`] shared by every proxy's [`FrozenIndex`], so a
/// publish symbolizes its content once and matches all proxies.
#[derive(Debug)]
struct FrozenSet {
    table: SymbolTable,
    per_server: Vec<FrozenIndex>,
}

impl EngineMatcher {
    /// Creates a matcher for `servers` proxies with no subscriptions.
    pub fn new(servers: u16) -> Self {
        Self {
            per_server: (0..servers).map(|_| SubscriptionIndex::new()).collect(),
            contents: HashMap::new(),
            frozen: None,
        }
    }

    /// Number of proxies.
    pub fn server_count(&self) -> u16 {
        self.per_server.len() as u16
    }

    /// Registers a subscription for a user attached to `server`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range.
    pub fn subscribe(
        &mut self,
        server: ServerId,
        subscription: Subscription,
    ) -> Result<SubscriptionId, MatchError> {
        self.frozen = None;
        let idx = self.index_mut(server)?;
        Ok(idx.insert(subscription))
    }

    /// Removes a subscription previously registered at `server`.
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range and
    /// [`MatchError::UnknownSubscription`] if the id is not registered there.
    pub fn unsubscribe(&mut self, server: ServerId, id: SubscriptionId) -> Result<(), MatchError> {
        self.frozen = None;
        let idx = self.index_mut(server)?;
        idx.remove(id)
            .map(|_| ())
            .ok_or(MatchError::UnknownSubscription { id })
    }

    /// Compiles every per-server index into the frozen kernel against one
    /// shared [`SymbolTable`]. A no-op when already frozen; any subsequent
    /// subscribe/unsubscribe invalidates the compilation (the rebuild path
    /// for dynamic subscribers), and the matcher transparently falls back
    /// to the mutable indexes until frozen again.
    pub fn freeze(&mut self) {
        if self.frozen.is_some() {
            return;
        }
        let mut table = SymbolTable::new();
        let per_server = self
            .per_server
            .iter()
            .map(|idx| FrozenIndex::freeze(idx, &mut table))
            .collect();
        self.frozen = Some(FrozenSet { table, per_server });
    }

    /// `true` while the frozen compilation is current (no subscription has
    /// changed since the last [`EngineMatcher::freeze`]).
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Associates content with a page id (typically at publish time).
    /// Re-registering replaces the previous content.
    pub fn register_page(&mut self, page: PageId, content: Content) {
        self.contents.insert(page, content);
    }

    /// The registered content of a page, if any.
    pub fn content(&self, page: PageId) -> Option<&Content> {
        self.contents.get(&page)
    }

    /// The per-server subscription index (read-only view).
    ///
    /// # Errors
    ///
    /// Returns [`MatchError::UnknownServer`] if `server` is out of range.
    pub fn index(&self, server: ServerId) -> Result<&SubscriptionIndex, MatchError> {
        self.per_server
            .get(server.as_usize())
            .ok_or(MatchError::UnknownServer {
                server,
                server_count: self.per_server.len() as u16,
            })
    }

    /// The batched form of [`Matcher::matched_servers`]: writes the
    /// matched `(server, count)` rows into `out` (cleared first), sorted
    /// by server id, counting in the caller's [`MatchScratch`]. After
    /// warm-up the call makes zero allocations, so a publish fan-out loop
    /// can evaluate every proxy's index without touching the allocator.
    pub fn matched_servers_into(
        &self,
        page: PageId,
        scratch: &mut MatchScratch,
        out: &mut Vec<(ServerId, u32)>,
    ) {
        out.clear();
        let Some(content) = self.contents.get(&page) else {
            return;
        };
        if let Some(frozen) = &self.frozen {
            // Frozen fast path: symbolize once, match every proxy with
            // integer-only lookups.
            scratch.symbolize(&frozen.table, content);
            for (i, idx) in frozen.per_server.iter().enumerate() {
                let n = idx.match_count_view(scratch) as u32;
                if n > 0 {
                    out.push((ServerId::new(i as u16), n));
                }
            }
            return;
        }
        for (i, idx) in self.per_server.iter().enumerate() {
            let n = idx.match_count_scratch(content, scratch) as u32;
            if n > 0 {
                out.push((ServerId::new(i as u16), n));
            }
        }
    }

    /// The batched form of [`Matcher::match_count`]: counts in the
    /// caller's [`MatchScratch`] instead of allocating one per call, so a
    /// request-resolution loop can run alloc-free after warm-up.
    pub fn match_count_with(
        &self,
        page: PageId,
        server: ServerId,
        scratch: &mut MatchScratch,
    ) -> u32 {
        let Some(content) = self.contents.get(&page) else {
            return 0;
        };
        if let Some(frozen) = &self.frozen {
            let Some(idx) = frozen.per_server.get(server.as_usize()) else {
                return 0;
            };
            scratch.symbolize(&frozen.table, content);
            return idx.match_count_view(scratch) as u32;
        }
        self.per_server
            .get(server.as_usize())
            .map(|idx| idx.match_count_scratch(content, scratch) as u32)
            .unwrap_or(0)
    }

    /// Number of pages with registered content.
    pub fn page_count(&self) -> usize {
        self.contents.len()
    }

    fn index_mut(&mut self, server: ServerId) -> Result<&mut SubscriptionIndex, MatchError> {
        let count = self.per_server.len() as u16;
        self.per_server
            .get_mut(server.as_usize())
            .ok_or(MatchError::UnknownServer {
                server,
                server_count: count,
            })
    }
}

impl Matcher for EngineMatcher {
    fn matched_servers(&self, page: PageId) -> Vec<(ServerId, u32)> {
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        self.matched_servers_into(page, &mut scratch, &mut out);
        out
    }

    fn match_count(&self, page: PageId, server: ServerId) -> u32 {
        let mut scratch = MatchScratch::new();
        self.match_count_with(page, server, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Predicate, Value};
    use pscd_types::SubscriptionTableBuilder;

    #[test]
    fn table_matcher_delegates() {
        let mut b = SubscriptionTableBuilder::new(2);
        b.add(PageId::new(0), ServerId::new(1), 4);
        let m = TableMatcher::from(b.build());
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(1)), 4);
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 0);
        assert_eq!(
            m.matched_servers(PageId::new(0)),
            vec![(ServerId::new(1), 4)]
        );
        assert!(m.matched_servers(PageId::new(1)).is_empty());
        assert_eq!(m.table().page_count(), 2);
    }

    #[test]
    fn engine_matcher_counts_per_server() {
        let mut m = EngineMatcher::new(3);
        assert_eq!(m.server_count(), 3);
        let sports = Subscription::new(vec![Predicate::eq("cat", Value::str("sports"))]);
        m.subscribe(ServerId::new(0), sports.clone()).unwrap();
        m.subscribe(ServerId::new(0), sports.clone()).unwrap();
        m.subscribe(ServerId::new(2), sports).unwrap();
        m.register_page(
            PageId::new(7),
            Content::new().with("cat", Value::str("sports")),
        );
        assert_eq!(
            m.matched_servers(PageId::new(7)),
            vec![(ServerId::new(0), 2), (ServerId::new(2), 1)]
        );
        assert_eq!(m.match_count(PageId::new(7), ServerId::new(0)), 2);
        assert_eq!(m.match_count(PageId::new(7), ServerId::new(1)), 0);
    }

    #[test]
    fn unregistered_page_matches_nothing() {
        let mut m = EngineMatcher::new(1);
        m.subscribe(ServerId::new(0), Subscription::wildcard())
            .unwrap();
        assert!(m.matched_servers(PageId::new(0)).is_empty());
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 0);
        assert!(m.content(PageId::new(0)).is_none());
    }

    #[test]
    fn unsubscribe_stops_matching() {
        let mut m = EngineMatcher::new(1);
        let id = m
            .subscribe(ServerId::new(0), Subscription::wildcard())
            .unwrap();
        m.register_page(PageId::new(0), Content::new());
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 1);
        m.unsubscribe(ServerId::new(0), id).unwrap();
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 0);
        assert!(matches!(
            m.unsubscribe(ServerId::new(0), id),
            Err(MatchError::UnknownSubscription { .. })
        ));
    }

    #[test]
    fn unknown_server_errors() {
        let mut m = EngineMatcher::new(1);
        assert!(matches!(
            m.subscribe(ServerId::new(9), Subscription::wildcard()),
            Err(MatchError::UnknownServer { .. })
        ));
        assert!(m.index(ServerId::new(0)).is_ok());
        assert!(m.index(ServerId::new(9)).is_err());
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(9)), 0);
    }

    #[test]
    fn frozen_matches_legacy_and_invalidates_on_churn() {
        let mut m = EngineMatcher::new(3);
        let sports = Subscription::new(vec![Predicate::eq("cat", Value::str("sports"))]);
        m.subscribe(ServerId::new(0), sports.clone()).unwrap();
        m.subscribe(ServerId::new(0), sports.clone()).unwrap();
        let at2 = m.subscribe(ServerId::new(2), sports.clone()).unwrap();
        m.register_page(
            PageId::new(7),
            Content::new().with("cat", Value::str("sports")),
        );
        let legacy = m.matched_servers(PageId::new(7));
        assert!(!m.is_frozen());
        m.freeze();
        assert!(m.is_frozen());
        m.freeze(); // idempotent
        assert_eq!(m.matched_servers(PageId::new(7)), legacy);
        assert_eq!(m.match_count(PageId::new(7), ServerId::new(0)), 2);
        assert_eq!(m.match_count(PageId::new(7), ServerId::new(1)), 0);
        assert_eq!(m.match_count(PageId::new(7), ServerId::new(9)), 0);
        let mut scratch = MatchScratch::new();
        let mut out = Vec::new();
        m.matched_servers_into(PageId::new(7), &mut scratch, &mut out);
        assert_eq!(out, legacy);
        // Churn invalidates; the matcher falls back to the mutable index.
        m.unsubscribe(ServerId::new(2), at2).unwrap();
        assert!(!m.is_frozen());
        assert_eq!(
            m.matched_servers(PageId::new(7)),
            vec![(ServerId::new(0), 2)]
        );
        m.freeze();
        assert_eq!(
            m.matched_servers(PageId::new(7)),
            vec![(ServerId::new(0), 2)]
        );
        m.subscribe(ServerId::new(1), sports).unwrap();
        assert!(!m.is_frozen());
    }

    #[test]
    fn reregistering_page_replaces_content() {
        let mut m = EngineMatcher::new(1);
        m.subscribe(
            ServerId::new(0),
            Subscription::new(vec![Predicate::eq("cat", Value::str("a"))]),
        )
        .unwrap();
        m.register_page(PageId::new(0), Content::new().with("cat", Value::str("a")));
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 1);
        m.register_page(PageId::new(0), Content::new().with("cat", Value::str("b")));
        assert_eq!(m.match_count(PageId::new(0), ServerId::new(0)), 0);
    }
}
