//! Typed page content descriptors.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

/// A typed attribute value carried by page content or compared against by a
/// predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// A signed integer (e.g. word count, priority).
    Int(i64),
    /// A string (e.g. category name, author).
    Str(String),
    /// A set of tags/keywords; predicates test membership.
    Tags(BTreeSet<String>),
}

impl Value {
    /// Convenience constructor for [`Value::Str`].
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for [`Value::Int`].
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Convenience constructor for [`Value::Tags`].
    ///
    /// # Examples
    ///
    /// ```
    /// use pscd_matching::Value;
    /// let v = Value::tags(["a", "b", "a"]);
    /// assert_eq!(v, Value::tags(["b", "a"]));
    /// ```
    pub fn tags<I, S>(tags: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::Tags(tags.into_iter().map(Into::into).collect())
    }

    /// A short name for the value's type, used in error messages.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Tags(_) => "tags",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tags(t) => {
                write!(f, "{{")?;
                for (i, tag) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{tag}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// The attribute map describing one page's content, e.g.
/// `{category: "sports", tags: {tennis, us-open}, words: 840}`.
///
/// # Examples
///
/// ```
/// use pscd_matching::{Content, Value};
/// let c = Content::new()
///     .with("category", Value::str("sports"))
///     .with("words", Value::int(840));
/// assert_eq!(c.get("words"), Some(&Value::int(840)));
/// assert_eq!(c.get("missing"), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Content {
    attrs: BTreeMap<String, Value>,
}

impl Content {
    /// Creates empty content with no attributes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an attribute, builder style.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: Value) -> Self {
        self.attrs.insert(name.into(), value);
        self
    }

    /// Adds (or replaces) an attribute in place.
    pub fn set(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.attrs.insert(name.into(), value);
        self
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.attrs.get(name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` if the content has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors_and_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
        assert_eq!(Value::int(1).type_name(), "int");
        assert_eq!(Value::str("a").type_name(), "str");
        assert_eq!(Value::tags(["a"]).type_name(), "tags");
    }

    #[test]
    fn tags_dedup() {
        let v = Value::tags(["x", "y", "x"]);
        match &v {
            Value::Tags(set) => assert_eq!(set.len(), 2),
            _ => panic!("expected tags"),
        }
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::tags(["b", "a"]).to_string(), "{a, b}");
    }

    #[test]
    fn content_set_get_iter() {
        let mut c = Content::new();
        assert!(c.is_empty());
        c.set("a", Value::int(1)).set("b", Value::str("s"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a"), Some(&Value::int(1)));
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn with_replaces_existing() {
        let c = Content::new()
            .with("a", Value::int(1))
            .with("a", Value::int(2));
        assert_eq!(c.get("a"), Some(&Value::int(2)));
        assert_eq!(c.len(), 1);
    }
}
